//! Scalability study: how does the Grid-Federation's message complexity grow
//! with the number of clusters, and how does it compare with the broadcast
//! superscheduler baseline (the NASA superscheduler of the paper's related
//! work)?
//!
//! This is a reduced version of Experiment 5 plus the `ablation_baselines`
//! comparison; use the `exp5_scalability` binary for the full sweep.
//!
//! Run with: `cargo run --release --example scalability`

use grid_baselines::{run_broadcast, BroadcastConfig};
use grid_experiments::workloads::{replicated_workloads, WorkloadOptions};
use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_workload::PopulationProfile;

fn main() {
    let options = WorkloadOptions::quick();
    let profile = PopulationProfile::recommended();

    println!(
        "{:>6} {:>10} {:>16} {:>16} {:>18}",
        "size", "jobs", "fed msgs/job", "fed msgs total", "broadcast msgs"
    );
    for size in [8usize, 16, 24, 32] {
        let setup = replicated_workloads(size, profile, &options);
        let total_jobs = setup.total_jobs();

        // Grid-Federation (directory + one-to-one negotiation).
        let report = run_federation(
            setup.resources.clone(),
            setup.workloads.clone(),
            FederationConfig::with_mode(SchedulingMode::Economy),
        );
        let (_, per_job, _) = report.messages.per_job_summary();

        // Broadcast superscheduler baseline on the identical workload.
        let broadcast = run_broadcast(
            &setup.resources,
            &setup.workloads,
            &BroadcastConfig::default(),
        );

        println!(
            "{:>6} {:>10} {:>16.2} {:>16} {:>18}",
            size,
            total_jobs,
            per_job,
            report.messages.total_messages(),
            broadcast.total_messages
        );
    }
    println!(
        "\nThe federation's per-job message count grows slowly (the directory absorbs the\n\
         lookup cost), while the broadcast baseline pays O(n) messages for every migration —\n\
         the scalability argument of the paper's related-work comparison."
    );
}
