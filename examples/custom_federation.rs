//! Custom federation: build a federation with your own resources, pricing
//! policy and local-scheduler choice, and compare the three resource-sharing
//! environments of the paper (independent, federation without economy,
//! federation with economy) on the same workload.
//!
//! Run with: `cargo run --release --example custom_federation`

use grid_cluster::ResourceSpec;
use grid_federation_core::federation::{
    run_federation, FederationConfig, LrmsKind, SchedulingMode,
};
use grid_federation_core::{apply_commodity_pricing, ChargingPolicy};
use grid_workload::{PopulationProfile, SyntheticWorkloadConfig, UserPopulation};

fn main() {
    // A deliberately heterogeneous three-cluster grid: a large slow machine,
    // a medium one and a small fast one.  Prices are derived from the paper's
    // commodity-market policy (Eq. 5–6) with an access price of 6 G$.
    let mut resources = vec![
        ResourceSpec::new("campus-cluster", 512, 550.0, 1.0, 1.0),
        ResourceSpec::new("department-cluster", 128, 800.0, 2.0, 1.0),
        ResourceSpec::new("accelerator-island", 32, 1_200.0, 4.0, 1.0),
    ];
    apply_commodity_pricing(&mut resources, 6.0);
    for r in &resources {
        println!("{r}");
    }

    // Synthetic workloads: the campus cluster is oversubscribed, the others
    // lightly loaded — the situation federation is meant to fix.
    let loads = [1.3, 0.4, 0.3];
    let workloads: Vec<Vec<grid_workload::Job>> = resources
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut cfg = SyntheticWorkloadConfig::new(i, &spec.name);
            cfg.total_jobs = 150;
            cfg.max_processors = spec.processors;
            cfg.origin_mips = spec.mips;
            cfg.offered_load = loads[i];
            cfg.duration = 86_400.0;
            cfg.max_runtime = 0.25 * cfg.duration;
            cfg.seed = 3 + i as u64;
            let mut jobs = cfg.generate().into_jobs();
            UserPopulation::new(i, 12, PopulationProfile::new(40), 9).apply(&mut jobs);
            jobs
        })
        .collect();

    println!(
        "\n{:<28} {:>12} {:>12} {:>12} {:>10}",
        "environment", "accepted(%)", "migrated", "messages", "traded G$"
    );
    for (label, mode, lrms) in [
        ("independent resources", SchedulingMode::Independent, LrmsKind::SpaceSharedFcfs),
        ("federation, no economy", SchedulingMode::FederationNoEconomy, LrmsKind::SpaceSharedFcfs),
        ("federation + economy", SchedulingMode::Economy, LrmsKind::SpaceSharedFcfs),
        ("federation + economy (EASY)", SchedulingMode::Economy, LrmsKind::EasyBackfilling),
    ] {
        let report = run_federation(
            resources.clone(),
            workloads.clone(),
            FederationConfig {
                mode,
                lrms,
                charging: ChargingPolicy::PerKiloMi,
                ..FederationConfig::default()
            },
        );
        let migrated: usize = report.resources.iter().map(|r| r.migrated).sum();
        println!(
            "{:<28} {:>12.1} {:>12} {:>12} {:>10.0}",
            label,
            report.mean_acceptance_rate(),
            migrated,
            report.messages.total_messages(),
            report.bank.total_volume()
        );
    }
}
