//! Economy sweep: reproduce the paper's central population-profile study on
//! a reduced workload and print how incentive, acceptance and message counts
//! change as the share of time-optimising (OFT) users grows.
//!
//! This is Experiment 3/4 of the paper in miniature; use the
//! `exp3_economy` / `exp4_messages` binaries for the full-scale version.
//!
//! Run with: `cargo run --release --example economy_sweep`

use grid_experiments::exp3;
use grid_experiments::workloads::WorkloadOptions;
use grid_workload::PopulationProfile;

fn main() {
    let options = WorkloadOptions::quick();
    let profiles: Vec<PopulationProfile> = [0u32, 10, 30, 50, 70, 100]
        .iter()
        .map(|p| PopulationProfile::new(*p))
        .collect();

    println!(
        "running {} federation simulations (quick workload)…",
        profiles.len()
    );
    let sweep = exp3::run_sweep(&options, &profiles);

    println!(
        "\n{:<12} {:>14} {:>12} {:>12} {:>14} {:>12}",
        "profile", "incentive(G$)", "accepted(%)", "messages", "avg resp (s)", "avg cost"
    );
    for (profile, report) in sweep.profiles.iter().zip(&sweep.reports) {
        println!(
            "{:<12} {:>14.3e} {:>12.2} {:>12} {:>14.1} {:>12.1}",
            profile.label(),
            report.total_incentive(),
            report.mean_acceptance_rate(),
            report.messages.total_messages(),
            report.federation_avg_response_time(true),
            report.federation_avg_budget_spent(true),
        );
    }

    // The paper's recommendation: ~70 % OFC / 30 % OFT balances owner
    // incentive against message overhead.
    let recommended = sweep.report_for(30).expect("30 % profile was in the sweep");
    println!(
        "\nat the recommended 70/30 mix every owner earned incentive: {}",
        recommended.resources.iter().all(|r| r.incentive > 0.0)
    );
    println!("\nfigure 3(a) data:\n{}", exp3::figure3a(&sweep).to_ascii());
}
