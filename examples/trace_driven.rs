//! Trace-driven federation: replay a Standard Workload Format (SWF) trace —
//! the format of the Parallel Workloads Archive used by the paper — through
//! the Grid-Federation.
//!
//! With no arguments the example generates a small synthetic trace, writes it
//! to SWF, parses it back (exercising the same code path a real archive file
//! would take) and runs the federation on it.  Pass a path to use a real
//! trace: `cargo run --release --example trace_driven -- /path/to/trace.swf`

use grid_cluster::paper_resources;
use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_workload::{PopulationProfile, SwfRecord, SwfTrace, SyntheticWorkloadConfig, UserPopulation};

fn synthetic_swf() -> String {
    // Build a small synthetic workload for the first paper resource and
    // serialise it as SWF, as a stand-in for a real archive file.
    let resource = &paper_resources()[0];
    let mut cfg = SyntheticWorkloadConfig::new(0, &resource.spec.name);
    cfg.total_jobs = 120;
    cfg.max_processors = resource.spec.processors;
    cfg.origin_mips = resource.spec.mips;
    cfg.offered_load = 0.7;
    cfg.seed = 7;
    let workload = cfg.generate();
    let records: Vec<SwfRecord> = workload
        .jobs()
        .iter()
        .enumerate()
        .map(|(i, j)| SwfRecord {
            job_number: i as i64 + 1,
            submit_time: j.submit,
            wait_time: -1.0,
            run_time: j.compute_time(resource.spec.mips) + j.comm_overhead,
            allocated_processors: i64::from(j.processors),
            requested_processors: i64::from(j.processors),
            requested_time: -1.0,
            status: 1,
            user_id: j.user.local as i64,
            group_id: -1,
            queue: 0,
        })
        .collect();
    let trace = SwfTrace {
        comments: vec![
            "Synthetic stand-in for a Parallel Workloads Archive trace".to_string(),
            format!("Computer: {}", resource.spec.name),
            format!("MaxNodes: {}", resource.spec.processors),
        ],
        records,
    };
    trace.to_swf_string()
}

fn main() {
    let arg = std::env::args().nth(1);
    let swf_text = match &arg {
        Some(path) => std::fs::read_to_string(path).expect("failed to read the SWF file"),
        None => synthetic_swf(),
    };

    let trace = SwfTrace::parse(&swf_text).expect("SWF parse error");
    println!(
        "parsed {} jobs ({} header comments){}",
        trace.records.len(),
        trace.comments.len(),
        if arg.is_some() { "" } else { " from the built-in synthetic trace" }
    );

    // Attach the trace to the first resource of the paper's federation; the
    // two-day window keeps the run comparable to the paper's methodology.
    let catalogue = paper_resources();
    let resources: Vec<_> = catalogue.iter().map(|r| r.spec.clone()).collect();
    let window = trace.window(0.0, 2.0 * 86_400.0);
    let mut jobs = window.to_jobs(0, resources[0].mips, resources[0].processors, 0.10);

    // 30 % of the trace's users optimise for time, the rest for cost.
    let users = jobs.iter().map(|j| j.user.local).max().unwrap_or(0) + 1;
    UserPopulation::new(0, users, PopulationProfile::recommended(), 11).apply(&mut jobs);

    let mut workloads: Vec<Vec<grid_workload::Job>> = vec![Vec::new(); resources.len()];
    workloads[0] = jobs;

    let report = run_federation(
        resources,
        workloads,
        FederationConfig::with_mode(SchedulingMode::Economy),
    );

    println!(
        "accepted {:.1} % of the trace; {} jobs migrated into the federation",
        report.mean_acceptance_rate(),
        report.resources[0].migrated
    );
    for r in report.resources.iter().filter(|r| r.remote_jobs_processed > 0) {
        println!(
            "  {:<14} executed {:>4} remote jobs, earning {:>12.1} G$",
            r.name, r.remote_jobs_processed, r.incentive
        );
    }
    println!(
        "average response time {:.1} s, average budget spent {:.1} G$",
        report.federation_avg_response_time(false),
        report.federation_avg_budget_spent(false)
    );
}
