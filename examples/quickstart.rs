//! Quickstart: build a three-cluster Grid-Federation, submit a handful of
//! jobs with different QoS strategies and print what happened to each.
//!
//! Run with: `cargo run --release --example quickstart`

use grid_cluster::ResourceSpec;
use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_federation_core::ExecutionOutcome;
use grid_workload::{Job, JobId, Strategy, UserId};

fn main() {
    // 1. Describe the participating clusters: R_i = (processors, MIPS,
    //    bandwidth) plus the owner's access price c_i.
    let resources = vec![
        ResourceSpec::new("cheap-and-slow", 256, 600.0, 1.0, 2.4),
        ResourceSpec::new("balanced", 128, 800.0, 2.0, 3.2),
        ResourceSpec::new("fast-and-pricey", 64, 1_000.0, 4.0, 4.0),
    ];

    // 2. Give the first cluster a local workload.  Each job states when it
    //    arrives, how many processors it needs and how long it would run on
    //    its home cluster; budgets and deadlines are fabricated by the
    //    federation using the paper's Eq. 7–8.
    let mut jobs = Vec::new();
    for i in 0..6 {
        let mut job = Job::from_runtime(
            JobId { origin: 0, seq: i },
            UserId { origin: 0, local: i % 3 },
            (i as f64) * 120.0, // submit every two minutes
            32,
            1_800.0, // half an hour on the home cluster
            600.0,   // home cluster speed in MIPS
            0.10,    // 10 % of the runtime is communication
        );
        // Alternate between cost-optimising and time-optimising users.
        job.qos.strategy = if i % 2 == 0 { Strategy::Ofc } else { Strategy::Oft };
        jobs.push(job);
    }

    // 3. Run the federation with the economy-driven scheduler.
    let report = run_federation(
        resources,
        vec![jobs, Vec::new(), Vec::new()],
        FederationConfig::with_mode(SchedulingMode::Economy),
    );

    // 4. Inspect the outcome.
    println!(
        "{:<8} {:<9} {:>16} {:>12} {:>12} {:>9}",
        "job", "strategy", "ran on", "response(s)", "cost(G$)", "messages"
    );
    for record in &report.jobs {
        match record.outcome {
            ExecutionOutcome::Completed { executed_on, cost, .. } => {
                println!(
                    "{:<8} {:<9} {:>16} {:>12.1} {:>12.1} {:>9}",
                    record.id.to_string(),
                    record.strategy.to_string(),
                    report.resources[executed_on].name,
                    record.response_time().unwrap_or(0.0),
                    cost,
                    record.messages,
                );
            }
            ExecutionOutcome::Rejected => {
                println!(
                    "{:<8} {:<9} {:>16} {:>12} {:>12} {:>9}",
                    record.id.to_string(),
                    record.strategy.to_string(),
                    "REJECTED",
                    "-",
                    "-",
                    record.messages,
                );
            }
        }
    }

    println!();
    for r in &report.resources {
        println!(
            "{:<16} utilization {:>5.1} %   incentive {:>10.1} G$   remote jobs {}",
            r.name,
            r.utilization_percent(),
            r.incentive,
            r.remote_jobs_processed
        );
    }
    println!(
        "\nfederation: {:.1} % of jobs accepted, {} messages, {:.1} G$ traded",
        report.mean_acceptance_rate(),
        report.messages.total_messages(),
        report.bank.total_volume()
    );
}
