//! fedlint — workspace-native static analysis for the grid-federation repo.
//!
//! A deliberately dependency-free, line/token-level scanner over the
//! workspace's `.rs` sources.  It does not parse Rust properly (no `syn`, no
//! registry access — the build environment is offline); instead it strips
//! comments and string literals per line and applies a small set of
//! repo-specific rules whose patterns are chosen so that rustfmt-formatted
//! code is matched reliably:
//!
//! | rule | scope | what it catches |
//! |------|-------|-----------------|
//! | `hash-iteration` | sim crates | iterating `HashMap`/`HashSet` (nondeterministic order) |
//! | `wall-clock` | all but bench/shims/`parallel.rs` | `Instant::now`, `SystemTime`, `thread::spawn` |
//! | `float-sort` | sim crates | sort/min/max comparators using `partial_cmp` without `total_cmp` |
//! | `charge-drop` | whole workspace | dropping the `u64` message cost of `subscribe`/`unsubscribe`/`update_price` |
//! | `undocumented-pub` | sim crates | `pub` items without a doc comment |
//! | `hot-path-unwrap` | PR 3 hot-path files | `.unwrap()` / `.expect(` on the per-event path |
//! | `eager-materialise` | sim + workload/experiments crates | collecting a full `Vec<Job>` outside the streaming adapter |
//! | `unbounded-retry` | sim crates | a retry/retransmit counter incremented with no bounded policy in sight |
//! | `adhoc-print` | sim crates | `println!`/`eprintln!`/`dbg!` outside the obs layer and test code |
//! | `bare-allow` | whole workspace | an allow escape whose comment does not name the invariant it waives |
//!
//! The *sim crates* — `grid-des`, `grid-cluster`, `grid-federation-core`,
//! `grid-directory` — are the ones whose behaviour feeds the rendered paper
//! tables, so everything that could make a run irreproducible is banned
//! there outright.
//!
//! Any finding can be suppressed with an allow comment:
//!
//! ```text
//! // The queue never holds more than u32::MAX events, so the cast
//! // cannot panic.  fedlint: allow(hot-path-unwrap)
//! let slot = u32::try_from(self.slots.len())
//!     .expect("more than u32::MAX pending events");
//! ```
//!
//! The escape covers its own line and the remainder of the statement it
//! opens (through the next line ending in `;`, `{` or `}`), so it reads as a
//! justification attached to exactly one construct, not a file-wide off
//! switch.  The justification is mandatory: the `bare-allow` rule requires
//! the comment block around every escape to *name the invariant it waives*
//! (checked against a per-rule keyword list — e.g. a `hot-path-unwrap`
//! escape must say why the panic can *never* fire), and `bare-allow` itself
//! cannot be allow-listed away.  Code under `#[cfg(test)]` modules and
//! `tests/`/`benches/` targets is exempt from the API-hygiene rules but
//! still checked for determinism: a flaky test is as expensive as a flaky
//! run.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The rule a [`Finding`] was produced by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over `HashMap`/`HashSet` in a sim crate.
    HashIteration,
    /// Wall-clock or OS-thread primitives outside the sanctioned scopes.
    WallClock,
    /// A float comparator built on `partial_cmp` instead of `total_cmp`.
    FloatSort,
    /// A charge-returning directory mutator whose `u64` cost is dropped.
    ChargeDrop,
    /// A `pub` item in a sim crate without a doc comment.
    UndocumentedPub,
    /// `.unwrap()` / `.expect(` on a PR 3 hot-path file.
    HotPathUnwrap,
    /// A full workload collected into a `Vec<Job>` outside the streaming
    /// adapter and test code.
    EagerMaterialise,
    /// A retry/retransmit counter incremented in a sim crate with no
    /// bounded policy (`max_retries`, `max_retransmits`, `RetryPolicy`, …)
    /// referenced nearby.
    UnboundedRetry,
    /// `println!`/`eprintln!`/`dbg!` in a sim crate outside test code: all
    /// run telemetry must flow through the observability layer so reports
    /// stay machine-readable and the hot path stays I/O-free.
    AdhocPrint,
    /// A `fedlint: allow(...)` escape whose surrounding comment never names
    /// the invariant it waives.  Cannot itself be allow-listed.
    BareAllow,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 10] = [
        Rule::HashIteration,
        Rule::WallClock,
        Rule::FloatSort,
        Rule::ChargeDrop,
        Rule::UndocumentedPub,
        Rule::HotPathUnwrap,
        Rule::EagerMaterialise,
        Rule::UnboundedRetry,
        Rule::AdhocPrint,
        Rule::BareAllow,
    ];

    /// The kebab-case id used in reports and `fedlint: allow(...)` escapes.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIteration => "hash-iteration",
            Rule::WallClock => "wall-clock",
            Rule::FloatSort => "float-sort",
            Rule::ChargeDrop => "charge-drop",
            Rule::UndocumentedPub => "undocumented-pub",
            Rule::HotPathUnwrap => "hot-path-unwrap",
            Rule::EagerMaterialise => "eager-materialise",
            Rule::UnboundedRetry => "unbounded-retry",
            Rule::AdhocPrint => "adhoc-print",
            Rule::BareAllow => "bare-allow",
        }
    }

    /// Parses a rule id as written in an allow escape.  `bare-allow` polices
    /// the escapes themselves and so is never parseable here: writing
    /// `fedlint: allow(bare-allow)` waives nothing.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL
            .iter()
            .copied()
            .filter(|&r| r != Rule::BareAllow)
            .find(|r| r.id() == id)
    }

    /// One-line rationale, shown by `fedlint rules`.
    #[must_use]
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::HashIteration => {
                "hash iteration order is nondeterministic; sim state must use BTreeMap/BTreeSet or sort"
            }
            Rule::WallClock => {
                "wall-clock time and ad-hoc threads make runs irreproducible; only the parallel sweep driver and benches may use them"
            }
            Rule::FloatSort => {
                "partial_cmp comparators panic or misorder on NaN; float orderings must go through total_cmp"
            }
            Rule::ChargeDrop => {
                "directory mutators return a publish-side message cost that must be charged into a ledger or dropped explicitly with `let _ =`"
            }
            Rule::UndocumentedPub => "public sim-crate API needs a doc comment",
            Rule::HotPathUnwrap => {
                "panicking branches on the per-event hot path cost codegen and hide invariants; restructure or justify with an allow escape"
            }
            Rule::EagerMaterialise => {
                "collecting a full Vec<Job> pins the whole workload in memory; stream through JobSource and call collect_jobs() only at the engine boundary"
            }
            Rule::UnboundedRetry => {
                "a retry/retransmit loop with no bounded policy can spin forever on a faulted link; gate the counter on max_retries/max_retransmits or a RetryPolicy"
            }
            Rule::AdhocPrint => {
                "ad-hoc printing from a sim crate bypasses the metrics registry and trace sinks; record through grid-obs so every run artifact stays machine-readable"
            }
            Rule::BareAllow => {
                "an allow escape is a waived invariant; its comment block must say why the invariant holds here, and the waiver itself cannot be waived"
            }
        }
    }

    /// Keywords, any one of which counts as naming the waived invariant in
    /// the comment block around a `fedlint: allow(...)` escape.  Matched
    /// case-insensitively as substrings, so e.g. `determin` covers both
    /// "deterministic" and "determinism".
    #[must_use]
    pub fn invariant_keywords(self) -> &'static [&'static str] {
        match self {
            Rule::HashIteration => &["order", "determin", "sort"],
            Rule::WallClock => &["clock", "wall", "reproduc", "determin"],
            Rule::FloatSort => &["nan", "total_cmp", "order"],
            Rule::ChargeDrop => &["charge", "cost", "ledger", "free", "message"],
            Rule::UndocumentedPub => &["doc"],
            Rule::HotPathUnwrap => &["always", "never", "panic", "infallib", "invariant"],
            Rule::EagerMaterialise => &["memory", "stream", "engine", "bound"],
            Rule::UnboundedRetry => &["bound", "cap", "budget", "finite", "max"],
            Rule::AdhocPrint => &["diagnostic", "metric", "registry", "obs", "report"],
            Rule::BareAllow => &[],
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable detail naming the offending construct.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rule sets apply to one source file, derived from its
/// workspace-relative path.
#[derive(Debug, Clone, Copy)]
struct FileClass {
    /// Determinism + hygiene rules apply (grid-des / grid-cluster /
    /// grid-federation-core / grid-directory).
    sim: bool,
    /// Exempt from `wall-clock` (benches, vendored shims, the sweep driver).
    wall_clock_exempt: bool,
    /// On the PR 3 hot-path list (`hot-path-unwrap` applies).
    hot_path: bool,
    /// The whole file is test code (`tests/` or `benches/` target).
    test_file: bool,
    /// `eager-materialise` applies: sim crates plus the workload and
    /// experiments crates, minus the streaming adapter itself.
    workload_scope: bool,
}

/// Crates whose behaviour feeds the rendered paper tables.
const SIM_CRATE_PREFIXES: [&str; 4] = [
    "crates/des/",
    "crates/cluster/",
    "crates/core/",
    "crates/directory/",
];

/// The per-event hot-path files identified by the PR 3 profiling pass.
const HOT_PATH_FILES: [&str; 4] = [
    "crates/des/src/queue.rs",
    "crates/cluster/src/estimate.rs",
    "crates/core/src/gfa.rs",
    "crates/directory/src/cursor.rs",
];

fn classify(rel: &str) -> Option<FileClass> {
    // Vendored shims are third-party idiom, and the fixtures are violations
    // on purpose; both are out of scope entirely.
    if rel.starts_with("crates/shims/")
        || rel.contains("fedlint/tests/fixtures")
        || rel.starts_with("target/")
        || rel.contains("/target/")
    {
        return None;
    }
    let sim = SIM_CRATE_PREFIXES.iter().any(|p| rel.starts_with(p));
    Some(FileClass {
        sim,
        // `crates/obs/` hosts the self-profiler, the one sanctioned
        // `Instant::now` site: wall-clock readings there live strictly
        // outside simulation state, so they cannot perturb a run.
        wall_clock_exempt: rel.starts_with("crates/bench/")
            || rel.starts_with("crates/obs/")
            || rel == "crates/experiments/src/parallel.rs",
        hot_path: HOT_PATH_FILES.contains(&rel),
        test_file: rel.contains("/tests/") || rel.contains("/benches/"),
        // The adapter is where `collect_jobs()` legitimately materialises —
        // it is the single sanctioned sink, so the rule skips it.
        workload_scope: (sim
            || rel.starts_with("crates/workload/")
            || rel.starts_with("crates/experiments/"))
            && rel != "crates/workload/src/source.rs",
    })
}

/// Per-line comment/string stripper.  Carries block-comment state across
/// lines; string literals are assumed not to span lines (true of this
/// workspace, and a miss only ever produces a false *negative* for one
/// line).
#[derive(Default)]
struct Stripper {
    in_block_comment: bool,
}

impl Stripper {
    /// Splits one source line into (code with strings blanked, comment
    /// text).
    fn strip(&mut self, line: &str) -> (String, String) {
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if self.in_block_comment {
                match line[i..].find("*/") {
                    Some(off) => {
                        comment.push_str(&line[i..i + off]);
                        self.in_block_comment = false;
                        i += off + 2;
                    }
                    None => {
                        comment.push_str(&line[i..]);
                        return (code, comment);
                    }
                }
                continue;
            }
            let c = bytes[i] as char;
            match c {
                '/' if bytes.get(i + 1) == Some(&b'/') => {
                    comment.push_str(&line[i + 2..]);
                    return (code, comment);
                }
                '/' if bytes.get(i + 1) == Some(&b'*') => {
                    self.in_block_comment = true;
                    i += 2;
                }
                '"' => {
                    // Blank the literal body, keep the quotes as a token.
                    code.push('"');
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    code.push('"');
                }
                '\'' => {
                    // Distinguish a char literal from a lifetime: a literal
                    // closes with another quote within a few bytes.
                    let rest = &bytes[i + 1..];
                    let lit_len = match rest {
                        [b'\\', ..] => rest.iter().skip(1).position(|&b| b == b'\'').map(|p| p + 2),
                        [_, b'\'', ..] => Some(2),
                        _ => None,
                    };
                    match lit_len {
                        Some(l) => {
                            code.push_str("' '");
                            i += 1 + l + 1;
                        }
                        None => {
                            code.push('\'');
                            i += 1;
                        }
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        (code, comment)
    }
}

/// True when `code[idx..]` starts `token` at identifier boundaries.
fn token_at(code: &str, idx: usize, token: &str) -> bool {
    if !code[idx..].starts_with(token) {
        return false;
    }
    let before_ok = idx == 0
        || !code[..idx]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    let after = idx + token.len();
    let after_ok = !code[after..]
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// Byte offsets at which `token` occurs in `code` at identifier boundaries.
fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = code[from..].find(token) {
        let idx = from + off;
        if token_at(code, idx, token) {
            out.push(idx);
        }
        from = idx + token.len();
    }
    out
}

/// True when the token occurs anywhere in the line at identifier boundaries.
fn has_token(code: &str, token: &str) -> bool {
    !token_positions(code, token).is_empty()
}

/// Removes the `fedlint: allow(...)` markers themselves from a comment so a
/// rule id (`wall-clock` contains "wall") cannot satisfy its own
/// keyword check.
fn strip_escapes(comment: &str) -> String {
    let mut out = String::with_capacity(comment.len());
    let mut rest = comment;
    while let Some(off) = rest.find("fedlint: allow(") {
        out.push_str(&rest[..off]);
        let tail = &rest[off + "fedlint: allow(".len()..];
        match tail.find(')') {
            Some(close) => rest = &tail[close + 1..],
            None => return out,
        }
    }
    out.push_str(rest);
    out
}

/// The lower-cased, escape-free text of the contiguous comment block around
/// line `idx`: every adjacent line carrying comment text, joined.  This is
/// the window inside which a justification for an allow escape must appear.
fn comment_block_text(stripped: &[(String, String)], idx: usize) -> String {
    let has = |i: usize| !stripped[i].1.trim().is_empty();
    let mut start = idx;
    while start > 0 && has(start - 1) {
        start -= 1;
    }
    let mut end = idx;
    while end + 1 < stripped.len() && has(end + 1) {
        end += 1;
    }
    let mut text = String::new();
    for (_, comment) in &stripped[start..=end] {
        text.push_str(&strip_escapes(comment));
        text.push('\n');
    }
    text.to_lowercase()
}

/// Extracts `fedlint: allow(a, b)` rule ids from a comment.
fn parse_allows(comment: &str, out: &mut Vec<Rule>) {
    let mut rest = comment;
    while let Some(off) = rest.find("fedlint: allow(") {
        let args = &rest[off + "fedlint: allow(".len()..];
        let Some(close) = args.find(')') else { return };
        for id in args[..close].split(',') {
            if let Some(rule) = Rule::from_id(id.trim()) {
                if !out.contains(&rule) {
                    out.push(rule);
                }
            }
        }
        rest = &args[close + 1..];
    }
}

/// The charge-returning directory mutators whose `u64` result must not be
/// silently dropped.
const CHARGE_METHODS: [&str; 3] = ["subscribe", "unsubscribe", "update_price"];

/// If the trimmed line *begins* with a receiver chain that calls a charge
/// method — i.e. the call is in statement position, not on the right of a
/// binding — returns `(method, byte offset of its open paren)`.
fn charge_call_at_statement_start(trimmed: &str) -> Option<(&'static str, usize)> {
    let bytes = trimmed.as_bytes();
    let mut i = 0;
    // Leading receiver identifier.
    if !bytes
        .first()
        .is_some_and(|&b| (b as char).is_ascii_alphabetic() || b == b'_')
    {
        return None;
    }
    while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    // Walk `.segment`s (allowing balanced call/index suffixes in between).
    loop {
        // Skip balanced (...) or [...] suffixes of the previous segment.
        while i < bytes.len() && (bytes[i] == b'(' || bytes[i] == b'[') {
            let (open, close) = if bytes[i] == b'(' { (b'(', b')') } else { (b'[', b']') };
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == open {
                    depth += 1;
                } else if bytes[i] == close {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        if i >= bytes.len() || bytes[i] != b'.' {
            return None;
        }
        i += 1;
        let seg_start = i;
        while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let seg = &trimmed[seg_start..i];
        if i < bytes.len() && bytes[i] == b'(' {
            if let Some(&m) = CHARGE_METHODS.iter().find(|&&m| m == seg) {
                return Some((m, i));
            }
        }
    }
}

/// Scans a statement starting at `(line_idx, col)` across stripped lines:
/// returns the first non-whitespace char after the statement's balanced
/// brackets close, if found within a bounded window.
fn char_after_balanced(stripped: &[(String, String)], line_idx: usize, col: usize) -> Option<char> {
    let mut depth = 0usize;
    let mut started = false;
    for (n, (code, _)) in stripped.iter().enumerate().skip(line_idx).take(40) {
        let text = if n == line_idx { &code[col..] } else { code.as_str() };
        for (ci, c) in text.char_indices() {
            match c {
                '(' | '[' | '{' => {
                    depth += 1;
                    started = true;
                }
                ')' | ']' | '}' => {
                    depth = depth.saturating_sub(1);
                    if started && depth == 0 {
                        // First non-space char after the close, looking
                        // ahead across lines.
                        let tail = text[ci + c.len_utf8()..].trim_start();
                        if let Some(ch) = tail.chars().next() {
                            return Some(ch);
                        }
                        for (next, _) in stripped.iter().skip(n + 1).take(5) {
                            if let Some(ch) = next.trim_start().chars().next() {
                                return Some(ch);
                            }
                        }
                        return None;
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Accumulates the text of a bracketed call starting at `(line_idx, col)`
/// until its brackets balance (bounded window), for comparator inspection.
fn balanced_text(stripped: &[(String, String)], line_idx: usize, col: usize) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    let mut started = false;
    for (n, (code, _)) in stripped.iter().enumerate().skip(line_idx).take(15) {
        let text = if n == line_idx { &code[col..] } else { code.as_str() };
        for c in text.chars() {
            out.push(c);
            match c {
                '(' | '[' | '{' => {
                    depth += 1;
                    started = true;
                }
                ')' | ']' | '}' => {
                    depth = depth.saturating_sub(1);
                    if started && depth == 0 {
                        return out;
                    }
                }
                _ => {}
            }
        }
        out.push('\n');
    }
    out
}

/// Iteration methods whose order depends on the hasher.
const HASH_ITER_METHODS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

/// Sort-like openers whose comparator must use `total_cmp`.
const FLOAT_SORT_OPENERS: [&str; 6] = [
    ".sort_by(",
    ".sort_unstable_by(",
    ".max_by(",
    ".min_by(",
    ".binary_search_by(",
    ".select_nth_unstable_by(",
];

/// Wall-clock / OS-thread tokens banned outside the sanctioned scopes.
const WALL_CLOCK_TOKENS: [&str; 3] = ["Instant::now", "SystemTime", "thread::spawn"];

/// Print-style macros banned in sim crates outside test code: run telemetry
/// belongs in the grid-obs metrics registry and trace sinks, not on stdio.
/// Matched at token boundaries, so `eprintln!` can never double-report as
/// `println!`.
const ADHOC_PRINT_MACROS: [&str; 3] = ["println!", "eprintln!", "dbg!"];

/// Item keywords that `undocumented-pub` recognises after `pub `.
const PUB_ITEM_KEYWORDS: [&str; 11] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union", "async", "unsafe",
];

/// Scans one source file's content under its workspace-relative path.
///
/// The path determines which rules apply (see the module docs); content is
/// scanned line by line with comments and string literals stripped.  This is
/// the unit the fixture tests drive directly: fixtures live under
/// `tests/fixtures/` but are scanned *as if* they sat at sim-crate paths.
#[must_use]
pub fn scan_source(rel_path: &str, content: &str) -> Vec<Finding> {
    let Some(class) = classify(rel_path) else {
        return Vec::new();
    };
    let originals: Vec<&str> = content.lines().collect();
    let mut stripper = Stripper::default();
    let stripped: Vec<(String, String)> = originals.iter().map(|l| stripper.strip(l)).collect();

    let mut findings = Vec::new();
    let mut window_allows: Vec<Rule> = Vec::new();
    let mut hash_idents: Vec<String> = Vec::new();
    let mut brace_depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut test_mod_depth: Option<i64> = None;

    for (idx, (code, comment)) in stripped.iter().enumerate() {
        let line_no = idx + 1;
        let trimmed = code.trim();

        // --- allow escapes -------------------------------------------------
        let mut active = window_allows.clone();
        parse_allows(comment, &mut active);
        let suppressed = |rule: Rule| active.contains(&rule);

        // --- test-module tracking -----------------------------------------
        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && !trimmed.is_empty() {
            if token_positions(trimmed, "mod").first() == Some(&0) && trimmed.contains('{') {
                test_mod_depth = Some(brace_depth);
            }
            if !trimmed.starts_with("#[") {
                pending_cfg_test = false;
            }
        }
        let in_test = class.test_file || test_mod_depth.is_some();

        // --- determinism: hash-iteration ----------------------------------
        if class.sim {
            if has_token(code, "HashMap") || has_token(code, "HashSet") {
                track_hash_binding(trimmed, &mut hash_idents);
            }
            if !suppressed(Rule::HashIteration) {
                for ident in &hash_idents {
                    if let Some(m) = hash_iteration_on(code, ident) {
                        findings.push(Finding {
                            file: rel_path.to_string(),
                            line: line_no,
                            rule: Rule::HashIteration,
                            message: format!(
                                "`{ident}` is a hash collection; `{m}` observes nondeterministic order — use BTreeMap/BTreeSet or collect-and-sort"
                            ),
                        });
                        break;
                    }
                }
            }
        }

        // --- determinism: wall-clock --------------------------------------
        if !class.wall_clock_exempt && !suppressed(Rule::WallClock) {
            for tok in WALL_CLOCK_TOKENS {
                if code.contains(tok) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::WallClock,
                        message: format!(
                            "`{tok}` outside `grid_experiments::parallel`/bench crates breaks reproducibility — use the simulation clock"
                        ),
                    });
                    break;
                }
            }
        }

        // --- determinism: float-sort --------------------------------------
        if class.sim && !suppressed(Rule::FloatSort) {
            for opener in FLOAT_SORT_OPENERS {
                if let Some(col) = code.find(opener) {
                    let stmt = balanced_text(&stripped, idx, col + opener.len() - 1);
                    if stmt.contains("partial_cmp") && !stmt.contains("total_cmp") {
                        findings.push(Finding {
                            file: rel_path.to_string(),
                            line: line_no,
                            rule: Rule::FloatSort,
                            message: format!(
                                "`{}` comparator uses `partial_cmp` — float orderings must use `total_cmp`",
                                opener.trim_start_matches('.').trim_end_matches('(')
                            ),
                        });
                        break;
                    }
                }
            }
        }

        // --- charge accounting: charge-drop -------------------------------
        if !suppressed(Rule::ChargeDrop) {
            let lead = code.len() - code.trim_start().len();
            if let Some((method, paren)) = charge_call_at_statement_start(trimmed) {
                if char_after_balanced(&stripped, idx, lead + paren) == Some(';') {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::ChargeDrop,
                        message: format!(
                            "`{method}` returns a publish-side message cost; charge it into a ledger or drop it explicitly with `let _ =`"
                        ),
                    });
                }
            }
        }

        // --- hygiene: undocumented-pub ------------------------------------
        if class.sim && !in_test && !suppressed(Rule::UndocumentedPub) {
            if let Some(item) = pub_item(trimmed) {
                if !has_doc_above(&originals, idx) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::UndocumentedPub,
                        message: format!("public {item} has no doc comment"),
                    });
                }
            }
        }

        // --- scale: eager-materialise -------------------------------------
        if class.workload_scope && !in_test && !suppressed(Rule::EagerMaterialise) {
            if let Some(form) = eager_materialise_on(code) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::EagerMaterialise,
                    message: format!(
                        "{form} pins the whole workload in memory — stream through `JobSource` and call `collect_jobs()` only at the engine boundary"
                    ),
                });
            }
        }

        // --- hygiene: hot-path-unwrap -------------------------------------
        if class.hot_path && !in_test && !suppressed(Rule::HotPathUnwrap) {
            let hit = if code.contains(".unwrap()") {
                Some(".unwrap()")
            } else if code.contains(".expect(") {
                Some(".expect(…)")
            } else {
                None
            };
            if let Some(call) = hit {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::HotPathUnwrap,
                    message: format!(
                        "`{call}` on a PR 3 hot-path file — restructure the panic off the per-event path or justify with `fedlint: allow(hot-path-unwrap)`"
                    ),
                });
            }
        }

        // --- robustness: unbounded-retry -----------------------------------
        if class.sim && !in_test && !suppressed(Rule::UnboundedRetry) {
            if let Some(ident) = retry_increment_on(code) {
                let start = idx.saturating_sub(RETRY_BOUND_WINDOW);
                let end = (idx + 3).min(stripped.len());
                let bounded = stripped[start..end]
                    .iter()
                    .any(|(c, _)| RETRY_BOUND_TOKENS.iter().any(|t| c.contains(t)));
                if !bounded {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::UnboundedRetry,
                        message: format!(
                            "`{ident} += 1` with no bounded policy in sight — gate the counter on a budget ({}) so a faulted link cannot retry forever",
                            RETRY_BOUND_TOKENS.join(", "),
                        ),
                    });
                }
            }
        }

        // --- hygiene: adhoc-print ------------------------------------------
        if class.sim && !in_test && !suppressed(Rule::AdhocPrint) {
            if let Some(mac) = ADHOC_PRINT_MACROS.iter().find(|m| {
                let bare = &m[..m.len() - 1];
                token_positions(code, bare)
                    .iter()
                    .any(|&p| code[p + bare.len()..].starts_with('!'))
            }) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::AdhocPrint,
                    message: format!(
                        "`{mac}` in a sim crate — route run telemetry through the grid-obs metrics registry or trace sinks instead of ad-hoc output"
                    ),
                });
            }
        }

        // --- hygiene: bare-allow -------------------------------------------
        // Tests are exempt (same policy as the other hygiene rules): an
        // escape there waives nothing paper-facing, and test sources often
        // embed escape-shaped strings as scanner inputs.
        if !in_test {
            let mut escaped_here: Vec<Rule> = Vec::new();
            parse_allows(comment, &mut escaped_here);
            if !escaped_here.is_empty() {
                let block = comment_block_text(&stripped, idx);
                for rule in escaped_here {
                    let named = rule
                        .invariant_keywords()
                        .iter()
                        .any(|kw| block.contains(kw));
                    if !named {
                        findings.push(Finding {
                            file: rel_path.to_string(),
                            line: line_no,
                            rule: Rule::BareAllow,
                            message: format!(
                                "`fedlint: allow({id})` without a justification — the surrounding comment must name the invariant it waives (mention one of: {kws})",
                                id = rule.id(),
                                kws = rule.invariant_keywords().join(", "),
                            ),
                        });
                    }
                }
            }
        }

        // --- bookkeeping ---------------------------------------------------
        for c in code.chars() {
            match c {
                '{' => brace_depth += 1,
                '}' => {
                    brace_depth -= 1;
                    if test_mod_depth.is_some_and(|d| brace_depth <= d) {
                        test_mod_depth = None;
                    }
                }
                _ => {}
            }
        }
        parse_allows(comment, &mut window_allows);
        if trimmed.ends_with(';') || trimmed.ends_with('{') || trimmed.ends_with('}') {
            window_allows.clear();
        }
    }
    findings
}

/// Records identifiers bound to hash collections on this line: `let` (and
/// `let mut`) bindings plus struct-field declarations.
fn track_hash_binding(trimmed: &str, idents: &mut Vec<String>) {
    let name = if let Some(rest) = trimmed.strip_prefix("let ") {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        Some(leading_ident(rest))
    } else if let Some(colon) = trimmed.find(": ") {
        // Field declaration: the identifier directly before the colon, with
        // the hash type on the right (`use` paths have no `: ` separator).
        let (lhs, rhs) = trimmed.split_at(colon);
        if has_token(rhs, "HashMap") || has_token(rhs, "HashSet") {
            lhs.split_whitespace().next_back().map(str::to_string)
        } else {
            None
        }
    } else {
        None
    };
    if let Some(name) = name {
        if !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !idents.contains(&name)
        {
            idents.push(name);
        }
    }
}

fn leading_ident(s: &str) -> String {
    s.chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect()
}

/// If `code` iterates hash collection `ident`, returns the offending form.
fn hash_iteration_on(code: &str, ident: &str) -> Option<String> {
    for pos in token_positions(code, ident) {
        let after = &code[pos + ident.len()..];
        for m in HASH_ITER_METHODS {
            if after.starts_with(m) {
                return Some(format!("{ident}{m}"));
            }
        }
    }
    // `for x in map` / `for x in &map` / `for x in self.map`.
    if let Some(for_pos) = token_positions(code, "for").first() {
        if let Some(in_off) = code[*for_pos..].find(" in ") {
            let expr = code[*for_pos + in_off + 4..].trim_start();
            let expr = expr.strip_prefix("&mut ").unwrap_or(expr);
            let expr = expr.strip_prefix('&').unwrap_or(expr);
            let expr = expr.strip_prefix("self.").unwrap_or(expr);
            if leading_ident(expr) == ident {
                return Some(format!("for … in {ident}"));
            }
        }
    }
    None
}

/// If `code` collects an iterator into a full `Vec<Job>`, returns the
/// offending form: a `.collect::<Vec<Job>>()` turbofish (any path prefix on
/// `Job`), or a plain `.collect()` on a line whose binding is annotated
/// `Vec<Job>`.  `collect_jobs()` — the sanctioned adapter — never matches,
/// and `Job`-compounds like `JobRecord` are excluded by token boundaries.
fn eager_materialise_on(code: &str) -> Option<&'static str> {
    let mut from = 0;
    while let Some(off) = code[from..].find(".collect") {
        let idx = from + off;
        let after = &code[idx + ".collect".len()..];
        if let Some(generics) = after.strip_prefix("::<") {
            let ty = &generics[..generics.find('(').unwrap_or(generics.len())];
            if ty.contains("Vec<") && has_token(ty, "Job") {
                return Some("`.collect::<Vec<Job>>()`");
            }
        } else if after.starts_with('(') && code.contains("Vec<") && has_token(code, "Job") {
            return Some("`.collect()` into a `Vec<Job>` binding");
        }
        from = idx + ".collect".len();
    }
    None
}

/// Bounded-policy tokens: any one of these inside the
/// [`RETRY_BOUND_WINDOW`] around a retry increment counts as evidence the
/// counter is capped.
const RETRY_BOUND_TOKENS: [&str; 6] = [
    "max_retries",
    "max_retransmits",
    "max_attempts",
    "MAX_BACKOFF",
    "RetryPolicy",
    "backoff_delay",
];

/// Code lines above a retry increment inside which a bound token must
/// appear (the increment's own line and two below are also searched).
const RETRY_BOUND_WINDOW: usize = 8;

/// If `code` increments a retry/retransmit/attempt-style counter by exactly
/// one, returns the counter's identifier.
fn retry_increment_on(code: &str) -> Option<String> {
    let idx = code.find("+= 1")?;
    // `+= 10`, `+= 1_000` etc. are accumulations, not loop steps.
    if code[idx + "+= 1".len()..]
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        return None;
    }
    let lhs = code[..idx].trim_end();
    let ident: String = lhs
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let lower = ident.to_lowercase();
    if lower.contains("retr") || lower.contains("attempt") {
        Some(ident)
    } else {
        None
    }
}

/// If the line declares a `pub` item (not `pub use` / `pub(crate)`),
/// returns its keyword.
fn pub_item(trimmed: &str) -> Option<&'static str> {
    let rest = trimmed.strip_prefix("pub ")?;
    let kw = rest.split_whitespace().next()?;
    // `pub mod foo;` is a file module whose docs are its `//!` header;
    // only an *inline* `pub mod foo {` needs a doc comment here.
    if kw == "mod" && trimmed.ends_with(';') {
        return None;
    }
    // `pub const fn` / `pub async fn` / `pub unsafe fn` all start with a
    // recognised keyword; `pub use` deliberately excluded (re-exports take
    // their docs from the source item).
    PUB_ITEM_KEYWORDS.iter().copied().find(|&k| k == kw)
}

/// True when the item at `originals[idx]` carries a doc comment above it
/// (skipping attribute lines in between).
fn has_doc_above(originals: &[&str], idx: usize) -> bool {
    for prev in originals[..idx].iter().rev() {
        let t = prev.trim();
        if t.starts_with("#[") || t.ends_with("]") && t.starts_with('#') {
            continue;
        }
        return t.starts_with("///") || t.starts_with("#[doc");
    }
    false
}

/// Recursively scans every `.rs` file under `root`, returning findings
/// sorted by path and line.  Paths under `target/`, `.git`, vendored shims
/// and the fedlint fixtures are skipped.
///
/// # Errors
/// Propagates I/O errors from directory walks and file reads.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in files {
        let content = fs::read_to_string(root.join(&rel))?;
        findings.extend(scan_source(&rel, &content));
    }
    Ok(findings)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == ".github" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if classify(&rel).is_some() {
                out.push(rel);
            }
        }
    }
    Ok(())
}
