//! The `fedlint` CLI: `cargo run -p fedlint -- check [--root PATH]`.

use std::path::PathBuf;
use std::process::ExitCode;

use fedlint::{scan_workspace, Rule};

const USAGE: &str = "\
usage: fedlint <command> [options]

commands:
  check [--root PATH]   scan the workspace (default: current directory);
                        exits 1 if any finding is reported
  rules                 list the rules and their rationale
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {
            let mut root = PathBuf::from(".");
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(p) => root = PathBuf::from(p),
                        None => {
                            eprintln!("fedlint: --root needs a path\n{USAGE}");
                            return ExitCode::from(2);
                        }
                    },
                    other => {
                        eprintln!("fedlint: unknown option `{other}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            check(&root)
        }
        Some("rules") => {
            for rule in Rule::ALL {
                println!("{:<17} {}", rule.id(), rule.rationale());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(root: &std::path::Path) -> ExitCode {
    match scan_workspace(root) {
        Ok(findings) if findings.is_empty() => {
            eprintln!("fedlint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("fedlint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fedlint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
