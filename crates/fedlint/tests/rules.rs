//! Fixture tests: every rule must fire on its seeded violations, respect
//! its `fedlint: allow(...)` escapes, and stay silent outside its scope —
//! and the real workspace must scan clean.

use std::path::Path;

use fedlint::{scan_source, scan_workspace, Finding, Rule};

/// Lines at which `rule` fired when scanning `content` as `path`.
fn lines(path: &str, content: &str, rule: Rule) -> Vec<usize> {
    scan_source(path, content)
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

/// Findings of rules *other* than `rule` (fixtures must not trip rules they
/// don't exercise).
fn other_rules(path: &str, content: &str, rule: Rule) -> Vec<Finding> {
    scan_source(path, content)
        .into_iter()
        .filter(|f| f.rule != rule)
        .collect()
}

#[test]
fn hash_iteration_fires_on_fixture() {
    let src = include_str!("fixtures/hash_iteration.rs");
    let path = "crates/core/src/fixture.rs";
    // `for` over a local map, `.iter()` on a set, `.keys()` on a map, and
    // `for` over a hash field through `self.`; the `.values()` call is
    // allowlisted.
    assert_eq!(lines(path, src, Rule::HashIteration), vec![11, 16, 17, 31]);
    assert_eq!(other_rules(path, src, Rule::HashIteration), vec![]);
}

#[test]
fn hash_iteration_is_scoped_to_sim_crates() {
    let src = include_str!("fixtures/hash_iteration.rs");
    assert_eq!(lines("crates/baselines/src/fixture.rs", src, Rule::HashIteration), vec![]);
}

#[test]
fn wall_clock_fires_on_fixture() {
    let src = include_str!("fixtures/wall_clock.rs");
    let path = "crates/experiments/src/fixture.rs";
    // `Instant::now`, `SystemTime`, `thread::spawn`; the second
    // `Instant::now` is allowlisted, and the plain `Instant` import is not
    // a clock read.
    assert_eq!(lines(path, src, Rule::WallClock), vec![7, 8, 10]);
    assert_eq!(other_rules(path, src, Rule::WallClock), vec![]);
}

#[test]
fn wall_clock_exempts_parallel_driver_and_benches() {
    let src = include_str!("fixtures/wall_clock.rs");
    assert_eq!(lines("crates/experiments/src/parallel.rs", src, Rule::WallClock), vec![]);
    assert_eq!(lines("crates/bench/src/fixture.rs", src, Rule::WallClock), vec![]);
}

#[test]
fn float_sort_fires_on_fixture() {
    let src = include_str!("fixtures/float_sort.rs");
    let path = "crates/cluster/src/fixture.rs";
    // `sort_by`, `max_by`, and a multi-line `sort_unstable_by` comparator;
    // the `total_cmp` sort passes and the last sort is allowlisted.
    assert_eq!(lines(path, src, Rule::FloatSort), vec![5, 7, 9]);
    assert_eq!(other_rules(path, src, Rule::FloatSort), vec![]);
}

#[test]
fn charge_drop_fires_on_fixture() {
    let src = include_str!("fixtures/charge_drop.rs");
    let path = "crates/experiments/src/fixture.rs";
    // A bare statement call, a multi-line struct-literal call, and a call
    // through a field chain; `let _ =`, `+=`, `let`, and `if` consumers
    // pass, and one drop is allowlisted.
    assert_eq!(lines(path, src, Rule::ChargeDrop), vec![5, 10, 19]);
    assert_eq!(other_rules(path, src, Rule::ChargeDrop), vec![]);
}

#[test]
fn charge_drop_applies_in_sim_crates_too() {
    let src = include_str!("fixtures/charge_drop.rs");
    assert_eq!(lines("crates/directory/src/fixture.rs", src, Rule::ChargeDrop), vec![5, 10, 19]);
}

#[test]
fn undocumented_pub_fires_on_fixture() {
    let src = include_str!("fixtures/undocumented_pub.rs");
    let path = "crates/des/src/fixture.rs";
    // An undocumented `pub fn` and an undocumented `pub struct` behind a
    // derive; documented items, `pub(crate)`, `pub mod file;` declarations
    // and `#[cfg(test)]` helpers all pass.
    assert_eq!(lines(path, src, Rule::UndocumentedPub), vec![6, 9]);
    assert_eq!(other_rules(path, src, Rule::UndocumentedPub), vec![]);
}

#[test]
fn undocumented_pub_is_scoped_to_sim_crate_sources() {
    let src = include_str!("fixtures/undocumented_pub.rs");
    assert_eq!(lines("crates/experiments/src/fixture.rs", src, Rule::UndocumentedPub), vec![]);
    assert_eq!(lines("crates/des/tests/fixture.rs", src, Rule::UndocumentedPub), vec![]);
}

#[test]
fn hot_path_unwrap_fires_on_fixture() {
    let src = include_str!("fixtures/hot_path_unwrap.rs");
    let path = "crates/des/src/queue.rs";
    // `.unwrap()` and `.expect(` on the per-event path; the justified
    // expect is allowlisted and test-module unwraps are exempt.
    assert_eq!(lines(path, src, Rule::HotPathUnwrap), vec![5, 9]);
    assert_eq!(other_rules(path, src, Rule::HotPathUnwrap), vec![]);
}

#[test]
fn hot_path_unwrap_only_applies_to_listed_files() {
    let src = include_str!("fixtures/hot_path_unwrap.rs");
    assert_eq!(lines("crates/des/src/rng.rs", src, Rule::HotPathUnwrap), vec![]);
}

#[test]
fn eager_materialise_fires_on_fixture() {
    let src = include_str!("fixtures/eager_materialise.rs");
    // An annotated `.collect()`, a turbofish, and a path-qualified
    // turbofish; `collect_jobs()` (the sanctioned adapter), a
    // `Vec<JobRecord>` collect, the allowlisted collect and the
    // `#[cfg(test)]` oracle all pass.
    for path in ["crates/experiments/src/fixture.rs", "crates/core/src/fixture.rs"] {
        assert_eq!(lines(path, src, Rule::EagerMaterialise), vec![5, 6, 7], "{path}");
    }
    assert_eq!(
        other_rules("crates/experiments/src/fixture.rs", src, Rule::EagerMaterialise),
        vec![]
    );
}

#[test]
fn eager_materialise_exempts_the_adapter_tests_and_other_crates() {
    let src = include_str!("fixtures/eager_materialise.rs");
    // The streaming adapter is the one sanctioned materialisation point…
    assert_eq!(lines("crates/workload/src/source.rs", src, Rule::EagerMaterialise), vec![]);
    // …test targets build reference vectors freely…
    assert_eq!(lines("crates/workload/tests/fixture.rs", src, Rule::EagerMaterialise), vec![]);
    // …and crates outside the sim/workload/experiments scope are untouched.
    assert_eq!(lines("crates/bench/src/fixture.rs", src, Rule::EagerMaterialise), vec![]);
    // Elsewhere in the workload crate the rule is live.
    assert_eq!(
        lines("crates/workload/src/synthetic.rs", src, Rule::EagerMaterialise),
        vec![5, 6, 7]
    );
}

#[test]
fn unbounded_retry_fires_on_fixture() {
    let src = include_str!("fixtures/unbounded_retry.rs");
    let path = "crates/core/src/fixture.rs";
    // Two naked loop increments; the `max_retries`/`max_retransmits`-gated
    // loops, the justified escape, the non-unit accumulations and the
    // test-module counter all pass.
    assert_eq!(lines(path, src, Rule::UnboundedRetry), vec![11, 17]);
    assert_eq!(other_rules(path, src, Rule::UnboundedRetry), vec![]);
}

#[test]
fn unbounded_retry_is_scoped_to_sim_crates() {
    let src = include_str!("fixtures/unbounded_retry.rs");
    assert_eq!(lines("crates/experiments/src/fixture.rs", src, Rule::UnboundedRetry), vec![]);
    assert_eq!(lines("crates/core/tests/fixture.rs", src, Rule::UnboundedRetry), vec![]);
}

#[test]
fn adhoc_print_fires_on_fixture() {
    let src = include_str!("fixtures/adhoc_print.rs");
    let path = "crates/core/src/fixture.rs";
    // `println!`, `eprintln!` and `dbg!` on the sim path; the justified
    // escape, the look-alike identifiers and the test-module print pass.
    assert_eq!(lines(path, src, Rule::AdhocPrint), vec![5, 6, 7]);
    assert_eq!(other_rules(path, src, Rule::AdhocPrint), vec![]);
}

#[test]
fn adhoc_print_is_scoped_to_sim_crate_sources() {
    let src = include_str!("fixtures/adhoc_print.rs");
    // The experiment drivers render tables on stdout by design…
    assert_eq!(lines("crates/experiments/src/fixture.rs", src, Rule::AdhocPrint), vec![]);
    // …and sim-crate test targets may print diagnostics freely.
    assert_eq!(lines("crates/core/tests/fixture.rs", src, Rule::AdhocPrint), vec![]);
}

#[test]
fn shims_and_fixtures_are_out_of_scope() {
    let src = include_str!("fixtures/wall_clock.rs");
    assert_eq!(scan_source("crates/shims/criterion/src/lib.rs", src), vec![]);
    assert_eq!(scan_source("crates/fedlint/tests/fixtures/wall_clock.rs", src), vec![]);
}

#[test]
fn allow_escape_parses_multiple_rules() {
    let src = "\
fn f(v: &mut Vec<f64>) {
    // NaN-free inputs, and the comparator can never panic.
    // fedlint: allow(float-sort, hot-path-unwrap)
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
";
    assert_eq!(scan_source("crates/cluster/src/estimate.rs", src), vec![]);
}

#[test]
fn bare_allow_fires_on_fixture() {
    let src = include_str!("fixtures/bare_allow.rs");
    let path = "crates/cluster/src/fixture.rs";
    // A justified escape passes; an escape with no comment around it and
    // one whose comment never names the waived invariant are findings.
    // The waived rules themselves stay suppressed.
    assert_eq!(lines(path, src, Rule::BareAllow), vec![11, 16]);
    assert_eq!(other_rules(path, src, Rule::BareAllow), vec![]);
}

#[test]
fn bare_allow_is_exempt_in_tests_and_cannot_be_waived() {
    let src = include_str!("fixtures/bare_allow.rs");
    // Test targets embed escape-shaped strings freely.
    assert_eq!(lines("crates/cluster/tests/fixture.rs", src, Rule::BareAllow), vec![]);
    // `allow(bare-allow)` parses to nothing: the waiver cannot be waived.
    assert_eq!(Rule::from_id("bare-allow"), None);
    let src = "\
fn f(o: Option<u32>) -> u32 {
    // fedlint: allow(hot-path-unwrap, bare-allow)
    o.expect(\"still bare\")
}
";
    assert_eq!(
        lines("crates/des/src/queue.rs", src, Rule::BareAllow),
        vec![2]
    );
}

/// The linter's own acceptance gate: the real workspace must be clean.
/// This is the same scan CI runs via `cargo run -p fedlint -- check`, so a
/// violation anywhere in the tree fails `cargo test` too.
#[test]
fn workspace_scans_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = scan_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "fedlint found violations:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
