//! Seeded violations for the `float-sort` rule.  Never compiled.

/// Sorts floats through `partial_cmp`, which panics or misorders on NaN.
pub fn order(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.sort_by(|a, b| a.total_cmp(b));
    let max = xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap());
    let _ = max;
    xs.sort_unstable_by(|a, b| {
        a.partial_cmp(b).unwrap()
    });
    // fedlint: allow(float-sort) — inputs are NaN-free by construction
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
