//! Seeded violations for the `hash-iteration` rule.  Never compiled —
//! scanned by the fixture tests under a pretended sim-crate path.

use std::collections::{HashMap, HashSet};

/// Sums values in hasher order (twice), which is nondeterministic.
pub fn totals() -> u64 {
    let mut m: HashMap<usize, f64> = HashMap::new();
    m.insert(1, 2.0);
    let mut sum = 0.0;
    for (_k, v) in &m {
        sum += v;
    }
    let mut seen: HashSet<usize> = HashSet::new();
    seen.insert(3);
    let first = seen.iter().next();
    let keys: Vec<_> = m.keys().collect();
    // fedlint: allow(hash-iteration) — order-insensitive collection
    let vals: Vec<_> = m.values().collect();
    let _ = (first, keys, vals);
    sum as u64
}

struct Index {
    by_owner: HashMap<u32, u32>,
}

impl Index {
    fn walk(&self) -> u32 {
        let mut total = 0;
        for (_k, v) in &self.by_owner {
            total += v;
        }
        total
    }
}
