//! Seeded violations for the `bare-allow` rule.  Never compiled — scanned
//! by the fixture tests as if it sat at a sim-crate path.

fn justified(o: Option<u32>) -> u32 {
    // The caller prechecks `is_some`, so this can never panic.
    // fedlint: allow(hot-path-unwrap)
    o.expect("prechecked")
}

fn bare(o: Option<u32>) -> u32 {
    // fedlint: allow(hot-path-unwrap)
    o.expect("trust me")
}

fn wrong_invariant(v: &mut Vec<f64>) {
    // This one is fine because I said so.  fedlint: allow(float-sort)
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
