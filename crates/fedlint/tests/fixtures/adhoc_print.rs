//! Fixture for `adhoc-print`: seeded print-macro violations in sim code.

/// Ad-hoc prints on the sim path are findings.
fn noisy(depth: usize) {
    println!("queue depth {depth}");
    eprintln!("warning: depth {depth}");
    let _ = dbg!(depth);
}

/// Output routed through a justified escape passes.
fn legacy(depth: usize) {
    // This diagnostic predates the obs metric registry and stays on
    // stderr for the legacy harness.  fedlint: allow(adhoc-print)
    eprintln!("depth {depth}");
}

/// Look-alike identifiers are not macro calls.
fn quiet(depth: usize) -> usize {
    let println = depth; // a binding, not the macro
    my_println(println);
    println
}

fn my_println(d: usize) -> usize {
    d
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("test diagnostics are exempt");
    }
}
