//! Seeded violations for the `hot-path-unwrap` rule.  Never compiled —
//! scanned under a pretended hot-path file name.

fn pop(v: &mut Vec<u32>) -> u32 {
    v.pop().unwrap()
}

fn take(o: Option<u32>) -> u32 {
    o.expect("present")
}

fn justified(o: Option<u32>) -> u32 {
    // The caller checked `is_some` one line above; this can never panic.
    // fedlint: allow(hot-path-unwrap)
    o.expect("checked by caller")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        let _ = Some(1).unwrap();
    }
}
