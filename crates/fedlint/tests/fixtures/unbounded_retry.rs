//! Seeded violations for the `unbounded-retry` rule.  Never compiled —
//! scanned under a pretended sim-crate file name.

struct Sender {
    retries: u32,
    attempts: u32,
}

fn spin_forever(s: &mut Sender, lossy: bool) {
    while lossy {
        s.retries += 1;
    }
}

fn also_unbounded(s: &mut Sender) {
    loop {
        s.attempts += 1;
    }
}

fn bounded_by_policy(s: &mut Sender, max_retries: u32) {
    while s.retries < max_retries {
        s.retries += 1;
    }
}

fn bounded_by_config(s: &mut Sender, cfg: &Config) {
    while s.attempts < cfg.max_retransmits {
        s.attempts += 1;
    }
}

fn justified(s: &mut Sender) {
    // The caller drains at most one pending job per event, so this counter
    // is bounded by the event budget of the run.
    // fedlint: allow(unbounded-retry)
    s.retries += 1;
}

fn accumulations_pass(s: &mut Sender, extra: u32) {
    // Folding a batch of retransmissions into telemetry is not a loop step.
    s.retries += 10;
    s.attempts += extra;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_counters_are_exempt() {
        let mut retries = 0;
        retries += 1;
        let _ = retries;
    }
}
