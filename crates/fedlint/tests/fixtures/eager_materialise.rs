//! Seeded violations for `eager-materialise`: full-workload
//! materialisation outside the streaming adapter and test code.

fn build(stream: impl Iterator<Item = Job>) {
    let eager: Vec<Job> = stream.collect();
    let turbo = stream.collect::<Vec<Job>>();
    let pathed = stream.collect::<Vec<grid_workload::Job>>();
    let sanctioned = stream.collect_jobs();
    let records: Vec<JobRecord> = stream.map(to_record).collect();
    // fedlint: allow(eager-materialise) — the jobs enter the engine here
    let allowed: Vec<Job> = stream.collect();
}

#[cfg(test)]
mod tests {
    fn oracle_builds_the_reference_vector() {
        let reference: Vec<Job> = stream().collect();
    }
}
