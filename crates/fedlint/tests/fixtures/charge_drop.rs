//! Seeded violations for the `charge-drop` rule.  Never compiled.

/// Mutates the directory, dropping some publish-side message costs.
pub fn churn(dir: &mut AnyDirectory, q: Quote) {
    dir.subscribe(q);
    let _ = dir.unsubscribe(3);
    let paid = dir.update_price(1, 2.0);
    let mut total = paid;
    total += dir.subscribe(q);
    dir.subscribe(Quote {
        gfa: 1,
        price: 4.0,
    });
    // fedlint: allow(charge-drop) — the cost is charged by the caller
    dir.update_price(2, 9.0);
    if dir.subscribe(q) > 0 {
        total += 1;
    }
    self.shared.dir.unsubscribe(total as usize);
}
