//! Seeded violations for the `wall-clock` rule.  Never compiled.

use std::time::Instant;

/// Reads the host clock and forks an OS thread mid-simulation.
pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = wall;
    std::thread::spawn(|| ());
    // fedlint: allow(wall-clock) — wall-clock timing is the probe itself
    let _t1 = Instant::now();
    t0.elapsed().as_nanos()
}
