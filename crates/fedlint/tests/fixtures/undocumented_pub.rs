//! Seeded violations for the `undocumented-pub` rule.  Never compiled.

/// Documented.
pub fn fine() {}

pub fn missing() {}

#[derive(Debug)]
pub struct AlsoMissing;

/// Documented struct (attributes between doc and item are fine).
#[derive(Debug)]
pub struct FineToo;

pub(crate) fn internal() {}

pub mod queue;

#[cfg(test)]
mod tests {
    pub fn test_helper() {}
}
