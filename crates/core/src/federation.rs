//! Building and running a Grid-Federation.
//!
//! [`FederationBuilder`] wires together everything the paper's simulation
//! contains: one GFA per cluster (each owning a space-shared LRMS and its
//! local user population's trace), the shared federation directory holding
//! every quote, the GridBank, and the message ledger.  [`FederationBuilder::run`]
//! executes the discrete-event simulation to completion and assembles the
//! [`FederationReport`] every experiment consumes.

use std::cell::RefCell;
use std::rc::Rc;

use grid_cluster::{EasyBackfilling, LocalScheduler, ResourceSpec, SpaceSharedFcfs};
use grid_des::{
    DedupWindow, LinkFaults, NetworkFaultConfig, RunOutcome, SimRng, Simulation, TransmissionPlan,
};
use grid_des::{FlowRecord, SpanRecord};
use grid_directory::{AnyDirectory, CacheStats, DirectoryBackend, FederationDirectory, Quote};
use grid_obs::{Counter, FSum, HandlerProfiler, HistId, MetricsRegistry, ProfileTable, SpanCollector};
use grid_workload::Job;

use crate::audit::AuditLedger;
use crate::economy::{ChargingPolicy, GridBank};
use crate::gfa::Gfa;
use crate::messages::{FedMessage, MessageLedger, MessageType};
use crate::metrics::{ChurnSummary, FederationReport, JobRecord, NetworkSummary, ResourceMetrics};
use grid_workload::JobId;

/// Which resource-sharing environment to simulate (the paper's three
/// experiment families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingMode {
    /// Experiment 1: every cluster schedules only its own workload.
    Independent,
    /// Experiment 2: federation without economy — local first, then the
    /// remaining clusters in decreasing order of computational speed.
    FederationNoEconomy,
    /// Experiments 3–5: the full economy-driven DBC (OFC/OFT) algorithm.
    Economy,
}

/// Which local scheduler each cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LrmsKind {
    /// Space-shared FCFS, as in the paper (GridSim `SpaceShared`).
    SpaceSharedFcfs,
    /// EASY backfilling, used by the ablation benchmarks.
    EasyBackfilling,
}

/// How the GFAs' DBC loops execute their ranking queries.
///
/// Both paths resolve identical quotes and charge identical directory
/// messages — they differ only in *execution* cost, which is why the slow
/// one can serve as the differential oracle for the fast one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectoryQueryPath {
    /// Each in-flight job streams ranks through a [`grid_directory::RankCursor`]
    /// (one routed open, O(1) advances) and probes are memoised in a per-GFA,
    /// epoch-keyed [`grid_directory::QuoteCache`].  The default.
    #[default]
    Cursor,
    /// The paper's query-per-rank model executed literally: every rank is a
    /// fresh `query_cheapest`/`query_fastest` call.  Kept as the
    /// differential oracle — differential tests run both paths and assert
    /// bitwise-identical reports.
    PerRank,
}

/// How a GFA reacts when a ranking lookup faults because the entry's store
/// crashed and no live replica could answer: it retries the same rank after
/// an exponential-backoff delay, and once the retry budget is exhausted the
/// job degrades to local-only scheduling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Base backoff delay in seconds; retry `i` (1-based) waits
    /// `backoff × 2^(i−1)`.
    pub backoff: f64,
    /// Retries granted per job before it falls back to local execution.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            backoff: 30.0,
            max_retries: 3,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay (seconds) before retry `retry` (1-based):
    /// `backoff × 2^(retry−1)` with the exponent saturated at
    /// [`grid_des::net::MAX_BACKOFF_EXPONENT`], so arbitrarily large retry
    /// counts stay finite instead of overflowing the shift.
    #[must_use]
    pub fn backoff_delay(&self, retry: u32) -> f64 {
        grid_des::net::backoff_delay(self.backoff, retry.saturating_sub(1))
    }
}

/// When the overlay repairs the ring position of a crashed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairMode {
    /// Crashed nodes are evicted only by the periodic stabilization rounds
    /// (the default): faulted lookups back off and retry, waiting the
    /// repair out.
    #[default]
    Periodic,
    /// A faulted lookup additionally triggers an immediate **targeted**
    /// repair: the directory evicts the crashed store the lookup hit and
    /// the job retries right away, trading repair messages (charged into
    /// the publish class) for post-fault latency.
    Reactive,
}

impl RepairMode {
    /// Short lowercase label used in file names and table headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RepairMode::Periodic => "periodic",
            RepairMode::Reactive => "reactive",
        }
    }
}

impl std::str::FromStr for RepairMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "periodic" => Ok(RepairMode::Periodic),
            "reactive" => Ok(RepairMode::Reactive),
            other => Err(format!(
                "unknown repair mode '{other}' (expected 'periodic' or 'reactive')"
            )),
        }
    }
}

impl std::fmt::Display for RepairMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Stochastic fault-injection model of a churning federation.
///
/// Each GFA alternates exponentially distributed up- and down-phases, drawn
/// from a [`SimRng`] stream derived from the run's master seed, so churn
/// schedules are fully deterministic and independent of the workload draws.
/// A departure is an ungraceful *crash* with probability
/// [`ChurnConfig::crash_fraction`] (the node's stored directory entries are
/// dropped cold and the node squats in the overlay until a stabilization
/// round evicts it) and a graceful *leave* otherwise (entries are handed
/// off to their new owners immediately, charged as publish traffic).
///
/// A zero [`ChurnConfig::mean_uptime`] disables the failure process
/// entirely: no churn or stabilization event is scheduled and the run is
/// bit-identical (same [`crate::audit::RunDigest`]) to one with
/// [`FederationConfig::churn`] set to `None` — the differential the
/// zero-churn tests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Mean up-time (seconds) before a node's next departure; exponential.
    /// `0.0` disables the failure process.
    pub mean_uptime: f64,
    /// Mean down-time (seconds) before a departed node rejoins;
    /// exponential.  `0.0` makes every departure permanent.
    pub mean_downtime: f64,
    /// Probability that a departure is an ungraceful crash.
    pub crash_fraction: f64,
    /// Period (seconds) of the overlay's stabilization rounds, delivered
    /// round-robin across the GFAs.  `0.0` disables stabilization.
    pub stabilization_interval: f64,
    /// Replication factor `k ≥ 1` for MAAN attribute entries; replicas are
    /// created and repaired by stabilization rounds.
    pub replication: usize,
    /// Horizon (seconds) out to which churn and stabilization events are
    /// pre-generated; typically the trace duration.
    pub horizon: f64,
    /// How GFAs retry faulted lookups before degrading to local execution.
    pub retry: RetryPolicy,
    /// Whether crashed ring positions are repaired only periodically or
    /// reactively at lookup-fault time (see [`RepairMode`]).
    pub repair: RepairMode,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            mean_uptime: 0.0,
            mean_downtime: 14_400.0,
            crash_fraction: 0.5,
            stabilization_interval: 1_800.0,
            replication: 2,
            horizon: 172_800.0,
            retry: RetryPolicy::default(),
            repair: RepairMode::Periodic,
        }
    }
}

impl ChurnConfig {
    /// Whether the failure process generates any event at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.mean_uptime > 0.0 && self.mean_uptime.is_finite() && self.horizon > 0.0
    }
}

/// Decorrelates the churn draws from both the workload and the overlay's
/// ring-placement streams.
const CHURN_STREAM_SALT: u64 = 0xC4A8_5EED_FA11_0CE5;

/// Pre-generates one GFA's alternating departure/rejoin chain out to the
/// churn horizon: `(departures as (time, graceful), rejoin times)`.
fn churn_chain(churn: &ChurnConfig, seed: u64, gfa: usize) -> (Vec<(f64, bool)>, Vec<f64>) {
    let mut rng = SimRng::derive(seed ^ CHURN_STREAM_SALT, gfa as u64);
    let mut departures = Vec::new();
    let mut rejoins = Vec::new();
    let mut t = 0.0;
    loop {
        t += rng.exponential(churn.mean_uptime);
        if t >= churn.horizon {
            break;
        }
        let graceful = !rng.bernoulli(churn.crash_fraction);
        departures.push((t, graceful));
        if churn.mean_downtime <= 0.0 {
            break; // Departure is permanent.
        }
        t += rng.exponential(churn.mean_downtime);
        if t >= churn.horizon {
            break;
        }
        rejoins.push(t);
    }
    (departures, rejoins)
}

/// The stabilization ticks GFA `gfa` drives: the global tick sequence
/// (one round per interval) dealt round-robin across the `n` GFAs.
fn stabilization_ticks(churn: &ChurnConfig, gfa: usize, n: usize) -> Vec<f64> {
    let mut ticks = Vec::new();
    if churn.stabilization_interval <= 0.0 {
        return ticks;
    }
    let mut round = 0u64;
    loop {
        let t = churn.stabilization_interval * (round + 1) as f64;
        if t >= churn.horizon {
            return ticks;
        }
        if round as usize % n == gfa {
            ticks.push(t);
        }
        round += 1;
    }
}

/// Decorrelates protocol-link fault draws from every other stream family
/// (workload, churn, ring placement).
const NET_LINK_SALT: u64 = 0x0BAD_11E7_FA17_5EED;
/// Decorrelates per-GFA directory-query fault draws from the link streams.
const NET_QUERY_SALT: u64 = 0x0BAD_11E7_D1EC_5EED;
/// Decorrelates per-GFA publish-path fault draws from both families above.
const NET_PUBLISH_SALT: u64 = 0x0BAD_11E7_9B11_5EED;

/// Runtime state of the unreliable-network fault layer: one seeded fault
/// stream per directed GFA link, per-link send sequence counters, and the
/// receiver-side [`DedupWindow`]s that make protocol handlers idempotent.
///
/// Only materialised when [`FederationConfig::network`] holds an *active*
/// fault config — an inactive config takes the same code path as `None`,
/// which is how the `None ≡ inactive` digest equivalence holds by
/// construction.
#[derive(Debug)]
pub struct NetState {
    cfg: NetworkFaultConfig,
    n: usize,
    /// Directed protocol-link fault streams, indexed `src * n + dst`.
    links: Vec<LinkFaults>,
    /// Next-sequence counters per directed link (first envelope gets 1).
    send_seq: Vec<u64>,
    /// Receiver-side dedup windows per directed link, held at the receiver.
    dedup: Vec<DedupWindow>,
    /// Per-GFA fault streams of the charge-modelled directory-query path.
    query_faults: Vec<LinkFaults>,
    /// Per-GFA fault streams of the charge-modelled publish path.
    publish_faults: Vec<LinkFaults>,
}

impl NetState {
    /// Builds the fault layer for `n` GFAs from the run's master seed.
    #[must_use]
    pub fn new(n: usize, seed: u64, cfg: NetworkFaultConfig) -> Self {
        NetState {
            cfg,
            n,
            links: (0..n * n)
                .map(|id| LinkFaults::new(seed, NET_LINK_SALT, id as u64))
                .collect(),
            send_seq: vec![0; n * n],
            dedup: vec![DedupWindow::default(); n * n],
            query_faults: (0..n)
                .map(|id| LinkFaults::new(seed, NET_QUERY_SALT, id as u64))
                .collect(),
            publish_faults: (0..n)
                .map(|id| LinkFaults::new(seed, NET_PUBLISH_SALT, id as u64))
                .collect(),
        }
    }

    /// The fault parameters this layer draws from.
    #[must_use]
    pub fn config(&self) -> NetworkFaultConfig {
        self.cfg
    }

    /// Allocates the next envelope sequence number of the `src → dst` link
    /// (1-based; 0 is reserved for the reliable transport).
    pub fn next_seq(&mut self, src: usize, dst: usize) -> u64 {
        let counter = &mut self.send_seq[src * self.n + dst];
        *counter += 1;
        *counter
    }

    /// Plans one protocol transmission on the `src → dst` link: drop-forced
    /// retransmissions, delivery jitter and the duplication decision.
    pub fn plan(&mut self, src: usize, dst: usize) -> TransmissionPlan {
        let cfg = self.cfg;
        self.links[src * self.n + dst].plan(&cfg)
    }

    /// Receiver-side dedup: admits envelope `seq` arriving at `dst` from
    /// `src` at most once.
    pub fn admit(&mut self, src: usize, dst: usize, seq: u64) -> bool {
        self.dedup[src * self.n + dst].admit(seq)
    }

    /// Extra routed messages the query path of `gfa` pays for per-hop drops
    /// across a lookup that semantically cost `messages` hops.
    pub fn query_extra(&mut self, gfa: usize, messages: u64) -> u64 {
        let cfg = self.cfg;
        let link = &mut self.query_faults[gfa];
        (0..messages).map(|_| u64::from(link.drops(&cfg))).sum()
    }

    /// Extra routed messages the publish path of `gfa` pays for per-hop
    /// drops across a mutation that semantically cost `messages` hops.
    pub fn publish_extra(&mut self, gfa: usize, messages: u64) -> u64 {
        let cfg = self.cfg;
        let link = &mut self.publish_faults[gfa];
        (0..messages).map(|_| u64::from(link.drops(&cfg))).sum()
    }

    /// Sum of all dedup-window bases — monotone non-decreasing over the run,
    /// which is exactly what the invariants sentry checks.
    #[must_use]
    pub fn dedup_base_sum(&self) -> u64 {
        self.dedup.iter().map(DedupWindow::base).sum()
    }

    /// Corrupting test double: rewinds every receiver dedup window to its
    /// initial state, so previously admitted envelopes would be admitted
    /// again.  Only exists so the invariant tests can prove the
    /// dedup-monotonicity check fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_dedup_rewind(&mut self) {
        for w in &mut self.dedup {
            w.corrupt_rewind();
        }
    }
}

/// Federation-wide shared state accessible to every GFA during the run.
#[derive(Debug)]
pub struct SharedState {
    /// The shared federation directory holding every quote, in whichever
    /// backend the run's [`FederationConfig::directory`] selected.
    pub directory: AnyDirectory,
    /// The GridBank accumulating incentives.
    pub bank: GridBank,
    /// Message accounting.
    pub ledger: MessageLedger,
    /// Per-job records, pushed by origin GFAs as jobs conclude.
    pub jobs: Vec<JobRecord>,
    /// Per-resource end-of-run snapshots (utilization), indexed by resource.
    pub resource_snapshots: Vec<Option<ResourceSnapshot>>,
    /// Number of remote jobs each resource executed.
    pub remote_processed: Vec<usize>,
    /// Hash-chained audit ledger folding every outcome, charge and bank
    /// mutation (see [`crate::audit`]).
    pub audit: AuditLedger,
    /// The unreliable-network fault layer, or `None` on the reliable
    /// transport (including inactive fault configs).
    pub net: Option<NetState>,
    /// The single accounting surface for every observability counter,
    /// sum and histogram of the run: churn/self-healing telemetry,
    /// unreliable-network telemetry, quote-cache hit/miss tallies and the
    /// wait/slowdown/latency percentile panels all live here.  Kept
    /// strictly outside the audit chains, so recording into the registry
    /// can never move a [`crate::audit::RunDigest`].
    pub metrics: MetricsRegistry,
    /// The span-aware trace sink, when a run is traced.  `None` (the
    /// default) costs one discriminant test per emission site; emitting
    /// spans reads sim state but never writes it.
    pub tracer: Option<Rc<RefCell<SpanCollector>>>,
    /// Runtime invariant observer, consulted after every delivered event.
    #[cfg(feature = "invariants")]
    pub invariants: crate::invariants::InvariantSentry,
}

impl SharedState {
    /// Records one negotiation-protocol message in the ledger *and* folds it
    /// into the audit chain.  All charge paths go through these helpers so
    /// the two ledgers cannot drift.
    pub fn charge_message(&mut self, ty: MessageType, origin: usize, counterpart: usize) {
        self.ledger.record(ty, origin, counterpart);
        self.audit.record_message(ty, origin, counterpart);
    }

    /// Records a routed directory-query charge in both ledgers.  Under the
    /// fault layer, per-hop drops on the lookup path cost extra routed
    /// messages, charged as a second directory record so the lossless
    /// charges stay untouched in the chain.
    pub fn charge_directory(&mut self, gfa: usize, messages: u64, seconds: f64) {
        self.ledger.record_directory(gfa, messages, seconds);
        self.audit.record_directory(gfa, messages);
        self.metrics.observe(HistId::DirectoryLookupLatency, seconds);
        if messages > 0 {
            if let Some(net) = &mut self.net {
                let extra = net.query_extra(gfa, messages);
                if extra > 0 {
                    self.metrics.add(gfa, Counter::NetDirectoryRetransmissions, extra);
                    let per_hop = seconds / messages as f64;
                    self.ledger
                        .record_directory(gfa, extra, per_hop * extra as f64);
                    self.audit.record_directory(gfa, extra);
                }
            }
        }
    }

    /// Records a publish-side directory charge in both ledgers, plus the
    /// fault layer's per-hop retransmissions when active.
    pub fn charge_publish(&mut self, gfa: usize, messages: u64, seconds: f64) {
        self.ledger.record_publish(gfa, messages, seconds);
        self.audit.record_publish(gfa, messages);
        if messages > 0 {
            if let Some(net) = &mut self.net {
                let extra = net.publish_extra(gfa, messages);
                if extra > 0 {
                    self.metrics.add(gfa, Counter::NetPublishRetransmissions, extra);
                    let per_hop = seconds / messages as f64;
                    self.ledger.record_publish(gfa, extra, per_hop * extra as f64);
                    self.audit.record_publish(gfa, extra);
                }
            }
        }
    }

    /// Finalises a job's per-job message totals in both ledgers.
    pub fn conclude_job(&mut self, job: JobId, messages: u32, directory_messages: u32) {
        self.ledger.finish_job(job, messages, directory_messages);
        self.audit.record_job_messages(job, messages, directory_messages);
    }

    /// Transfers Grid Dollars through the bank and folds the transfer into
    /// the payer's outcome chain.
    pub fn pay(&mut self, payer_origin: usize, payee_owner: usize, amount: f64) {
        self.bank.pay(payer_origin, payee_owner, amount);
        self.audit.record_payment(payer_origin, payee_owner, amount);
    }

    /// Appends a finished job record, folding it into the origin's outcome
    /// chain first, and records its wait/slowdown/negotiation observations
    /// plus its lifecycle span.  All observability here happens *after* the
    /// audit fold, on quantities already decided, so it cannot perturb the
    /// chain.
    pub fn push_job_record(&mut self, record: JobRecord) {
        self.audit.record_outcome(&record);
        self.metrics
            .observe(HistId::NegotiationMessages, f64::from(record.messages));
        match record.outcome {
            crate::metrics::ExecutionOutcome::Completed { start, finish, .. } => {
                self.metrics.inc(record.origin, Counter::JobsCompleted);
                self.metrics
                    .observe(HistId::JobWait, (start - record.submit).max(0.0));
                let service = finish - start;
                if service > 0.0 {
                    self.metrics
                        .observe(HistId::JobSlowdown, (finish - record.submit) / service);
                }
                if self.tracer.is_some() {
                    self.emit_span(SpanRecord {
                        gfa: record.origin,
                        track: grid_des::SpanTrack::Lifecycle,
                        name: "job",
                        start: grid_des::SimTime::new(record.submit),
                        end: grid_des::SimTime::new(finish),
                        detail: format!("{} completed", record.id),
                    });
                }
            }
            crate::metrics::ExecutionOutcome::Rejected => {
                self.metrics.inc(record.origin, Counter::JobsRejected);
                if self.tracer.is_some() {
                    self.emit_span(SpanRecord {
                        gfa: record.origin,
                        track: grid_des::SpanTrack::Lifecycle,
                        name: "job",
                        start: grid_des::SimTime::new(record.submit),
                        end: grid_des::SimTime::new(record.submit),
                        detail: format!("{} rejected", record.id),
                    });
                }
            }
        }
        self.jobs.push(record);
    }

    /// Forwards a completed span to the armed trace sink, if any.
    pub fn emit_span(&self, record: SpanRecord) {
        if let Some(tracer) = &self.tracer {
            grid_des::TraceSink::span(&mut *tracer.borrow_mut(), record);
        }
    }

    /// Forwards one endpoint of a cross-GFA flow to the armed trace sink.
    pub fn emit_flow(&self, record: FlowRecord) {
        if let Some(tracer) = &self.tracer {
            grid_des::TraceSink::flow(&mut *tracer.borrow_mut(), record);
        }
    }

    /// Whether a span-aware trace sink is armed (emission sites use this to
    /// skip building detail strings on untraced runs).
    #[must_use]
    pub fn trace_armed(&self) -> bool {
        self.tracer.is_some()
    }

    /// Corrupting test double: replays the conclusion of the last finished
    /// job as if a duplicated completion message had slipped past the dedup
    /// window — the job is concluded a second time and its record pushed
    /// again.  Only exists so the invariant tests can prove the
    /// at-most-once-effect checks fire.
    ///
    /// # Panics
    /// Panics if no job has concluded yet.
    #[cfg(feature = "invariants")]
    pub fn corrupt_replay_message(&mut self) {
        let &(job, messages) = self
            .ledger
            .per_job()
            .last()
            .expect("replaying a message requires a concluded job");
        let directory = self
            .ledger
            .per_job_directory()
            .last()
            .map_or(0, |&(_, d)| d);
        self.conclude_job(job, messages, directory);
        let record = self
            .jobs
            .last()
            .expect("a concluded job has a record")
            .clone();
        self.push_job_record(record);
    }
}

/// End-of-run per-resource snapshot captured by each GFA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSnapshot {
    /// Busy processor-seconds accumulated by the LRMS.
    pub busy_processor_seconds: f64,
    /// Average utilization over the whole run.
    pub utilization: f64,
}

/// Configuration knobs of a federation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationConfig {
    /// Resource-sharing environment.
    pub mode: SchedulingMode,
    /// Local scheduler used by every cluster.
    pub lrms: LrmsKind,
    /// One-way network latency between two different GFAs, in seconds.
    pub latency: f64,
    /// Master seed of the simulation.
    pub seed: u64,
    /// How resource owners charge for executed jobs (see
    /// [`ChargingPolicy`]); also used when fabricating budgets.
    pub charging: ChargingPolicy,
    /// Horizon (in seconds) over which per-resource utilization is reported.
    /// `None` uses the final simulation time; the experiments pass the trace
    /// duration (two days) so utilizations are comparable to the paper's
    /// tables even when a few late jobs run past the trace window.
    pub utilization_horizon: Option<f64>,
    /// When `true` (the default), budgets and deadlines are (re-)fabricated
    /// from Eq. 7–8 before the run; set to `false` to honour caller-supplied
    /// QoS values.
    pub fabricate_qos: bool,
    /// Which directory backend serves the GFAs' ranking queries.  Backends
    /// resolve identical quotes and differ only in the directory-message
    /// counts (and simulated lookup time) they account.
    pub directory: DirectoryBackend,
    /// How the DBC loop executes ranking queries (cursor-streamed with a
    /// per-GFA quote cache, or the literal query-per-rank oracle).  Both
    /// paths produce bitwise-identical reports; see [`DirectoryQueryPath`].
    pub query_path: DirectoryQueryPath,
    /// Scripted departures `(gfa, time)`: at `time` the GFA withdraws its
    /// quote from the directory (`unsubscribe`), refuses new negotiations
    /// and stops self-accepting, while jobs already reserved on its LRMS run
    /// to completion.  Empty by default.
    pub departures: Vec<(usize, f64)>,
    /// Scripted re-pricings `(gfa, time, new_price)`: at `time` the GFA
    /// republishes its access price through the directory's `update_price`
    /// primitive and charges the new price for subsequently accepted jobs.
    /// Empty by default.
    pub repricings: Vec<(usize, f64, f64)>,
    /// Whether publish-side directory traffic — the routed
    /// put/remove/move messages `subscribe` / `unsubscribe` /
    /// `update_price` cost under a distributed backend like
    /// [`DirectoryBackend::Maan`] — is accounted into the ledger's
    /// `publish` class (initial subscriptions included).  Defaults to
    /// `true`; the centrally-stored backends publish for free either way.
    pub charge_publish_traffic: bool,
    /// Stochastic churn model, or `None` for the static-ring path.  A
    /// config whose failure process is inactive (zero
    /// [`ChurnConfig::mean_uptime`]) schedules nothing and produces a run
    /// bit-identical to `None`; see [`ChurnConfig`].
    pub churn: Option<ChurnConfig>,
    /// Unreliable-network fault model, or `None` for the perfect transport.
    /// An *inactive* config (all fault rates zero) takes the same code path
    /// as `None` and is digest-identical to it; an active config charges
    /// retransmit/duplicate traffic into the existing ledger classes while
    /// keeping job outcomes and balances bit-identical to the lossless run
    /// (`digest.outcomes`).
    pub network: Option<NetworkFaultConfig>,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            mode: SchedulingMode::Economy,
            lrms: LrmsKind::SpaceSharedFcfs,
            latency: 0.05,
            seed: 42,
            charging: ChargingPolicy::default(),
            utilization_horizon: None,
            fabricate_qos: true,
            directory: DirectoryBackend::Ideal,
            query_path: DirectoryQueryPath::Cursor,
            departures: Vec::new(),
            repricings: Vec::new(),
            charge_publish_traffic: true,
            churn: None,
            network: None,
        }
    }
}

impl FederationConfig {
    /// Convenience constructor for a given mode with all other defaults.
    #[must_use]
    pub fn with_mode(mode: SchedulingMode) -> Self {
        FederationConfig {
            mode,
            ..FederationConfig::default()
        }
    }

    /// Convenience constructor for a given directory backend with all other
    /// defaults (economy mode).
    #[must_use]
    pub fn with_backend(directory: DirectoryBackend) -> Self {
        FederationConfig {
            directory,
            ..FederationConfig::default()
        }
    }
}

/// Scripted directory actions of a single GFA, derived from
/// [`FederationConfig::departures`] and [`FederationConfig::repricings`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GfaSchedule {
    /// Time at which the GFA departs (withdraws its quote), if any.
    pub departure: Option<f64>,
    /// `(time, price)` re-pricings, in configuration order.
    pub repricings: Vec<(f64, f64)>,
    /// `(time, graceful)` departures drawn from the seeded churn process,
    /// in increasing time order.  Empty without an active churn config.
    pub churn_departures: Vec<(f64, bool)>,
    /// Rejoin times, interleaved with `churn_departures`.
    pub churn_joins: Vec<f64>,
    /// Times this GFA drives a periodic overlay stabilization round (its
    /// round-robin share of the global tick sequence).
    pub stabilizations: Vec<f64>,
}

/// Builder for a federation simulation.
pub struct FederationBuilder {
    resources: Vec<ResourceSpec>,
    workloads: Vec<Vec<Job>>,
    config: FederationConfig,
    tracer: Option<Rc<RefCell<SpanCollector>>>,
    profiler: Option<Rc<RefCell<ProfileTable>>>,
}

impl FederationBuilder {
    /// Starts a builder from the participating resources.
    #[must_use]
    pub fn new(resources: Vec<ResourceSpec>) -> Self {
        let n = resources.len();
        FederationBuilder {
            resources,
            workloads: vec![Vec::new(); n],
            config: FederationConfig::default(),
            tracer: None,
            profiler: None,
        }
    }

    /// Sets the configuration.
    #[must_use]
    pub fn config(mut self, config: FederationConfig) -> Self {
        self.config = config;
        self
    }

    /// Arms a span-aware trace sink: the run emits job-lifecycle,
    /// negotiation, directory and execution spans (plus cross-GFA dispatch
    /// and completion flows) into the collector.  Observation sites live
    /// outside the builder's `Clone + PartialEq` [`FederationConfig`]
    /// because sinks are identity, not configuration — two runs differing
    /// only in armed sinks are the same run, and the obs-inertness tests
    /// pin exactly that.
    #[must_use]
    pub fn tracer(mut self, tracer: Rc<RefCell<SpanCollector>>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Arms the self-profiling hook: every delivered event's handler is
    /// bracketed with wall-clock timing, aggregated per event type into the
    /// shared table.  Timings live strictly outside sim state.
    #[must_use]
    pub fn profiler(mut self, table: Rc<RefCell<ProfileTable>>) -> Self {
        self.profiler = Some(table);
        self
    }

    /// Sets the local workload (trace) of resource `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range or a job's origin does not match.
    #[must_use]
    pub fn workload(mut self, index: usize, jobs: Vec<Job>) -> Self {
        assert!(index < self.resources.len(), "unknown resource index {index}");
        assert!(
            jobs.iter().all(|j| j.id.origin == index),
            "every job's origin must equal the resource index it is attached to"
        );
        self.workloads[index] = jobs;
        self
    }

    /// Sets all workloads at once (must be one vector per resource).
    ///
    /// # Panics
    /// Panics if the number of workloads differs from the number of resources.
    #[must_use]
    pub fn workloads(mut self, workloads: Vec<Vec<Job>>) -> Self {
        assert_eq!(
            workloads.len(),
            self.resources.len(),
            "need exactly one workload per resource"
        );
        for (i, jobs) in workloads.iter().enumerate() {
            assert!(
                jobs.iter().all(|j| j.id.origin == i),
                "every job's origin must equal the resource index it is attached to"
            );
        }
        self.workloads = workloads;
        self
    }

    /// Builds and runs the simulation, returning the federation report.
    ///
    /// # Panics
    /// Panics if the federation has no resources.
    #[must_use]
    pub fn run(self) -> FederationReport {
        let FederationBuilder {
            resources,
            mut workloads,
            config,
            tracer,
            profiler,
        } = self;
        let n = resources.len();
        assert!(n > 0, "a federation needs at least one resource");

        if config.fabricate_qos {
            for (i, jobs) in workloads.iter_mut().enumerate() {
                config.charging.fabricate_qos_all(jobs, &resources[i]);
            }
        }

        for (gfa, _) in &config.departures {
            assert!(*gfa < n, "departure refers to unknown GFA {gfa}");
        }
        for (gfa, _, _) in &config.repricings {
            assert!(*gfa < n, "repricing refers to unknown GFA {gfa}");
        }

        // Decorrelate the overlay's ring placement from the workload seed.
        let mut directory = config.directory.build(n, config.seed ^ 0xD1EC_70B5_EED5_EED5);
        if let Some(churn) = &config.churn {
            assert!(churn.replication >= 1, "replication factor must be at least 1");
            // Replication is configured even when the failure process is
            // inactive: replicas are only materialised by stabilization
            // rounds, so a zero-rate churn config stays bit-identical to
            // the static-ring path at any k.
            directory.set_replication(churn.replication);
        }
        let churn_active = config.churn.as_ref().is_some_and(ChurnConfig::is_active);
        let retry = config.churn.as_ref().map_or_else(RetryPolicy::default, |c| c.retry);
        let repair = config.churn.as_ref().map_or(RepairMode::Periodic, |c| c.repair);
        // The fault layer exists only when it can actually fire: inactive
        // configs take the `None` path, which is how `network: None` and a
        // zero-rate config stay digest-identical by construction.
        let net = config
            .network
            .filter(NetworkFaultConfig::is_active)
            .map(|cfg| NetState::new(n, config.seed, cfg));
        let mut ledger = MessageLedger::new(n);
        let mut audit = AuditLedger::new(n);
        for (i, spec) in resources.iter().enumerate() {
            // The initial publish: under a distributed backend the quote is
            // routed to the nodes owning its attribute keys, and that
            // traffic is accounted in the ledger's publish class.  This is
            // pre-run setup (the simulation has not started), so the fault
            // layer does not apply — the network can only fault messages
            // sent while the clock is running.
            let publish = directory.subscribe(Quote::from_spec(i, spec));
            if config.charge_publish_traffic && publish > 0 {
                ledger.record_publish(i, publish, publish as f64 * config.latency);
                audit.record_publish(i, publish);
            }
        }

        let total_jobs: usize = workloads.iter().map(Vec::len).sum();
        let shared = Rc::new(RefCell::new(SharedState {
            directory,
            bank: GridBank::new(n),
            ledger,
            jobs: Vec::with_capacity(total_jobs),
            resource_snapshots: vec![None; n],
            remote_processed: vec![0; n],
            audit,
            net,
            metrics: MetricsRegistry::new(n),
            tracer,
            #[cfg(feature = "invariants")]
            invariants: crate::invariants::InvariantSentry::new(),
        }));

        let mut sim: Simulation<FedMessage> = Simulation::new(config.seed);
        if let Some(table) = profiler {
            sim.set_profiler(Box::new(HandlerProfiler::new(table, FedMessage::label)));
        }
        for (i, spec) in resources.iter().enumerate() {
            let lrms: Box<dyn LocalScheduler> = match config.lrms {
                LrmsKind::SpaceSharedFcfs => Box::new(SpaceSharedFcfs::new(spec.processors)),
                LrmsKind::EasyBackfilling => Box::new(EasyBackfilling::new(spec.processors)),
            };
            let (churn_departures, churn_joins, stabilizations) = if churn_active {
                let churn = config.churn.as_ref().expect("churn_active implies a config");
                let (departs, joins) = churn_chain(churn, config.seed, i);
                (departs, joins, stabilization_ticks(churn, i, n))
            } else {
                (Vec::new(), Vec::new(), Vec::new())
            };
            let schedule = GfaSchedule {
                departure: config
                    .departures
                    .iter()
                    .filter(|(gfa, _)| *gfa == i)
                    .map(|(_, at)| *at)
                    .reduce(f64::min),
                repricings: config
                    .repricings
                    .iter()
                    .filter(|(gfa, _, _)| *gfa == i)
                    .map(|(_, at, price)| (*at, *price))
                    .collect(),
                churn_departures,
                churn_joins,
                stabilizations,
            };
            let gfa = Gfa::new(
                i,
                spec.clone(),
                config.mode,
                config.charging,
                config.latency,
                lrms,
                std::mem::take(&mut workloads[i]),
                schedule,
                config.query_path,
                config.charge_publish_traffic,
                retry,
                repair,
                Rc::clone(&shared),
            );
            let id = sim.add_entity(Box::new(gfa));
            assert_eq!(id.index(), i, "GFA entity ids must equal resource indices");
        }

        let outcome = sim.run();
        assert_eq!(
            outcome,
            RunOutcome::Exhausted,
            "a federation run must drain all events"
        );
        let sim_end = sim.now().as_secs();
        // The GFAs hold clones of the shared state; drop the simulation (and
        // with it the entities) before unwrapping.
        drop(sim);

        let state = Rc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("GFAs must not outlive the simulation"))
            .into_inner();
        assemble_report(
            &resources,
            state,
            sim_end,
            config.utilization_horizon,
            config.directory,
        )
    }
}

fn assemble_report(
    resources: &[ResourceSpec],
    state: SharedState,
    sim_end: f64,
    utilization_horizon: Option<f64>,
    backend: DirectoryBackend,
) -> FederationReport {
    let SharedState {
        directory,
        bank,
        ledger,
        jobs,
        resource_snapshots,
        remote_processed,
        audit,
        metrics: registry,
        ..
    } = state;
    // The legacy report summaries are *views* of the metrics registry now:
    // one accounting surface, with the reported values pinned unchanged
    // (counters are added in the same event order the loose fields used to
    // be, so the f64 sums are bit-identical too).
    let directory_cache = CacheStats {
        hits: registry.counter(Counter::CacheHits),
        misses: registry.counter(Counter::CacheMisses),
    };
    let churn = ChurnSummary {
        graceful_leaves: registry.counter(Counter::GracefulLeaves),
        crashes: registry.counter(Counter::Crashes),
        rejoins: registry.counter(Counter::Rejoins),
        stabilization_rounds: registry.counter(Counter::StabilizationRounds),
        stabilization_messages: registry.counter(Counter::StabilizationMessages),
        lookup_faults: registry.counter(Counter::LookupFaults),
        retries: registry.counter(Counter::FaultRetries),
        local_fallbacks: registry.counter(Counter::LocalFallbacks),
        reactive_repairs: registry.counter(Counter::ReactiveRepairs),
        reactive_repair_messages: registry.counter(Counter::ReactiveRepairMessages),
        fault_wait_seconds: registry.fsum(FSum::FaultWaitSeconds),
    };
    let network = NetworkSummary {
        enveloped: registry.counter(Counter::NetEnveloped),
        retransmissions: registry.counter(Counter::NetRetransmissions),
        duplicates: registry.counter(Counter::NetDuplicates),
        dedup_drops: registry.counter(Counter::NetDedupDrops),
        directory_retransmissions: registry.counter(Counter::NetDirectoryRetransmissions),
        publish_retransmissions: registry.counter(Counter::NetPublishRetransmissions),
        jitter_seconds: registry.fsum(FSum::JitterSeconds),
        backoff_seconds: registry.fsum(FSum::BackoffSeconds),
    };
    let directory_queries = directory.queries_served();
    let directory_avg_route_messages = directory.average_route_messages();

    let mut metrics: Vec<ResourceMetrics> = resources
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let snapshot = resource_snapshots[i].unwrap_or(ResourceSnapshot {
                busy_processor_seconds: 0.0,
                utilization: 0.0,
            });
            let horizon = utilization_horizon.unwrap_or(sim_end).max(f64::EPSILON);
            let utilization = (snapshot.busy_processor_seconds
                / (f64::from(spec.processors) * horizon))
                .min(1.0);
            ResourceMetrics {
                name: spec.name.clone(),
                processors: spec.processors,
                utilization,
                busy_processor_seconds: snapshot.busy_processor_seconds,
                total_local_jobs: 0,
                accepted: 0,
                rejected: 0,
                processed_locally: 0,
                migrated: 0,
                remote_jobs_processed: remote_processed[i],
                incentive: bank.earnings(i),
            }
        })
        .collect();

    for job in &jobs {
        let m = &mut metrics[job.origin];
        m.total_local_jobs += 1;
        if job.was_accepted() {
            m.accepted += 1;
            if job.was_migrated() {
                m.migrated += 1;
            } else {
                m.processed_locally += 1;
            }
        } else {
            m.rejected += 1;
        }
    }

    debug_assert!(bank.is_balanced(), "GridBank must conserve currency");
    debug_assert!(audit.is_consistent(), "audit chains must stay consistent");

    FederationReport {
        resources: metrics,
        jobs,
        messages: ledger,
        bank,
        sim_end,
        backend,
        directory_queries,
        directory_avg_route_messages,
        directory_cache,
        churn,
        network,
        metrics: registry,
        digest: audit.digest(),
    }
}

/// Convenience function: builds and runs a federation in one call.
#[must_use]
pub fn run_federation(
    resources: Vec<ResourceSpec>,
    workloads: Vec<Vec<Job>>,
    config: FederationConfig,
) -> FederationReport {
    FederationBuilder::new(resources)
        .workloads(workloads)
        .config(config)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_workload::{JobId, Qos, Strategy, UserId};

    fn two_resources() -> Vec<ResourceSpec> {
        vec![
            ResourceSpec::new("slow-cheap", 32, 500.0, 1.0, 2.0),
            ResourceSpec::new("fast-pricey", 32, 1_000.0, 2.0, 4.0),
        ]
    }

    fn job(origin: usize, seq: usize, submit: f64, procs: u32, runtime: f64, strategy: Strategy) -> Job {
        let mips = if origin == 0 { 500.0 } else { 1_000.0 };
        let mut j = Job::from_runtime(
            JobId { origin, seq },
            UserId { origin, local: seq % 4 },
            submit,
            procs,
            runtime,
            mips,
            0.10,
        );
        j.qos = Qos {
            budget: 0.0,
            deadline: 0.0,
            strategy,
        };
        j
    }

    #[test]
    fn retry_backoff_is_exponential_then_saturates() {
        let p = RetryPolicy {
            backoff: 30.0,
            max_retries: u32::MAX,
        };
        assert_eq!(p.backoff_delay(1), 30.0);
        assert_eq!(p.backoff_delay(2), 60.0);
        assert_eq!(p.backoff_delay(5), 480.0);
        let cap = 30.0 * 65_536.0;
        assert_eq!(p.backoff_delay(17), cap);
        // Boundary regression: retry counts past the exponent cap used to
        // overflow the `1u32 << exponent` shift; they now saturate at the
        // capped delay and stay finite for any retry count.
        assert_eq!(p.backoff_delay(18), cap);
        assert_eq!(p.backoff_delay(u32::MAX), cap);
        assert!(p.backoff_delay(u32::MAX).is_finite());
        // Retry 0 is never scheduled, but the subtraction saturates instead
        // of wrapping.
        assert_eq!(p.backoff_delay(0), 30.0);
    }

    #[test]
    fn repair_mode_labels_roundtrip() {
        assert_eq!(RepairMode::default(), RepairMode::Periodic);
        for mode in [RepairMode::Periodic, RepairMode::Reactive] {
            assert_eq!(mode.label().parse::<RepairMode>().unwrap(), mode);
            assert_eq!(format!("{mode}"), mode.label());
        }
        assert!("eager".parse::<RepairMode>().is_err());
    }

    #[test]
    fn single_local_job_completes_on_its_origin() {
        let resources = two_resources();
        let workloads = vec![vec![job(0, 0, 10.0, 4, 100.0, Strategy::Ofc)], vec![]];
        let report = run_federation(resources, workloads, FederationConfig::default());
        assert_eq!(report.jobs.len(), 1);
        let rec = &report.jobs[0];
        assert!(rec.was_accepted());
        // OFC: resource 0 is the cheapest, and it is the origin → local run.
        assert!(!rec.was_migrated());
        assert!(rec.qos_satisfied());
        assert_eq!(rec.messages, 2); // self negotiate + reply
        assert_eq!(report.resources[0].processed_locally, 1);
        assert_eq!(report.resources[0].accepted, 1);
        assert_eq!(report.resources[1].remote_jobs_processed, 0);
        assert!(report.resources[0].incentive > 0.0);
        assert!(report.bank.is_balanced());
    }

    #[test]
    fn oft_job_migrates_to_the_faster_resource() {
        let resources = two_resources();
        let workloads = vec![vec![job(0, 0, 0.0, 4, 100.0, Strategy::Oft)], vec![]];
        let report = run_federation(resources, workloads, FederationConfig::default());
        let rec = &report.jobs[0];
        assert!(rec.was_accepted());
        assert!(rec.was_migrated(), "OFT should pick the fast resource");
        // 4 messages: negotiate, reply, job submission, job completion.
        assert_eq!(rec.messages, 4);
        assert_eq!(report.resources[1].remote_jobs_processed, 1);
        assert_eq!(report.resources[0].migrated, 1);
        assert!(report.resources[1].incentive > 0.0);
        assert!((report.total_incentive() - report.bank.total_volume()).abs() < 1e-9);
    }

    #[test]
    fn independent_mode_never_migrates_and_counts_no_messages() {
        let resources = two_resources();
        let workloads = vec![
            vec![
                job(0, 0, 0.0, 4, 100.0, Strategy::Oft),
                job(0, 1, 5.0, 8, 200.0, Strategy::Ofc),
            ],
            vec![job(1, 0, 0.0, 4, 50.0, Strategy::Ofc)],
        ];
        let report = run_federation(
            resources,
            workloads,
            FederationConfig::with_mode(SchedulingMode::Independent),
        );
        assert_eq!(report.jobs.len(), 3);
        assert!(report.jobs.iter().all(|j| !j.was_migrated()));
        assert!(report.jobs.iter().all(|j| j.messages == 0));
        assert_eq!(report.messages.total_messages(), 0);
        assert_eq!(report.resources[0].remote_jobs_processed, 0);
        assert_eq!(report.resources[1].remote_jobs_processed, 0);
    }

    #[test]
    fn overloaded_origin_spills_into_the_federation() {
        // Resource 0 has only 4 processors; flood it with simultaneous jobs so
        // some must either migrate (federation) or be rejected (independent).
        let resources = vec![
            ResourceSpec::new("tiny", 4, 500.0, 1.0, 2.0),
            ResourceSpec::new("big", 64, 1_000.0, 2.0, 4.0),
        ];
        let make_workloads = || {
            vec![
                (0..8)
                    .map(|i| {
                        let mut j = Job::from_runtime(
                            JobId { origin: 0, seq: i },
                            UserId { origin: 0, local: i },
                            0.0,
                            4,
                            500.0,
                            500.0,
                            0.10,
                        );
                        j.qos.strategy = Strategy::Ofc;
                        j
                    })
                    .collect::<Vec<_>>(),
                vec![],
            ]
        };
        let fed = run_federation(
            resources.clone(),
            make_workloads(),
            FederationConfig::with_mode(SchedulingMode::Economy),
        );
        let ind = run_federation(
            resources,
            make_workloads(),
            FederationConfig::with_mode(SchedulingMode::Independent),
        );
        let fed_accepted = fed.resources[0].accepted;
        let ind_accepted = ind.resources[0].accepted;
        assert!(
            fed_accepted > ind_accepted,
            "federation should accept more jobs ({fed_accepted} vs {ind_accepted})"
        );
        assert!(fed.resources[0].migrated > 0);
        assert_eq!(fed.resources[1].remote_jobs_processed, fed.resources[0].migrated);
        // Deadlines of accepted jobs are honoured.
        assert!(fed.jobs.iter().filter(|j| j.was_accepted()).all(|j| j.qos_satisfied()));
    }

    #[test]
    fn no_economy_mode_prefers_local_then_fastest() {
        let resources = two_resources();
        let workloads = vec![
            vec![job(0, 0, 0.0, 4, 100.0, Strategy::Ofc)],
            vec![job(1, 0, 0.0, 4, 100.0, Strategy::Ofc)],
        ];
        let report = run_federation(
            resources,
            workloads,
            FederationConfig::with_mode(SchedulingMode::FederationNoEconomy),
        );
        // Both resources are idle, so both jobs stay local.
        assert!(report.jobs.iter().all(|j| !j.was_migrated()));
        assert_eq!(report.resources[0].processed_locally, 1);
        assert_eq!(report.resources[1].processed_locally, 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let resources = two_resources();
        let workloads = || {
            vec![
                (0..10)
                    .map(|i| job(0, i, i as f64 * 50.0, 2 + (i as u32 % 4), 200.0, if i % 3 == 0 { Strategy::Oft } else { Strategy::Ofc }))
                    .collect::<Vec<_>>(),
                (0..5)
                    .map(|i| job(1, i, i as f64 * 80.0, 4, 150.0, Strategy::Ofc))
                    .collect::<Vec<_>>(),
            ]
        };
        let a = run_federation(two_resources(), workloads(), FederationConfig::default());
        let b = run_federation(resources, workloads(), FederationConfig::default());
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.messages.total_messages(), b.messages.total_messages());
        assert!((a.total_incentive() - b.total_incentive()).abs() < 1e-9);
        assert_eq!(a.sim_end, b.sim_end);
        // The O(1) differential: identical runs fold to identical digests.
        assert_eq!(a.digest, b.digest);
        assert!(a.digest.entries > 0);
    }

    #[test]
    fn directory_queries_are_accounted_per_job_and_per_gfa() {
        let resources = two_resources();
        let workloads = vec![vec![job(0, 0, 10.0, 4, 100.0, Strategy::Ofc)], vec![]];
        let report = run_federation(resources, workloads, FederationConfig::default());
        assert_eq!(report.backend, DirectoryBackend::Ideal);
        let rec = &report.jobs[0];
        // One rank-1 query at ⌈log₂ 2⌉ = 1 modelled message.
        assert_eq!(rec.directory_messages, 1);
        assert_eq!(report.messages.directory_messages(), 1);
        assert_eq!(report.messages.gfa(0).directory, 1);
        assert_eq!(report.messages.gfa(1).directory, 0);
        // Each directory message is charged the configured one-way latency.
        assert!((report.messages.directory_seconds() - 0.05).abs() < 1e-12);
        // Negotiation accounting is unchanged by the new traffic class.
        assert_eq!(rec.messages, 2);
        assert_eq!(report.messages.total_messages(), 2);
        assert_eq!(report.messages.per_job_directory_summary(), (1, 1.0, 1));
    }

    #[test]
    fn chord_backend_matches_ideal_outcomes_with_measured_costs() {
        let resources = two_resources();
        let make = || {
            vec![
                (0..6)
                    .map(|i| job(0, i, i as f64 * 40.0, 4, 150.0, if i % 2 == 0 { Strategy::Oft } else { Strategy::Ofc }))
                    .collect::<Vec<_>>(),
                vec![job(1, 0, 0.0, 8, 120.0, Strategy::Ofc)],
            ]
        };
        let ideal = run_federation(resources.clone(), make(), FederationConfig::default());
        let chord = run_federation(
            resources,
            make(),
            FederationConfig::with_backend(DirectoryBackend::Chord),
        );
        assert_eq!(chord.backend, DirectoryBackend::Chord);
        // Identical job outcomes, negotiation traffic and bank balances…
        assert_eq!(ideal.jobs.len(), chord.jobs.len());
        for (a, b) in ideal.jobs.iter().zip(&chord.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.messages, b.messages);
        }
        assert_eq!(ideal.messages.total_messages(), chord.messages.total_messages());
        for i in 0..2 {
            assert!((ideal.bank.earnings(i) - chord.bank.earnings(i)).abs() < 1e-12);
        }
        // …while both account (generally different) directory traffic.
        assert!(ideal.messages.directory_messages() > 0);
        assert!(chord.messages.directory_messages() > 0);
        assert!(chord.messages.directory_seconds() > 0.0);
        // Digest view of the same conformance statement: outcome chains are
        // backend-invariant even when traffic accounting differs.
        assert_eq!(ideal.digest.outcomes, chord.digest.outcomes);
    }

    #[test]
    fn maan_backend_matches_ideal_outcomes_and_charges_publish_traffic() {
        // The distributed backend must be outcome-invisible: identical jobs,
        // negotiation traffic and balances — while being the only backend
        // that accounts publish-side traffic (initial subscribes, the
        // scripted departure's routed removes, the repricing's routed move).
        let resources = two_resources();
        let make = || {
            vec![
                (0..6)
                    .map(|i| job(0, i, i as f64 * 40.0, 4, 150.0, if i % 2 == 0 { Strategy::Oft } else { Strategy::Ofc }))
                    .collect::<Vec<_>>(),
                vec![job(1, 0, 0.0, 8, 120.0, Strategy::Ofc)],
            ]
        };
        let with_scripts = |backend| FederationConfig {
            departures: vec![(1, 500.0)],
            repricings: vec![(0, 200.0, 1.5)],
            ..FederationConfig::with_backend(backend)
        };
        let ideal = run_federation(resources.clone(), make(), with_scripts(DirectoryBackend::Ideal));
        let maan = run_federation(resources.clone(), make(), with_scripts(DirectoryBackend::Maan));
        assert_eq!(maan.backend, DirectoryBackend::Maan);
        assert_eq!(ideal.jobs.len(), maan.jobs.len());
        for (a, b) in ideal.jobs.iter().zip(&maan.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.messages, b.messages);
        }
        assert_eq!(ideal.messages.total_messages(), maan.messages.total_messages());
        for i in 0..2 {
            assert!((ideal.bank.earnings(i) - maan.bank.earnings(i)).abs() < 1e-12);
        }
        // Publish traffic: MAAN routed 2 initial puts + a departure's
        // removes + a repricing's move; the central backends publish free.
        assert_eq!(ideal.directory_publish_messages(), 0);
        assert!(
            maan.directory_publish_messages() >= 5,
            "2 subscribes + unsubscribe + reprice must route publish messages (got {})",
            maan.directory_publish_messages()
        );
        assert!(maan.messages.publish_seconds() > 0.0);
        assert!(maan.avg_publish_messages_per_gfa() > 0.0);
        assert_eq!(
            maan.messages.gfa(0).publish + maan.messages.gfa(1).publish,
            maan.directory_publish_messages()
        );

        // The knob: turning the class off zeroes the ledger without
        // touching outcomes.
        let uncharged = run_federation(
            resources,
            make(),
            FederationConfig {
                charge_publish_traffic: false,
                ..with_scripts(DirectoryBackend::Maan)
            },
        );
        assert_eq!(uncharged.directory_publish_messages(), 0);
        assert_eq!(uncharged.jobs.len(), maan.jobs.len());
        for (a, b) in uncharged.jobs.iter().zip(&maan.jobs) {
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn departed_resource_is_unsubscribed_end_to_end() {
        // OFT jobs normally migrate to the fast resource (see
        // `oft_job_migrates_to_the_faster_resource`); once it departs, the
        // directory no longer offers it and the job runs at its origin.
        let resources = two_resources();
        let make = || vec![vec![job(0, 0, 100.0, 4, 100.0, Strategy::Oft)], vec![]];
        let baseline = run_federation(resources.clone(), make(), FederationConfig::default());
        assert!(baseline.jobs[0].was_migrated());

        for backend in DirectoryBackend::ALL {
            let config = FederationConfig {
                departures: vec![(1, 50.0)],
                ..FederationConfig::with_backend(backend)
            };
            let report = run_federation(resources.clone(), make(), config);
            let rec = &report.jobs[0];
            assert!(rec.was_accepted());
            assert!(
                !rec.was_migrated(),
                "{backend:?}: job must stay local after the fast resource departed"
            );
            assert_eq!(report.resources[1].remote_jobs_processed, 0);
            assert!(report.bank.is_balanced());
        }
    }

    #[test]
    fn departed_resource_still_finishes_reserved_work() {
        // The job is dispatched at t≈0 and runs for ~50 s on the remote
        // executor, which departs mid-execution: the reservation is honoured.
        let resources = two_resources();
        let workloads = vec![vec![job(0, 0, 0.0, 4, 100.0, Strategy::Oft)], vec![]];
        let config = FederationConfig {
            departures: vec![(1, 10.0)],
            ..FederationConfig::default()
        };
        let report = run_federation(resources, workloads, config);
        let rec = &report.jobs[0];
        assert!(rec.was_accepted());
        assert!(rec.was_migrated(), "dispatch preceded the departure");
        assert_eq!(report.resources[1].remote_jobs_processed, 1);
        assert!(report.bank.is_balanced());
    }

    #[test]
    fn repricing_updates_the_directory_end_to_end() {
        // Resource 1 (price 4.0) undercuts resource 0 (price 2.0) at t = 50;
        // an OFC job arriving later must now rank resource 1 first and
        // migrate, paying the *new* price.
        let resources = two_resources();
        let make = || vec![vec![job(0, 0, 100.0, 4, 100.0, Strategy::Ofc)], vec![]];
        let baseline = run_federation(resources.clone(), make(), FederationConfig::default());
        assert!(!baseline.jobs[0].was_migrated(), "origin starts out cheapest");

        for backend in DirectoryBackend::ALL {
            let config = FederationConfig {
                repricings: vec![(1, 50.0, 0.5)],
                ..FederationConfig::with_backend(backend)
            };
            let report = run_federation(resources.clone(), make(), config);
            let rec = &report.jobs[0];
            assert!(
                rec.was_migrated(),
                "{backend:?}: OFC job must follow the re-priced cheapest resource"
            );
            let baseline_cost = baseline.jobs[0].cost_paid().unwrap();
            let repriced_cost = rec.cost_paid().unwrap();
            assert!(
                repriced_cost < baseline_cost,
                "{backend:?}: new price must be cheaper ({repriced_cost} vs {baseline_cost})"
            );
            assert!((report.resources[1].incentive - repriced_cost).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "departure refers to unknown GFA")]
    fn departure_for_unknown_gfa_panics() {
        let _ = FederationBuilder::new(two_resources())
            .config(FederationConfig {
                departures: vec![(7, 0.0)],
                ..FederationConfig::default()
            })
            .run();
    }

    #[test]
    #[should_panic(expected = "origin must equal the resource index")]
    fn mismatched_workload_origin_panics() {
        let _ = FederationBuilder::new(two_resources())
            .workload(0, vec![job(1, 0, 0.0, 1, 10.0, Strategy::Ofc)]);
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn empty_federation_panics() {
        let _ = FederationBuilder::new(vec![]).run();
    }
}
