//! Building and running a Grid-Federation.
//!
//! [`FederationBuilder`] wires together everything the paper's simulation
//! contains: one GFA per cluster (each owning a space-shared LRMS and its
//! local user population's trace), the shared federation directory holding
//! every quote, the GridBank, and the message ledger.  [`FederationBuilder::run`]
//! executes the discrete-event simulation to completion and assembles the
//! [`FederationReport`] every experiment consumes.

use std::cell::RefCell;
use std::rc::Rc;

use grid_cluster::{EasyBackfilling, LocalScheduler, ResourceSpec, SpaceSharedFcfs};
use grid_des::{RunOutcome, Simulation};
use grid_directory::{FederationDirectory, IdealDirectory, Quote};
use grid_workload::Job;

use crate::economy::{ChargingPolicy, GridBank};
use crate::gfa::Gfa;
use crate::messages::{FedMessage, MessageLedger};
use crate::metrics::{FederationReport, JobRecord, ResourceMetrics};

/// Which resource-sharing environment to simulate (the paper's three
/// experiment families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingMode {
    /// Experiment 1: every cluster schedules only its own workload.
    Independent,
    /// Experiment 2: federation without economy — local first, then the
    /// remaining clusters in decreasing order of computational speed.
    FederationNoEconomy,
    /// Experiments 3–5: the full economy-driven DBC (OFC/OFT) algorithm.
    Economy,
}

/// Which local scheduler each cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LrmsKind {
    /// Space-shared FCFS, as in the paper (GridSim `SpaceShared`).
    SpaceSharedFcfs,
    /// EASY backfilling, used by the ablation benchmarks.
    EasyBackfilling,
}

/// Federation-wide shared state accessible to every GFA during the run.
#[derive(Debug)]
pub struct SharedState {
    /// The shared federation directory holding every quote.
    pub directory: IdealDirectory,
    /// The GridBank accumulating incentives.
    pub bank: GridBank,
    /// Message accounting.
    pub ledger: MessageLedger,
    /// Per-job records, pushed by origin GFAs as jobs conclude.
    pub jobs: Vec<JobRecord>,
    /// Per-resource end-of-run snapshots (utilization), indexed by resource.
    pub resource_snapshots: Vec<Option<ResourceSnapshot>>,
    /// Number of remote jobs each resource executed.
    pub remote_processed: Vec<usize>,
}

/// End-of-run per-resource snapshot captured by each GFA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSnapshot {
    /// Busy processor-seconds accumulated by the LRMS.
    pub busy_processor_seconds: f64,
    /// Average utilization over the whole run.
    pub utilization: f64,
}

/// Configuration knobs of a federation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationConfig {
    /// Resource-sharing environment.
    pub mode: SchedulingMode,
    /// Local scheduler used by every cluster.
    pub lrms: LrmsKind,
    /// One-way network latency between two different GFAs, in seconds.
    pub latency: f64,
    /// Master seed of the simulation.
    pub seed: u64,
    /// How resource owners charge for executed jobs (see
    /// [`ChargingPolicy`]); also used when fabricating budgets.
    pub charging: ChargingPolicy,
    /// Horizon (in seconds) over which per-resource utilization is reported.
    /// `None` uses the final simulation time; the experiments pass the trace
    /// duration (two days) so utilizations are comparable to the paper's
    /// tables even when a few late jobs run past the trace window.
    pub utilization_horizon: Option<f64>,
    /// When `true` (the default), budgets and deadlines are (re-)fabricated
    /// from Eq. 7–8 before the run; set to `false` to honour caller-supplied
    /// QoS values.
    pub fabricate_qos: bool,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            mode: SchedulingMode::Economy,
            lrms: LrmsKind::SpaceSharedFcfs,
            latency: 0.05,
            seed: 42,
            charging: ChargingPolicy::default(),
            utilization_horizon: None,
            fabricate_qos: true,
        }
    }
}

impl FederationConfig {
    /// Convenience constructor for a given mode with all other defaults.
    #[must_use]
    pub fn with_mode(mode: SchedulingMode) -> Self {
        FederationConfig {
            mode,
            ..FederationConfig::default()
        }
    }
}

/// Builder for a federation simulation.
pub struct FederationBuilder {
    resources: Vec<ResourceSpec>,
    workloads: Vec<Vec<Job>>,
    config: FederationConfig,
}

impl FederationBuilder {
    /// Starts a builder from the participating resources.
    #[must_use]
    pub fn new(resources: Vec<ResourceSpec>) -> Self {
        let n = resources.len();
        FederationBuilder {
            resources,
            workloads: vec![Vec::new(); n],
            config: FederationConfig::default(),
        }
    }

    /// Sets the configuration.
    #[must_use]
    pub fn config(mut self, config: FederationConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the local workload (trace) of resource `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range or a job's origin does not match.
    #[must_use]
    pub fn workload(mut self, index: usize, jobs: Vec<Job>) -> Self {
        assert!(index < self.resources.len(), "unknown resource index {index}");
        assert!(
            jobs.iter().all(|j| j.id.origin == index),
            "every job's origin must equal the resource index it is attached to"
        );
        self.workloads[index] = jobs;
        self
    }

    /// Sets all workloads at once (must be one vector per resource).
    ///
    /// # Panics
    /// Panics if the number of workloads differs from the number of resources.
    #[must_use]
    pub fn workloads(mut self, workloads: Vec<Vec<Job>>) -> Self {
        assert_eq!(
            workloads.len(),
            self.resources.len(),
            "need exactly one workload per resource"
        );
        for (i, jobs) in workloads.iter().enumerate() {
            assert!(
                jobs.iter().all(|j| j.id.origin == i),
                "every job's origin must equal the resource index it is attached to"
            );
        }
        self.workloads = workloads;
        self
    }

    /// Builds and runs the simulation, returning the federation report.
    ///
    /// # Panics
    /// Panics if the federation has no resources.
    #[must_use]
    pub fn run(self) -> FederationReport {
        let FederationBuilder {
            resources,
            mut workloads,
            config,
        } = self;
        let n = resources.len();
        assert!(n > 0, "a federation needs at least one resource");

        if config.fabricate_qos {
            for (i, jobs) in workloads.iter_mut().enumerate() {
                config.charging.fabricate_qos_all(jobs, &resources[i]);
            }
        }

        let mut directory = IdealDirectory::new();
        for (i, spec) in resources.iter().enumerate() {
            directory.subscribe(Quote::from_spec(i, spec));
        }

        let total_jobs: usize = workloads.iter().map(Vec::len).sum();
        let shared = Rc::new(RefCell::new(SharedState {
            directory,
            bank: GridBank::new(n),
            ledger: MessageLedger::new(n),
            jobs: Vec::with_capacity(total_jobs),
            resource_snapshots: vec![None; n],
            remote_processed: vec![0; n],
        }));

        let mut sim: Simulation<FedMessage> = Simulation::new(config.seed);
        for (i, spec) in resources.iter().enumerate() {
            let lrms: Box<dyn LocalScheduler> = match config.lrms {
                LrmsKind::SpaceSharedFcfs => Box::new(SpaceSharedFcfs::new(spec.processors)),
                LrmsKind::EasyBackfilling => Box::new(EasyBackfilling::new(spec.processors)),
            };
            let gfa = Gfa::new(
                i,
                spec.clone(),
                config.mode,
                config.charging,
                config.latency,
                lrms,
                std::mem::take(&mut workloads[i]),
                Rc::clone(&shared),
            );
            let id = sim.add_entity(Box::new(gfa));
            assert_eq!(id.index(), i, "GFA entity ids must equal resource indices");
        }

        let outcome = sim.run();
        assert_eq!(
            outcome,
            RunOutcome::Exhausted,
            "a federation run must drain all events"
        );
        let sim_end = sim.now().as_secs();
        // The GFAs hold clones of the shared state; drop the simulation (and
        // with it the entities) before unwrapping.
        drop(sim);

        let state = Rc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("GFAs must not outlive the simulation"))
            .into_inner();
        assemble_report(&resources, state, sim_end, config.utilization_horizon)
    }
}

fn assemble_report(
    resources: &[ResourceSpec],
    state: SharedState,
    sim_end: f64,
    utilization_horizon: Option<f64>,
) -> FederationReport {
    let SharedState {
        directory: _,
        bank,
        ledger,
        jobs,
        resource_snapshots,
        remote_processed,
    } = state;

    let mut metrics: Vec<ResourceMetrics> = resources
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let snapshot = resource_snapshots[i].unwrap_or(ResourceSnapshot {
                busy_processor_seconds: 0.0,
                utilization: 0.0,
            });
            let horizon = utilization_horizon.unwrap_or(sim_end).max(f64::EPSILON);
            let utilization = (snapshot.busy_processor_seconds
                / (f64::from(spec.processors) * horizon))
                .min(1.0);
            ResourceMetrics {
                name: spec.name.clone(),
                processors: spec.processors,
                utilization,
                busy_processor_seconds: snapshot.busy_processor_seconds,
                total_local_jobs: 0,
                accepted: 0,
                rejected: 0,
                processed_locally: 0,
                migrated: 0,
                remote_jobs_processed: remote_processed[i],
                incentive: bank.earnings(i),
            }
        })
        .collect();

    for job in &jobs {
        let m = &mut metrics[job.origin];
        m.total_local_jobs += 1;
        if job.was_accepted() {
            m.accepted += 1;
            if job.was_migrated() {
                m.migrated += 1;
            } else {
                m.processed_locally += 1;
            }
        } else {
            m.rejected += 1;
        }
    }

    debug_assert!(bank.is_balanced(), "GridBank must conserve currency");

    FederationReport {
        resources: metrics,
        jobs,
        messages: ledger,
        bank,
        sim_end,
    }
}

/// Convenience function: builds and runs a federation in one call.
#[must_use]
pub fn run_federation(
    resources: Vec<ResourceSpec>,
    workloads: Vec<Vec<Job>>,
    config: FederationConfig,
) -> FederationReport {
    FederationBuilder::new(resources)
        .workloads(workloads)
        .config(config)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_workload::{JobId, Qos, Strategy, UserId};

    fn two_resources() -> Vec<ResourceSpec> {
        vec![
            ResourceSpec::new("slow-cheap", 32, 500.0, 1.0, 2.0),
            ResourceSpec::new("fast-pricey", 32, 1_000.0, 2.0, 4.0),
        ]
    }

    fn job(origin: usize, seq: usize, submit: f64, procs: u32, runtime: f64, strategy: Strategy) -> Job {
        let mips = if origin == 0 { 500.0 } else { 1_000.0 };
        let mut j = Job::from_runtime(
            JobId { origin, seq },
            UserId { origin, local: seq % 4 },
            submit,
            procs,
            runtime,
            mips,
            0.10,
        );
        j.qos = Qos {
            budget: 0.0,
            deadline: 0.0,
            strategy,
        };
        j
    }

    #[test]
    fn single_local_job_completes_on_its_origin() {
        let resources = two_resources();
        let workloads = vec![vec![job(0, 0, 10.0, 4, 100.0, Strategy::Ofc)], vec![]];
        let report = run_federation(resources, workloads, FederationConfig::default());
        assert_eq!(report.jobs.len(), 1);
        let rec = &report.jobs[0];
        assert!(rec.was_accepted());
        // OFC: resource 0 is the cheapest, and it is the origin → local run.
        assert!(!rec.was_migrated());
        assert!(rec.qos_satisfied());
        assert_eq!(rec.messages, 2); // self negotiate + reply
        assert_eq!(report.resources[0].processed_locally, 1);
        assert_eq!(report.resources[0].accepted, 1);
        assert_eq!(report.resources[1].remote_jobs_processed, 0);
        assert!(report.resources[0].incentive > 0.0);
        assert!(report.bank.is_balanced());
    }

    #[test]
    fn oft_job_migrates_to_the_faster_resource() {
        let resources = two_resources();
        let workloads = vec![vec![job(0, 0, 0.0, 4, 100.0, Strategy::Oft)], vec![]];
        let report = run_federation(resources, workloads, FederationConfig::default());
        let rec = &report.jobs[0];
        assert!(rec.was_accepted());
        assert!(rec.was_migrated(), "OFT should pick the fast resource");
        // 4 messages: negotiate, reply, job submission, job completion.
        assert_eq!(rec.messages, 4);
        assert_eq!(report.resources[1].remote_jobs_processed, 1);
        assert_eq!(report.resources[0].migrated, 1);
        assert!(report.resources[1].incentive > 0.0);
        assert!((report.total_incentive() - report.bank.total_volume()).abs() < 1e-9);
    }

    #[test]
    fn independent_mode_never_migrates_and_counts_no_messages() {
        let resources = two_resources();
        let workloads = vec![
            vec![
                job(0, 0, 0.0, 4, 100.0, Strategy::Oft),
                job(0, 1, 5.0, 8, 200.0, Strategy::Ofc),
            ],
            vec![job(1, 0, 0.0, 4, 50.0, Strategy::Ofc)],
        ];
        let report = run_federation(
            resources,
            workloads,
            FederationConfig::with_mode(SchedulingMode::Independent),
        );
        assert_eq!(report.jobs.len(), 3);
        assert!(report.jobs.iter().all(|j| !j.was_migrated()));
        assert!(report.jobs.iter().all(|j| j.messages == 0));
        assert_eq!(report.messages.total_messages(), 0);
        assert_eq!(report.resources[0].remote_jobs_processed, 0);
        assert_eq!(report.resources[1].remote_jobs_processed, 0);
    }

    #[test]
    fn overloaded_origin_spills_into_the_federation() {
        // Resource 0 has only 4 processors; flood it with simultaneous jobs so
        // some must either migrate (federation) or be rejected (independent).
        let resources = vec![
            ResourceSpec::new("tiny", 4, 500.0, 1.0, 2.0),
            ResourceSpec::new("big", 64, 1_000.0, 2.0, 4.0),
        ];
        let make_workloads = || {
            vec![
                (0..8)
                    .map(|i| {
                        let mut j = Job::from_runtime(
                            JobId { origin: 0, seq: i },
                            UserId { origin: 0, local: i },
                            0.0,
                            4,
                            500.0,
                            500.0,
                            0.10,
                        );
                        j.qos.strategy = Strategy::Ofc;
                        j
                    })
                    .collect::<Vec<_>>(),
                vec![],
            ]
        };
        let fed = run_federation(
            resources.clone(),
            make_workloads(),
            FederationConfig::with_mode(SchedulingMode::Economy),
        );
        let ind = run_federation(
            resources,
            make_workloads(),
            FederationConfig::with_mode(SchedulingMode::Independent),
        );
        let fed_accepted = fed.resources[0].accepted;
        let ind_accepted = ind.resources[0].accepted;
        assert!(
            fed_accepted > ind_accepted,
            "federation should accept more jobs ({fed_accepted} vs {ind_accepted})"
        );
        assert!(fed.resources[0].migrated > 0);
        assert_eq!(fed.resources[1].remote_jobs_processed, fed.resources[0].migrated);
        // Deadlines of accepted jobs are honoured.
        assert!(fed.jobs.iter().filter(|j| j.was_accepted()).all(|j| j.qos_satisfied()));
    }

    #[test]
    fn no_economy_mode_prefers_local_then_fastest() {
        let resources = two_resources();
        let workloads = vec![
            vec![job(0, 0, 0.0, 4, 100.0, Strategy::Ofc)],
            vec![job(1, 0, 0.0, 4, 100.0, Strategy::Ofc)],
        ];
        let report = run_federation(
            resources,
            workloads,
            FederationConfig::with_mode(SchedulingMode::FederationNoEconomy),
        );
        // Both resources are idle, so both jobs stay local.
        assert!(report.jobs.iter().all(|j| !j.was_migrated()));
        assert_eq!(report.resources[0].processed_locally, 1);
        assert_eq!(report.resources[1].processed_locally, 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let resources = two_resources();
        let workloads = || {
            vec![
                (0..10)
                    .map(|i| job(0, i, i as f64 * 50.0, 2 + (i as u32 % 4), 200.0, if i % 3 == 0 { Strategy::Oft } else { Strategy::Ofc }))
                    .collect::<Vec<_>>(),
                (0..5)
                    .map(|i| job(1, i, i as f64 * 80.0, 4, 150.0, Strategy::Ofc))
                    .collect::<Vec<_>>(),
            ]
        };
        let a = run_federation(two_resources(), workloads(), FederationConfig::default());
        let b = run_federation(resources, workloads(), FederationConfig::default());
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.messages.total_messages(), b.messages.total_messages());
        assert!((a.total_incentive() - b.total_incentive()).abs() < 1e-9);
        assert_eq!(a.sim_end, b.sim_end);
    }

    #[test]
    #[should_panic(expected = "origin must equal the resource index")]
    fn mismatched_workload_origin_panics() {
        let _ = FederationBuilder::new(two_resources())
            .workload(0, vec![job(1, 0, 0.0, 1, 10.0, Strategy::Ofc)]);
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn empty_federation_panics() {
        let _ = FederationBuilder::new(vec![]).run();
    }
}
