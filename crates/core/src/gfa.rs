//! The Grid Federation Agent (GFA).
//!
//! A GFA is the paper's two-layer resource-management system: a *distributed
//! information manager* (the interface to the shared federation directory)
//! plus a *resource manager* (admission control and execution on the local
//! LRMS).  One GFA entity is instantiated per cluster; its entity id in the
//! simulation equals its resource index.
//!
//! ## Scheduling algorithm (paper §2.2)
//!
//! For every job submitted by its local users the GFA runs the deadline- and
//! budget-constrained (DBC) loop:
//!
//! 1. `r ← 1`.
//! 2. Query the federation directory for the `r`-th cheapest (OFC) or `r`-th
//!    fastest (OFT) quote.
//! 3. Skip candidates that are statically infeasible: fewer processors than
//!    the job needs, an unloaded execution time already past the deadline, or
//!    (OFT only) a cost above the job's budget.  The paper lets the GFA make
//!    these checks locally from the quote ("using R_i and c_i, a GFA can
//!    determine the cost … and the time taken, assuming that cluster i has no
//!    load"), so they cost no messages.
//! 4. Send a *negotiate* message to the candidate asking for a guarantee that
//!    the job finishes before its absolute deadline.  The candidate consults
//!    its LRMS queue estimate and answers with a *reply*.
//! 5. On acceptance the origin sends the *job-submission* message; on
//!    completion the executor sends the *job-completion* message back.  On
//!    refusal, `r ← r + 1` and the loop repeats; when the quotes are
//!    exhausted the job is dropped.
//!
//! Admission control doubles as a reservation: when a candidate accepts, it
//! immediately enters the job into its LRMS queue so that the guarantee it
//! just gave cannot be invalidated by a concurrent negotiation — this is the
//! coordination property the paper's one-to-one negotiation scheme is
//! designed to provide.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use grid_cluster::{completion_time, ClusterJob, LocalScheduler, ResourceSpec, StartedJob};
use grid_des::{Context, Entity, EntityId, Event, FlowRecord, SimTime, SpanRecord, SpanTrack};
use grid_directory::{FederationDirectory, Quote, QuoteCache, RankCursor, RankOrder, TracedQuote};
use grid_obs::{Counter, FSum, HistId};
use grid_workload::{Job, JobId, Strategy};

use crate::economy::ChargingPolicy;
use crate::federation::{
    DirectoryQueryPath, GfaSchedule, RepairMode, RetryPolicy, SchedulingMode, SharedState,
};
use crate::messages::{FedMessage, MessageType};
use crate::metrics::{ExecutionOutcome, JobRecord};

/// A job this GFA is still trying to place (it is the origin).
#[derive(Debug, Clone)]
struct PendingJob {
    job: Job,
    /// Next rank `r` to query (1-based).
    next_rank: usize,
    /// This job's streaming position in the directory ranking: opened
    /// (routed) on the first probed rank and advanced one rank per probe, so
    /// resuming the DBC loop after a refused negotiation never recomputes
    /// rank `r` from scratch.  `None` until the job first misses the GFA's
    /// quote cache (or always, under
    /// [`DirectoryQueryPath::PerRank`]).
    cursor: Option<RankCursor>,
    /// Accountable negotiation messages exchanged so far for this job.
    messages: u32,
    /// Directory messages spent on this job's ranking queries so far.
    directory_messages: u32,
    /// Backoff retries already spent after faulted lookups (see
    /// [`RetryPolicy`]).
    retries: u32,
    /// When the current remote negotiation round-trip was launched (only
    /// meaningful while a reply is awaited; read by the negotiation span).
    negotiation_start: f64,
    /// Service time and cost on the candidate currently being negotiated
    /// with, so they need not be recomputed when the reply arrives.
    candidate_service: f64,
    candidate_cost: f64,
    expected_local_response: f64,
    expected_local_cost: f64,
}

/// A job dispatched to a remote executor, awaiting its completion message.
#[derive(Debug, Clone)]
struct AwaitingRemote {
    job: Job,
    messages: u32,
    directory_messages: u32,
    service_time: f64,
    expected_local_response: f64,
    expected_local_cost: f64,
}

/// A job reserved/executing on this GFA's own LRMS.
#[derive(Debug, Clone)]
struct ExecutingJob {
    origin: usize,
    cost: f64,
    start: Option<f64>,
    /// Populated only when the origin is this GFA itself: the information
    /// needed to emit the job record at completion.
    local_seed: Option<LocalSeed>,
}

#[derive(Debug, Clone)]
struct LocalSeed {
    job: Job,
    messages: u32,
    directory_messages: u32,
    expected_local_response: f64,
    expected_local_cost: f64,
}

/// The Grid Federation Agent entity.
pub struct Gfa {
    index: usize,
    name: String,
    spec: ResourceSpec,
    mode: SchedulingMode,
    charging: ChargingPolicy,
    latency: f64,
    lrms: Box<dyn LocalScheduler>,
    local_jobs: Vec<Job>,
    schedule: GfaSchedule,
    /// Set once the departure timer fired: the quote is withdrawn and no new
    /// work is admitted.
    departed: bool,
    /// Set by a *scripted* departure, which is permanent: later churn-drawn
    /// rejoin events must not resurrect the GFA.
    retired: bool,
    /// How this GFA retries faulted directory lookups before degrading a
    /// job to local-only scheduling.
    retry: RetryPolicy,
    /// Whether a faulted lookup triggers an immediate targeted ring repair
    /// or only the periodic stabilization rounds heal the overlay.
    repair: RepairMode,
    /// How ranking queries execute (cursor-streamed or per-rank oracle).
    query_path: DirectoryQueryPath,
    /// Whether publish-side directory traffic (routed `unsubscribe` /
    /// `update_price` operations) is accounted into the ledger.
    charge_publish: bool,
    /// Epoch-keyed memo of quotes this GFA already streamed from the
    /// directory; invalidated automatically when the directory mutates.
    quote_cache: QuoteCache,
    shared: Rc<RefCell<SharedState>>,
    pending: BTreeMap<JobId, PendingJob>,
    awaiting_remote: BTreeMap<JobId, AwaitingRemote>,
    executing: BTreeMap<JobId, ExecutingJob>,
    /// Reusable buffer for LRMS start notifications, so the steady-state
    /// event loop performs no per-event allocation.
    scratch: Vec<StartedJob>,
}

impl Gfa {
    /// Creates a GFA for resource `index`.
    ///
    /// `local_jobs` is the trace of jobs submitted by this cluster's local
    /// user population (QoS already fabricated); `lrms` is the local
    /// scheduler; `schedule` holds the scripted departure/re-pricing times;
    /// `shared` is the federation-wide shared state (directory, bank,
    /// ledger, collected records).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: usize,
        spec: ResourceSpec,
        mode: SchedulingMode,
        charging: ChargingPolicy,
        latency: f64,
        lrms: Box<dyn LocalScheduler>,
        local_jobs: Vec<Job>,
        schedule: GfaSchedule,
        query_path: DirectoryQueryPath,
        charge_publish: bool,
        retry: RetryPolicy,
        repair: RepairMode,
        shared: Rc<RefCell<SharedState>>,
    ) -> Self {
        let name = format!("gfa-{index}-{}", spec.name);
        Gfa {
            index,
            name,
            spec,
            mode,
            charging,
            latency,
            lrms,
            local_jobs,
            schedule,
            departed: false,
            retired: false,
            retry,
            repair,
            query_path,
            charge_publish,
            quote_cache: QuoteCache::new(),
            shared,
            pending: BTreeMap::new(),
            awaiting_remote: BTreeMap::new(),
            executing: BTreeMap::new(),
            scratch: Vec::new(),
        }
    }

    /// The resource this GFA manages.
    #[must_use]
    pub fn spec(&self) -> &ResourceSpec {
        &self.spec
    }

    fn entity_of(&self, gfa_index: usize) -> EntityId {
        // The federation builder registers GFAs in resource order, so the
        // entity id equals the resource index.
        EntityId::new(gfa_index)
    }

    fn message_delay(&self, to: usize) -> f64 {
        if to == self.index {
            0.0
        } else {
            self.latency
        }
    }

    /// Sends one negotiation-protocol message to a *remote* GFA over the
    /// (possibly unreliable) transport.
    ///
    /// The semantic copy is always delivered after the nominal link latency,
    /// so job outcomes do not depend on the fault layer.  When the fault
    /// layer is active the message additionally gets a per-link envelope
    /// sequence, and the link's fault stream decides how many transmissions
    /// were dropped before the timeout/retransmit machinery got it through
    /// (each one an extra copy of the same accountable message, charged into
    /// the same ledger class as the original) and whether the delivery was
    /// duplicated in flight — the duplicate is delivered as a real second
    /// event inside the reorder window and rejected by the receiver's dedup
    /// window.  Retransmission is bounded by the configured
    /// `max_retransmits` budget, after which the final attempt always goes
    /// through (see [`grid_des::NetworkFaultConfig`]), so every negotiation
    /// eventually completes.
    fn send_protocol(
        &mut self,
        to: usize,
        ty: MessageType,
        ledger_origin: usize,
        ledger_counterpart: usize,
        build: impl Fn(u64) -> FedMessage,
        ctx: &mut Context<'_, FedMessage>,
    ) -> u64 {
        debug_assert_ne!(to, self.index, "protocol sends are strictly remote");
        let delay = self.message_delay(to);
        let mut seq = 0;
        let mut duplicate_delay = None;
        {
            let mut shared = self.shared.borrow_mut();
            shared.charge_message(ty, ledger_origin, ledger_counterpart);
            let state = &mut *shared;
            let planned = state.net.as_mut().map(|net| {
                let seq = net.next_seq(self.index, to);
                let plan = net.plan(self.index, to);
                (seq, plan)
            });
            if let Some((envelope, plan)) = planned {
                seq = envelope;
                state.metrics.inc(self.index, Counter::NetEnveloped);
                state
                    .metrics
                    .add(self.index, Counter::NetRetransmissions, u64::from(plan.retransmissions));
                state
                    .metrics
                    .add_f(self.index, FSum::BackoffSeconds, plan.backoff_seconds);
                state
                    .metrics
                    .add_f(self.index, FSum::JitterSeconds, plan.jitter_seconds);
                for _ in 0..plan.retransmissions {
                    state.charge_message(ty, ledger_origin, ledger_counterpart);
                }
                if plan.duplicate {
                    state.metrics.inc(self.index, Counter::NetDuplicates);
                    state.charge_message(ty, ledger_origin, ledger_counterpart);
                    duplicate_delay = Some(plan.duplicate_delay);
                }
            }
        }
        ctx.send(self.entity_of(to), delay, build(seq));
        if let Some(extra) = duplicate_delay {
            // Same-timestamp events deliver in insertion order, so even a
            // zero-window duplicate arrives after the original.
            ctx.send(self.entity_of(to), delay + extra, build(seq));
        }
        seq
    }

    /// Deterministic flow identity linking a send to its delivery in the
    /// trace.  With an envelope sequence the id composes the directed link
    /// and the PR-9 sequence number (unique because seqs are per-link
    /// monotone); on the reliable transport (`seq == 0`) it falls back to
    /// the job identity plus a completion bit, which is unique because each
    /// job dispatches and completes at most once.
    fn flow_id(seq: u64, src: usize, dst: usize, job: JobId, completion: bool) -> u64 {
        if seq != 0 {
            ((src as u64) << 52) | ((dst as u64) << 44) | (seq & 0xFFF_FFFF_FFFF)
        } else {
            (1 << 63) | ((job.origin as u64) << 40) | ((job.seq as u64) << 1) | u64::from(completion)
        }
    }

    /// Receiver-side dedup: decides whether a delivered event's payload may
    /// take effect.  Envelopes already admitted on this link (in-flight
    /// duplicates, hypothetical retransmit races) are rejected, making every
    /// protocol handler effectively idempotent; un-enveloped payloads
    /// (self-timers, reliable-transport messages with `seq == 0`) always
    /// pass.
    fn admit_envelope(&mut self, event: &Event<FedMessage>) -> bool {
        let Some(seq) = event.payload.envelope_seq() else {
            return true;
        };
        if seq == 0 {
            return true;
        }
        let src = event.src.index();
        let mut shared = self.shared.borrow_mut();
        let state = &mut *shared;
        let Some(net) = state.net.as_mut() else {
            return true;
        };
        if net.admit(src, self.index, seq) {
            true
        } else {
            state.metrics.inc(self.index, Counter::NetDedupDrops);
            false
        }
    }

    /// Registers newly started LRMS jobs: remembers their start times and
    /// schedules their completion timers.
    fn handle_started(&mut self, started: &[StartedJob], ctx: &mut Context<'_, FedMessage>) {
        for s in started {
            if let Some(entry) = self.executing.get_mut(&s.id) {
                entry.start = Some(s.start);
            }
            ctx.timer_at(
                SimTime::new(s.finish.max(ctx.now().as_secs())),
                FedMessage::LocalJobFinished { job: s.id },
            );
        }
    }

    /// Handles a job arriving from the local user population.
    fn on_job_arrival(&mut self, job: Job, ctx: &mut Context<'_, FedMessage>) {
        let expected_local_response = completion_time(&job, &self.spec, &self.spec);
        let expected_local_cost = self.charging.charge(&job, &self.spec);
        self.shared
            .borrow_mut()
            .metrics
            .observe(HistId::QueueDepth, self.lrms.queued_count() as f64);

        match self.mode {
            SchedulingMode::Independent => {
                self.schedule_independent(job, expected_local_response, expected_local_cost, ctx);
            }
            SchedulingMode::FederationNoEconomy | SchedulingMode::Economy => {
                // Try candidates through the federation loop.  In the
                // no-economy mode the local resource is always the first
                // candidate (the paper processes locally whenever possible);
                // in economy mode the ranking alone decides.
                let pending = PendingJob {
                    job,
                    next_rank: 1,
                    cursor: None,
                    messages: 0,
                    directory_messages: 0,
                    retries: 0,
                    negotiation_start: 0.0,
                    candidate_service: 0.0,
                    candidate_cost: 0.0,
                    expected_local_response,
                    expected_local_cost,
                };
                self.try_candidates(pending, ctx);
            }
        }
    }

    /// Experiment 1 behaviour: accept iff the local LRMS can finish the job
    /// before its deadline; no federation, no messages.
    fn schedule_independent(
        &mut self,
        job: Job,
        expected_local_response: f64,
        expected_local_cost: f64,
        ctx: &mut Context<'_, FedMessage>,
    ) {
        let now = ctx.now().as_secs();
        let service = completion_time(&job, &self.spec, &self.spec);
        let fits = job.processors <= self.spec.processors;
        let estimate = if fits {
            self.lrms.estimate_completion(job.processors, service, now)
        } else {
            f64::INFINITY
        };
        if fits && estimate <= job.absolute_deadline() + 1e-9 {
            let cost = self.charging.charge(&job, &self.spec);
            self.accept_locally(job, service, cost, 0, 0, expected_local_response, expected_local_cost, ctx);
        } else {
            self.record_rejection(&job, 0, 0, expected_local_response, expected_local_cost);
        }
    }

    /// Resolves the `r`-th quote of `order` for one in-flight job,
    /// accounting its directory messages (and the simulated network time
    /// they represent, hops × latency) into the ledger.
    ///
    /// Under [`DirectoryQueryPath::Cursor`] the probe is served from this
    /// GFA's epoch-keyed quote cache when possible and otherwise streamed
    /// through the job's [`RankCursor`] — O(1) work per rank, with the
    /// routed open paid once per `(ordering, epoch)`.  Under
    /// [`DirectoryQueryPath::PerRank`] it executes the paper's
    /// query-per-rank model literally.  Both paths return bit-identical
    /// quotes and charges (the cursor path replays the oracle's telemetry),
    /// which the differential tests assert end to end.
    ///
    /// The second return value is `true` when the probe *faulted*: the node
    /// storing the entry crashed and no live replica could answer before a
    /// stabilization round repaired the overlay.  A faulted probe still
    /// charges its route, returns no quote, and is never memoised.
    fn probe_directory(
        &mut self,
        order: RankOrder,
        r: usize,
        cursor: &mut Option<RankCursor>,
        now: f64,
    ) -> (TracedQuote, bool) {
        let (traced, fault) = {
            let shared = self.shared.borrow();
            let traced = match self.query_path {
                DirectoryQueryPath::Cursor => {
                    self.quote_cache
                        .probe(&shared.directory, self.index, order, r, cursor)
                }
                DirectoryQueryPath::PerRank => shared.directory.query_ranked(self.index, order, r),
            };
            (traced, shared.directory.take_fault())
        };
        if traced.messages > 0 {
            let seconds = traced.messages as f64 * self.latency;
            let mut shared = self.shared.borrow_mut();
            shared.charge_directory(self.index, traced.messages, seconds);
            if shared.trace_armed() {
                // Lookups are accounted out-of-band (they never delay the
                // negotiation timeline), so the span renders the simulated
                // hops × latency interval the charge represents.
                shared.emit_span(SpanRecord {
                    gfa: self.index,
                    track: SpanTrack::Directory,
                    name: "probe",
                    start: SimTime::new(now),
                    end: SimTime::new(now + seconds),
                    detail: format!("rank {r}{}", if fault { " (faulted)" } else { "" }),
                });
            }
        }
        (traced, fault)
    }

    /// Runs the DBC candidate loop until a negotiation is launched, the job
    /// is accepted locally, or the quotes are exhausted (rejection).
    fn try_candidates(&mut self, mut pending: PendingJob, ctx: &mut Context<'_, FedMessage>) {
        let now = ctx.now().as_secs();
        let directory_len = self.shared.borrow().directory.len();
        let job = pending.job.clone();
        let strategy = job.qos.strategy;
        let absolute_deadline = job.absolute_deadline();

        loop {
            // In the no-economy federation the local cluster is implicitly
            // rank 0: always examined first, then the remaining resources in
            // decreasing speed order.  Directory queries are traced: their
            // message cost (modelled or measured, depending on the backend)
            // is accounted per job and per GFA, separately from negotiation.
            let candidate = if self.mode == SchedulingMode::FederationNoEconomy {
                if pending.next_rank == 1 {
                    // The local quote is known without touching the directory.
                    Some(grid_directory::Quote::from_spec(self.index, &self.spec))
                } else {
                    let r = pending.next_rank - 1;
                    if r > directory_len {
                        None
                    } else {
                        let (traced, fault) =
                            self.probe_directory(RankOrder::Fastest, r, &mut pending.cursor, now);
                        pending.directory_messages += u32::try_from(traced.messages).unwrap_or(u32::MAX);
                        if fault {
                            self.defer_after_fault(pending, ctx);
                            return;
                        }
                        traced.quote
                    }
                }
            } else {
                let r = pending.next_rank;
                if r > directory_len {
                    None
                } else {
                    let order = if strategy == Strategy::Oft {
                        RankOrder::Fastest
                    } else {
                        RankOrder::Cheapest
                    };
                    let (traced, fault) = self.probe_directory(order, r, &mut pending.cursor, now);
                    pending.directory_messages += u32::try_from(traced.messages).unwrap_or(u32::MAX);
                    if fault {
                        self.defer_after_fault(pending, ctx);
                        return;
                    }
                    traced.quote
                }
            };
            pending.next_rank += 1;

            let Some(quote) = candidate else {
                // Quotes exhausted: the job is dropped.
                self.record_rejection(
                    &job,
                    pending.messages,
                    pending.directory_messages,
                    pending.expected_local_response,
                    pending.expected_local_cost,
                );
                return;
            };

            // No-economy mode already examined the local resource at rank 0;
            // skip it when it reappears in the speed ranking.
            if self.mode == SchedulingMode::FederationNoEconomy
                && pending.next_rank > 2
                && quote.gfa == self.index
            {
                continue;
            }

            // Static feasibility checks from the quote (no messages).
            if quote.processors < job.processors {
                continue;
            }
            let candidate_spec = quote.to_spec();
            let service = completion_time(&job, &candidate_spec, &self.spec);
            let cost = self.charging.charge(&job, &candidate_spec);
            if now + service > absolute_deadline + 1e-9 {
                // Even an unloaded cluster of this speed cannot meet the
                // deadline; the paper's GFA would not negotiate with it.
                continue;
            }
            if self.mode == SchedulingMode::Economy
                && strategy == Strategy::Oft
                && cost > job.qos.budget + 1e-9
            {
                // OFT users never select resources they cannot afford.
                continue;
            }

            if quote.gfa == self.index {
                // Self-negotiation: the admission-control enquiry and answer
                // still count as two (local) messages, per the paper's
                // per-job message model.
                {
                    let mut shared = self.shared.borrow_mut();
                    shared.charge_message(MessageType::Negotiate, self.index, self.index);
                    shared.charge_message(MessageType::Reply, self.index, self.index);
                    if shared.trace_armed() {
                        // Self-negotiation resolves within the event: a
                        // zero-duration round-trip on the negotiation track.
                        shared.emit_span(SpanRecord {
                            gfa: self.index,
                            track: SpanTrack::Negotiation,
                            name: "negotiation",
                            start: SimTime::new(now),
                            end: SimTime::new(now),
                            detail: format!("{} self", job.id),
                        });
                    }
                }
                pending.messages += 2;
                let estimate = self.lrms.estimate_completion(job.processors, service, now);
                if !self.departed && estimate <= absolute_deadline + 1e-9 {
                    self.accept_locally(
                        job,
                        service,
                        cost,
                        pending.messages,
                        pending.directory_messages,
                        pending.expected_local_response,
                        pending.expected_local_cost,
                        ctx,
                    );
                    return;
                }
                continue;
            }

            // Remote candidate: launch the admission-control negotiation and
            // wait for the reply event.
            pending.messages += 1;
            pending.candidate_service = service;
            pending.candidate_cost = cost;
            pending.negotiation_start = now;
            let attempt = u32::try_from(pending.next_rank - 1).unwrap_or(u32::MAX);
            let origin = self.index;
            let job_id = job.id;
            let processors = job.processors;
            self.send_protocol(
                quote.gfa,
                MessageType::Negotiate,
                self.index,
                quote.gfa,
                |seq| FedMessage::Negotiate {
                    job: job_id,
                    origin,
                    processors,
                    service_time: service,
                    cost,
                    absolute_deadline,
                    attempt,
                    seq,
                },
                ctx,
            );
            self.pending.insert(job.id, pending);
            return;
        }
    }

    /// Accepts a job onto the local LRMS (the origin is this GFA itself).
    #[allow(clippy::too_many_arguments)]
    fn accept_locally(
        &mut self,
        job: Job,
        service: f64,
        cost: f64,
        messages: u32,
        directory_messages: u32,
        expected_local_response: f64,
        expected_local_cost: f64,
        ctx: &mut Context<'_, FedMessage>,
    ) {
        let now = ctx.now().as_secs();
        let cluster_job = ClusterJob {
            id: job.id,
            processors: job.processors,
            service_time: service,
        };
        self.executing.insert(
            job.id,
            ExecutingJob {
                origin: self.index,
                cost,
                start: None,
                local_seed: Some(LocalSeed {
                    job: job.clone(),
                    messages,
                    directory_messages,
                    expected_local_response,
                    expected_local_cost,
                }),
            },
        );
        let mut started = std::mem::take(&mut self.scratch);
        started.clear();
        self.lrms.submit_into(cluster_job, now, &mut started);
        self.handle_started(&started, ctx);
        self.scratch = started;
        self.shared
            .borrow_mut()
            .conclude_job(job.id, messages, directory_messages);
    }

    /// Records a rejected job.
    fn record_rejection(
        &mut self,
        job: &Job,
        messages: u32,
        directory_messages: u32,
        expected_local_response: f64,
        expected_local_cost: f64,
    ) {
        let mut shared = self.shared.borrow_mut();
        shared.conclude_job(job.id, messages, directory_messages);
        shared.push_job_record(JobRecord {
            id: job.id,
            origin: self.index,
            strategy: job.qos.strategy,
            submit: job.submit,
            processors: job.processors,
            deadline: job.qos.deadline,
            budget: job.qos.budget,
            expected_local_response,
            expected_local_cost,
            messages,
            directory_messages,
            outcome: ExecutionOutcome::Rejected,
        });
    }

    /// Handles an incoming admission-control enquiry from another GFA.
    #[allow(clippy::too_many_arguments)]
    fn on_negotiate(
        &mut self,
        job: JobId,
        origin: usize,
        processors: u32,
        service_time: f64,
        cost: f64,
        absolute_deadline: f64,
        attempt: u32,
        ctx: &mut Context<'_, FedMessage>,
    ) {
        let now = ctx.now().as_secs();
        let fits = processors <= self.spec.processors;
        let estimate = if fits {
            self.lrms.estimate_completion(processors, service_time, now)
        } else {
            f64::INFINITY
        };
        // A departed GFA refuses every new enquiry (its quote is already
        // withdrawn, but negotiations launched before the departure can still
        // be in flight).
        let accept = !self.departed && fits && estimate <= absolute_deadline + 1e-9;
        if accept {
            // Reserve immediately so the guarantee cannot be invalidated by a
            // concurrent negotiation with another GFA.
            self.executing.insert(
                job,
                ExecutingJob {
                    origin,
                    cost,
                    start: None,
                    local_seed: None,
                },
            );
            let mut started = std::mem::take(&mut self.scratch);
            started.clear();
            self.lrms.submit_into(
                ClusterJob {
                    id: job,
                    processors,
                    service_time,
                },
                now,
                &mut started,
            );
            self.handle_started(&started, ctx);
            self.scratch = started;
        }
        let candidate = self.index;
        self.send_protocol(
            origin,
            MessageType::Reply,
            origin,
            self.index,
            |seq| FedMessage::NegotiateReply {
                job,
                accept,
                candidate,
                attempt,
                seq,
            },
            ctx,
        );
    }

    /// Handles the reply to one of our own negotiations.
    fn on_negotiate_reply(
        &mut self,
        job: JobId,
        accept: bool,
        candidate: usize,
        ctx: &mut Context<'_, FedMessage>,
    ) {
        let Some(mut pending) = self.pending.remove(&job) else {
            panic!("negotiate reply for unknown pending job {job}");
        };
        pending.messages += 1;
        {
            let shared = self.shared.borrow();
            if shared.trace_armed() {
                shared.emit_span(SpanRecord {
                    gfa: self.index,
                    track: SpanTrack::Negotiation,
                    name: "negotiation",
                    start: SimTime::new(pending.negotiation_start),
                    end: SimTime::new(ctx.now().as_secs()),
                    detail: format!(
                        "{job} gfa-{candidate} {}",
                        if accept { "accepted" } else { "refused" }
                    ),
                });
            }
        }
        if accept {
            let service = pending.candidate_service;
            let cost = pending.candidate_cost;
            pending.messages += 1;
            let dispatched = pending.job.clone();
            let seq = self.send_protocol(
                candidate,
                MessageType::JobSubmission,
                self.index,
                candidate,
                |seq| FedMessage::JobDispatch {
                    job: dispatched.clone(),
                    service_time: service,
                    cost,
                    seq,
                },
                ctx,
            );
            {
                let shared = self.shared.borrow();
                if shared.trace_armed() {
                    shared.emit_flow(FlowRecord {
                        id: Self::flow_id(seq, self.index, candidate, job, false),
                        gfa: self.index,
                        track: SpanTrack::Negotiation,
                        time: ctx.now(),
                        start: true,
                    });
                }
            }
            self.awaiting_remote.insert(
                job,
                AwaitingRemote {
                    job: pending.job,
                    messages: pending.messages,
                    directory_messages: pending.directory_messages,
                    service_time: service,
                    expected_local_response: pending.expected_local_response,
                    expected_local_cost: pending.expected_local_cost,
                },
            );
        } else {
            self.try_candidates(pending, ctx);
        }
    }

    /// Handles the arrival of an actual job we previously accepted.
    fn on_job_dispatch(&mut self, job: Job, _service_time: f64, _cost: f64, seq: u64, now: SimTime) {
        assert!(
            self.executing.contains_key(&job.id),
            "job {} dispatched to {} without a prior reservation",
            job.id,
            self.name
        );
        let shared = self.shared.borrow();
        if shared.trace_armed() {
            // Consuming endpoint of the dispatch flow; the id composes the
            // same link + envelope sequence the producing side used.
            shared.emit_flow(FlowRecord {
                id: Self::flow_id(seq, job.id.origin, self.index, job.id, false),
                gfa: self.index,
                track: SpanTrack::Execution,
                time: now,
                start: false,
            });
        }
    }

    /// Handles the completion of a job running on the local LRMS.
    fn on_local_job_finished(&mut self, job: JobId, ctx: &mut Context<'_, FedMessage>) {
        let now = ctx.now().as_secs();
        let mut started = std::mem::take(&mut self.scratch);
        started.clear();
        self.lrms.on_finished_into(job, now, &mut started);
        self.handle_started(&started, ctx);
        self.scratch = started;
        let entry = self
            .executing
            .remove(&job)
            .unwrap_or_else(|| panic!("finished job {job} has no executing entry"));

        {
            let mut shared = self.shared.borrow_mut();
            shared.pay(entry.origin, self.index, entry.cost);
            if entry.origin != self.index {
                shared.remote_processed[self.index] += 1;
            }
            shared
                .metrics
                .observe(HistId::QueueDepth, self.lrms.queued_count() as f64);
            if shared.trace_armed() {
                shared.emit_span(SpanRecord {
                    gfa: self.index,
                    track: SpanTrack::Execution,
                    name: "execute",
                    start: SimTime::new(entry.start.unwrap_or(now)),
                    end: SimTime::new(now),
                    detail: format!("{job} origin gfa-{}", entry.origin),
                });
            }
        }

        if entry.origin == self.index {
            // Every locally submitted job stores its seed in `on_submit`
            // before it can finish, so this expect can never fire.
            // fedlint: allow(hot-path-unwrap)
            let seed = entry
                .local_seed
                .expect("locally originated jobs carry their record seed");
            let start = entry.start.unwrap_or(seed.job.submit);
            let record = JobRecord {
                id: job,
                origin: self.index,
                strategy: seed.job.qos.strategy,
                submit: seed.job.submit,
                processors: seed.job.processors,
                deadline: seed.job.qos.deadline,
                budget: seed.job.qos.budget,
                expected_local_response: seed.expected_local_response,
                expected_local_cost: seed.expected_local_cost,
                messages: seed.messages,
                directory_messages: seed.directory_messages,
                outcome: ExecutionOutcome::Completed {
                    executed_on: self.index,
                    start,
                    finish: now,
                    cost: entry.cost,
                },
            };
            self.shared.borrow_mut().push_job_record(record);
        } else {
            let executed_on = self.index;
            let cost = entry.cost;
            let seq = self.send_protocol(
                entry.origin,
                MessageType::JobCompletion,
                entry.origin,
                self.index,
                |seq| FedMessage::JobCompletion {
                    job,
                    executed_on,
                    finish: now,
                    cost,
                    seq,
                },
                ctx,
            );
            let shared = self.shared.borrow();
            if shared.trace_armed() {
                shared.emit_flow(FlowRecord {
                    id: Self::flow_id(seq, self.index, entry.origin, job, true),
                    gfa: self.index,
                    track: SpanTrack::Execution,
                    time: ctx.now(),
                    start: true,
                });
            }
        }
    }

    /// Handles the completion notification of one of our jobs that executed
    /// remotely.
    fn on_job_completion(
        &mut self,
        job: JobId,
        executed_on: usize,
        finish: f64,
        cost: f64,
        seq: u64,
        now: SimTime,
    ) {
        let Some(mut awaiting) = self.awaiting_remote.remove(&job) else {
            panic!("completion message for unknown job {job}");
        };
        awaiting.messages += 1;
        {
            let shared = self.shared.borrow();
            if shared.trace_armed() {
                shared.emit_flow(FlowRecord {
                    id: Self::flow_id(seq, executed_on, self.index, job, true),
                    gfa: self.index,
                    track: SpanTrack::Lifecycle,
                    time: now,
                    start: false,
                });
            }
        }
        let record = JobRecord {
            id: job,
            origin: self.index,
            strategy: awaiting.job.qos.strategy,
            submit: awaiting.job.submit,
            processors: awaiting.job.processors,
            deadline: awaiting.job.qos.deadline,
            budget: awaiting.job.qos.budget,
            expected_local_response: awaiting.expected_local_response,
            expected_local_cost: awaiting.expected_local_cost,
            messages: awaiting.messages,
            directory_messages: awaiting.directory_messages,
            outcome: ExecutionOutcome::Completed {
                executed_on,
                start: finish - awaiting.service_time,
                finish,
                cost,
            },
        };
        let mut shared = self.shared.borrow_mut();
        shared.conclude_job(job, awaiting.messages, awaiting.directory_messages);
        shared.push_job_record(record);
    }

    /// Accounts the publish-side message cost of a quote mutation into the
    /// ledger (messages × latency of simulated network time), mirroring how
    /// query-side directory traffic is charged.  Free mutations (the
    /// centrally-stored backends, or no-ops) record nothing.
    fn record_publish(shared: &mut SharedState, gfa: usize, messages: u64, latency: f64, charge: bool) {
        if charge && messages > 0 {
            shared.charge_publish(gfa, messages, messages as f64 * latency);
        }
    }

    /// A ranking probe faulted (see [`Gfa::probe_directory`]).  Graceful
    /// degradation: park the job and retry the *same* rank after an
    /// exponential-backoff delay — by then a stabilization round has
    /// usually evicted the crashed store and repaired its replicas — and
    /// once the retry budget is exhausted, treat the directory as
    /// unreachable and fall back to local-only scheduling.
    fn defer_after_fault(&mut self, mut pending: PendingJob, ctx: &mut Context<'_, FedMessage>) {
        self.shared
            .borrow_mut()
            .metrics
            .inc(self.index, Counter::LookupFaults);
        if self.repair == RepairMode::Reactive {
            // Reactive ring repair: evict the crashed store this lookup hit
            // right now (a targeted repair, charged as publish traffic) and
            // resume the loop at the same rank immediately instead of
            // waiting a backoff out.  Every successful repair evicts at
            // least one dead ring position, so the repair→retry recursion is
            // bounded by the number of crashed nodes; when there is nothing
            // left to evict the job falls through to the backoff path.
            let repaired = {
                let mut shared = self.shared.borrow_mut();
                let messages = shared.directory.repair_faulted();
                if messages > 0 {
                    shared.metrics.inc(self.index, Counter::ReactiveRepairs);
                    shared
                        .metrics
                        .add(self.index, Counter::ReactiveRepairMessages, messages);
                    Self::record_publish(
                        &mut shared,
                        self.index,
                        messages,
                        self.latency,
                        self.charge_publish,
                    );
                    true
                } else {
                    false
                }
            };
            if repaired {
                self.try_candidates(pending, ctx);
                return;
            }
        }
        if pending.retries < self.retry.max_retries {
            pending.retries += 1;
            let delay = self.retry.backoff_delay(pending.retries);
            {
                let mut shared = self.shared.borrow_mut();
                shared.metrics.inc(self.index, Counter::FaultRetries);
                shared
                    .metrics
                    .add_f(self.index, FSum::FaultWaitSeconds, delay);
            }
            let job = pending.job.id;
            ctx.timer_at(
                SimTime::new(ctx.now().as_secs() + delay),
                FedMessage::DirectoryRetry { job },
            );
            self.pending.insert(job, pending);
            return;
        }
        // Retry budget exhausted: schedule as if the federation were
        // unreachable (Experiment-1 behaviour), keeping the message
        // counters the job accumulated while the directory was still up.
        self.shared
            .borrow_mut()
            .metrics
            .inc(self.index, Counter::LocalFallbacks);
        let job = pending.job;
        let now = ctx.now().as_secs();
        let service = completion_time(&job, &self.spec, &self.spec);
        let fits = !self.departed && job.processors <= self.spec.processors;
        let estimate = if fits {
            self.lrms.estimate_completion(job.processors, service, now)
        } else {
            f64::INFINITY
        };
        if fits && estimate <= job.absolute_deadline() + 1e-9 {
            let cost = self.charging.charge(&job, &self.spec);
            self.accept_locally(
                job,
                service,
                cost,
                pending.messages,
                pending.directory_messages,
                pending.expected_local_response,
                pending.expected_local_cost,
                ctx,
            );
        } else {
            self.record_rejection(
                &job,
                pending.messages,
                pending.directory_messages,
                pending.expected_local_response,
                pending.expected_local_cost,
            );
        }
    }

    /// Resumes a job's DBC loop after its backoff delay elapsed.
    fn on_directory_retry(&mut self, job: JobId, ctx: &mut Context<'_, FedMessage>) {
        if let Some(pending) = self.pending.remove(&job) {
            self.try_candidates(pending, ctx);
        }
    }

    /// Handles this GFA's scripted departure: a graceful, *permanent* leave
    /// through the directory's `node_depart` primitive — the quote is
    /// withdrawn, stored attribute entries are handed off to their new
    /// owners (routed removes and moves, charged as publish traffic) — and
    /// no new work is admitted.
    fn on_depart(&mut self) {
        self.departed = true;
        self.retired = true;
        let mut shared = self.shared.borrow_mut();
        let messages = shared.directory.node_depart(self.index, true);
        Self::record_publish(&mut shared, self.index, messages, self.latency, self.charge_publish);
    }

    /// Handles a churn-drawn departure.  Graceful leaves behave like the
    /// scripted kind (withdraw, hand off, pay the publish traffic); crashes
    /// drop the node's stored entries cold and cost nothing — the overlay
    /// only finds out when lookups start faulting, and stabilization later
    /// evicts the dead node.
    fn on_churn_depart(&mut self, graceful: bool, _ctx: &mut Context<'_, FedMessage>) {
        if self.departed {
            return;
        }
        self.departed = true;
        let mut shared = self.shared.borrow_mut();
        if graceful {
            shared.metrics.inc(self.index, Counter::GracefulLeaves);
        } else {
            shared.metrics.inc(self.index, Counter::Crashes);
        }
        let messages = shared.directory.node_depart(self.index, graceful);
        Self::record_publish(&mut shared, self.index, messages, self.latency, self.charge_publish);
    }

    /// Handles a churn-drawn rejoin: the GFA re-enters the overlay (a
    /// routed join plus any entry reconciliation) and republishes its quote
    /// at the current access price.  Scripted departures are permanent, so
    /// a retired GFA ignores the event.
    fn on_churn_join(&mut self, _ctx: &mut Context<'_, FedMessage>) {
        if self.retired || !self.departed {
            return;
        }
        self.departed = false;
        let mut shared = self.shared.borrow_mut();
        shared.metrics.inc(self.index, Counter::Rejoins);
        let join = shared.directory.node_join(self.index);
        let publish = shared.directory.subscribe(Quote::from_spec(self.index, &self.spec));
        Self::record_publish(
            &mut shared,
            self.index,
            join + publish,
            self.latency,
            self.charge_publish,
        );
    }

    /// Drives one periodic stabilization round of the overlay: crashed
    /// nodes are evicted, displaced entries reconciled onto their new
    /// owners, and attribute-entry replicas repaired up to the configured
    /// factor.  The round's overlay messages are charged to this GFA's
    /// publish class (it is this round's round-robin driver).
    fn on_stabilize(&mut self, _ctx: &mut Context<'_, FedMessage>) {
        let mut shared = self.shared.borrow_mut();
        let messages = shared.directory.stabilize();
        shared.metrics.inc(self.index, Counter::StabilizationRounds);
        shared.metrics.add(self.index, Counter::StabilizationMessages, messages);
        Self::record_publish(&mut shared, self.index, messages, self.latency, self.charge_publish);
    }

    /// Handles a scripted re-pricing: republishes the access price through
    /// the directory's `update_price` primitive — under a distributed
    /// backend a routed *move* of the price entry, charged as publish
    /// traffic — and charges the new price for subsequently accepted jobs.
    fn on_reprice(&mut self, price: f64) {
        if self.departed {
            return;
        }
        self.spec.price = price;
        let mut shared = self.shared.borrow_mut();
        let messages = shared.directory.update_price(self.index, price);
        Self::record_publish(&mut shared, self.index, messages, self.latency, self.charge_publish);
    }
}

impl Entity<FedMessage> for Gfa {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Context<'_, FedMessage>) {
        let jobs = std::mem::take(&mut self.local_jobs);
        for job in jobs {
            ctx.timer_at(SimTime::new(job.submit), FedMessage::JobArrival(job));
        }
        if let Some(at) = self.schedule.departure {
            ctx.timer_at(SimTime::new(at), FedMessage::Depart);
        }
        let repricings = std::mem::take(&mut self.schedule.repricings);
        for (at, price) in repricings {
            ctx.timer_at(SimTime::new(at), FedMessage::Reprice { price });
        }
        let churn_departures = std::mem::take(&mut self.schedule.churn_departures);
        for (at, graceful) in churn_departures {
            ctx.timer_at(SimTime::new(at), FedMessage::ChurnDepart { graceful });
        }
        let churn_joins = std::mem::take(&mut self.schedule.churn_joins);
        for at in churn_joins {
            ctx.timer_at(SimTime::new(at), FedMessage::ChurnJoin);
        }
        let stabilizations = std::mem::take(&mut self.schedule.stabilizations);
        for at in stabilizations {
            ctx.timer_at(SimTime::new(at), FedMessage::Stabilize);
        }
    }

    fn on_event(&mut self, event: Event<FedMessage>, ctx: &mut Context<'_, FedMessage>) {
        // Duplicated deliveries are filtered here, before their payload can
        // take any semantic effect; the end-of-event invariants sweep still
        // runs so at-most-once-effect violations would be caught at the
        // exact event that caused them.
        if self.admit_envelope(&event) {
            match event.payload {
                FedMessage::JobArrival(job) => self.on_job_arrival(job, ctx),
                FedMessage::Negotiate {
                    job,
                    origin,
                    processors,
                    service_time,
                    cost,
                    absolute_deadline,
                    attempt,
                    seq: _,
                } => self.on_negotiate(
                    job,
                    origin,
                    processors,
                    service_time,
                    cost,
                    absolute_deadline,
                    attempt,
                    ctx,
                ),
                FedMessage::NegotiateReply {
                    job,
                    accept,
                    candidate,
                    attempt: _,
                    seq: _,
                } => self.on_negotiate_reply(job, accept, candidate, ctx),
                FedMessage::JobDispatch {
                    job,
                    service_time,
                    cost,
                    seq,
                } => self.on_job_dispatch(job, service_time, cost, seq, ctx.now()),
                FedMessage::JobCompletion {
                    job,
                    executed_on,
                    finish,
                    cost,
                    seq,
                } => self.on_job_completion(job, executed_on, finish, cost, seq, ctx.now()),
                FedMessage::LocalJobFinished { job } => self.on_local_job_finished(job, ctx),
                FedMessage::Depart => self.on_depart(),
                FedMessage::Reprice { price } => self.on_reprice(price),
                FedMessage::ChurnDepart { graceful } => self.on_churn_depart(graceful, ctx),
                FedMessage::ChurnJoin => self.on_churn_join(ctx),
                FedMessage::Stabilize => self.on_stabilize(ctx),
                FedMessage::DirectoryRetry { job } => self.on_directory_retry(job, ctx),
            }
        }
        // Under the `invariants` feature every delivered event ends with a
        // sweep of the federation's global accounting invariants (currency
        // conservation, traffic/epoch monotonicity, at-most-once job
        // effects, dedup-window monotonicity) over the shared state.
        #[cfg(feature = "invariants")]
        {
            let crate::federation::SharedState {
                ref directory,
                ref bank,
                ref ledger,
                ref audit,
                ref jobs,
                ref net,
                ref mut invariants,
                ..
            } = *self.shared.borrow_mut();
            let dedup_base = net.as_ref().map(crate::federation::NetState::dedup_base_sum);
            invariants.check(
                ctx.now().as_secs(),
                bank,
                ledger,
                directory,
                audit,
                jobs,
                dedup_base,
            );
        }
    }

    fn on_finish(&mut self, ctx: &mut Context<'_, FedMessage>) {
        let now = ctx.now().as_secs();
        let mut shared = self.shared.borrow_mut();
        shared.resource_snapshots[self.index] = Some(crate::federation::ResourceSnapshot {
            busy_processor_seconds: self.lrms.busy_processor_seconds(now),
            utilization: self.lrms.utilization(now),
        });
        let stats = self.quote_cache.stats();
        shared.metrics.add(self.index, Counter::CacheHits, stats.hits);
        shared.metrics.add(self.index, Counter::CacheMisses, stats.misses);
    }
}
