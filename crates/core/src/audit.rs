//! Hash-chained audit ledger: tamper-evident, O(1)-comparable run digests.
//!
//! Every job outcome, negotiation/directory/publish message charge and bank
//! mutation folds into per-GFA *hash chains* as the simulation executes, in
//! the spirit of append-only commitment ledgers: each record's digest mixes
//! the previous digest, so the final chain value commits to the full ordered
//! history of that GFA's activity.  Two runs are behaviourally identical iff
//! their [`RunDigest`]s are equal — which turns whole-run differentials
//! (backend conformance, schedule permutations, parallel-vs-sequential
//! sweeps) from 30+ CSV file comparisons into a single `u64` comparison.
//!
//! The mixer is the dependency-free SplitMix64 finalizer already used by the
//! deterministic sweep scheduler; it is *not* cryptographic, but it is
//! avalanche-complete, so adjacent mutations (swapping, duplicating or
//! dropping one charge) change the chain with overwhelming probability — the
//! property the differential suites rely on and the property tests pin.
//!
//! Two chain families are kept per GFA:
//!
//! * **outcome chains** — job records and Grid-Dollar bank transfers.  These
//!   are identical across directory backends (the conformance guarantee), so
//!   [`RunDigest::outcomes`] compares them in isolation.
//! * **traffic chains** — negotiation messages and directory/publish charge
//!   accounting, which legitimately differ per backend.  Together with the
//!   outcome chains they form [`RunDigest::full`].
//!
//! Each chain also maintains a *witness* — a mix of its digest and entry
//! count — recomputed on every fold.  Out-of-band mutation of a digest (the
//! tamper case, modelled by the feature-gated [`AuditLedger::corrupt_chain`]
//! double) leaves the witness stale, which the `invariants` sentry detects.

use grid_workload::JobId;

use crate::messages::MessageType;
use crate::metrics::{ExecutionOutcome, JobRecord};

/// SplitMix64 finalizer: a fast, avalanche-complete 64-bit mixer.
#[inline]
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain-separation seed of the outcome chain family.
const OUTCOME_DOMAIN: u64 = 0x0A0D_17C0_5EED_0001;
/// Domain-separation seed of the traffic chain family.
const TRAFFIC_DOMAIN: u64 = 0x0A0D_17C0_5EED_0002;

/// Record tags: every fold starts by mixing a distinct tag so records of
/// different kinds can never collide by carrying the same field values.
const TAG_OUTCOME: u64 = 1;
const TAG_PAYMENT: u64 = 2;
const TAG_MESSAGE: u64 = 3;
const TAG_DIRECTORY: u64 = 4;
const TAG_PUBLISH: u64 = 5;
const TAG_JOB_MESSAGES: u64 = 6;

/// One append-only hash chain with a consistency witness.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Chain {
    digest: u64,
    entries: u64,
    witness: u64,
}

impl Chain {
    fn new(seed: u64) -> Self {
        let digest = mix(seed);
        Chain {
            digest,
            entries: 0,
            witness: mix(digest),
        }
    }

    /// Folds one record into the chain: the previous digest, the record tag
    /// and each field are mixed *sequentially*, so the chain commits to the
    /// order of records, not just their multiset.
    fn fold(&mut self, tag: u64, fields: &[u64]) {
        let mut h = mix(self.digest ^ tag);
        for &f in fields {
            h = mix(h ^ f);
        }
        self.digest = h;
        self.entries += 1;
        self.witness = mix(self.digest ^ self.entries);
    }

    fn is_consistent(&self) -> bool {
        self.witness
            == if self.entries == 0 {
                mix(self.digest)
            } else {
                mix(self.digest ^ self.entries)
            }
    }
}

/// The run-level digest snapshot exposed on `FederationReport`.
///
/// Equality of two digests is the O(1) differential: `outcomes` covers job
/// records and bank transfers only (bit-identical across directory
/// backends), `full` additionally folds the per-backend message/directory/
/// publish traffic chains, and `entries` is the total number of audited
/// records (a cheap sanity count that makes "empty vs empty" collisions
/// readable in test failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDigest {
    /// Chained digest over job outcomes and bank mutations (backend-invariant).
    pub outcomes: u64,
    /// Chained digest over everything, traffic charges included.
    pub full: u64,
    /// Total number of records folded into the ledger.
    pub entries: u64,
}

impl std::fmt::Display for RunDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:016x} {:016x} {}",
            self.outcomes, self.full, self.entries
        )
    }
}

/// Hash-chained audit ledger: one outcome chain and one traffic chain per
/// GFA, folded incrementally as the federation executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditLedger {
    outcomes: Vec<Chain>,
    traffic: Vec<Chain>,
}

impl AuditLedger {
    /// Creates the ledger for a federation of `n` GFAs.
    #[must_use]
    pub fn new(n: usize) -> Self {
        AuditLedger {
            outcomes: (0..n)
                .map(|i| Chain::new(OUTCOME_DOMAIN ^ (i as u64)))
                .collect(),
            traffic: (0..n)
                .map(|i| Chain::new(TRAFFIC_DOMAIN ^ (i as u64)))
                .collect(),
        }
    }

    /// Number of GFAs the ledger audits.
    #[must_use]
    pub fn gfa_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Total number of records folded so far, across all chains.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.outcomes
            .iter()
            .chain(&self.traffic)
            .map(|c| c.entries)
            .sum()
    }

    /// Folds a finished job record (completed or rejected) into the outcome
    /// chain of its origin GFA.
    ///
    /// The record's per-job message counters are deliberately *not* folded
    /// here: they are backend-dependent traffic, committed to the traffic
    /// chain by [`AuditLedger::record_job_messages`] instead, which keeps
    /// the outcome chains bit-identical across directory backends.
    pub fn record_outcome(&mut self, rec: &JobRecord) {
        let mut fields = vec![
            rec.id.origin as u64,
            rec.id.seq as u64,
            rec.strategy as u64,
            rec.submit.to_bits(),
            u64::from(rec.processors),
            rec.deadline.to_bits(),
            rec.budget.to_bits(),
            rec.expected_local_response.to_bits(),
            rec.expected_local_cost.to_bits(),
        ];
        match rec.outcome {
            ExecutionOutcome::Completed {
                executed_on,
                start,
                finish,
                cost,
            } => fields.extend([
                1,
                executed_on as u64,
                start.to_bits(),
                finish.to_bits(),
                cost.to_bits(),
            ]),
            ExecutionOutcome::Rejected => fields.push(0),
        }
        self.outcomes[rec.origin].fold(TAG_OUTCOME, &fields);
    }

    /// Folds a Grid-Dollar transfer into the paying GFA's outcome chain.
    pub fn record_payment(&mut self, payer: usize, payee: usize, amount: f64) {
        self.outcomes[payer].fold(TAG_PAYMENT, &[payee as u64, amount.to_bits()]);
    }

    /// Folds one negotiation-protocol message charge into the originating
    /// GFA's traffic chain.
    pub fn record_message(&mut self, ty: MessageType, origin: usize, counterpart: usize) {
        self.traffic[origin].fold(TAG_MESSAGE, &[ty as u64, counterpart as u64]);
    }

    /// Folds a routed directory-query charge into a GFA's traffic chain.
    pub fn record_directory(&mut self, gfa: usize, messages: u64) {
        self.traffic[gfa].fold(TAG_DIRECTORY, &[messages]);
    }

    /// Folds a publish (subscribe/unsubscribe/reprice) charge into a GFA's
    /// traffic chain.
    pub fn record_publish(&mut self, gfa: usize, messages: u64) {
        self.traffic[gfa].fold(TAG_PUBLISH, &[messages]);
    }

    /// Folds a job's final per-job message totals into the traffic chain of
    /// the job's origin.
    pub fn record_job_messages(&mut self, job: JobId, messages: u32, directory_messages: u32) {
        self.traffic[job.origin].fold(
            TAG_JOB_MESSAGES,
            &[
                job.seq as u64,
                u64::from(messages),
                u64::from(directory_messages),
            ],
        );
    }

    /// Whether every chain's witness matches its digest and entry count —
    /// the tamper-evidence check the `invariants` sentry runs per event.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.outcomes
            .iter()
            .chain(&self.traffic)
            .all(Chain::is_consistent)
    }

    /// The run-level digest snapshot.
    #[must_use]
    pub fn digest(&self) -> RunDigest {
        let mut outcomes = mix(OUTCOME_DOMAIN ^ (self.outcomes.len() as u64));
        for c in &self.outcomes {
            outcomes = mix(outcomes ^ c.digest);
        }
        let mut full = outcomes;
        for c in &self.traffic {
            full = mix(full ^ c.digest);
        }
        RunDigest {
            outcomes,
            full,
            entries: self.entries(),
        }
    }

    /// Corrupting test double: flips bits in one traffic chain's digest
    /// *without* refreshing its witness, modelling out-of-band tampering
    /// with the audit trail.  The invariant sentry must detect this.
    #[cfg(feature = "invariants")]
    pub fn corrupt_chain(&mut self, gfa: usize) {
        self.traffic[gfa].digest ^= 0xDEAD_BEEF_DEAD_BEEF;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_workload::Strategy;

    fn ledger() -> AuditLedger {
        AuditLedger::new(4)
    }

    fn sample_record(origin: usize, seq: usize) -> JobRecord {
        JobRecord {
            id: JobId { origin, seq },
            origin,
            strategy: Strategy::Ofc,
            submit: 10.0,
            processors: 8,
            deadline: 500.0,
            budget: 40.0,
            expected_local_response: 120.0,
            expected_local_cost: 30.0,
            messages: 4,
            directory_messages: 6,
            outcome: ExecutionOutcome::Completed {
                executed_on: origin,
                start: 11.0,
                finish: 99.0,
                cost: 25.5,
            },
        }
    }

    #[test]
    fn empty_ledgers_of_equal_size_agree() {
        assert_eq!(ledger().digest(), ledger().digest());
        assert_ne!(ledger().digest(), AuditLedger::new(5).digest());
        assert_eq!(ledger().digest().entries, 0);
        assert!(ledger().is_consistent());
    }

    #[test]
    fn identical_histories_produce_identical_digests() {
        let mut a = ledger();
        let mut b = ledger();
        for l in [&mut a, &mut b] {
            l.record_message(MessageType::Negotiate, 0, 2);
            l.record_payment(1, 2, 12.5);
            l.record_outcome(&sample_record(0, 0));
            l.record_directory(3, 7);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.digest().entries, 4);
        assert!(a.is_consistent());
    }

    #[test]
    fn chains_are_order_sensitive() {
        let mut a = ledger();
        a.record_message(MessageType::Negotiate, 0, 1);
        a.record_message(MessageType::Reply, 0, 1);
        let mut b = ledger();
        b.record_message(MessageType::Reply, 0, 1);
        b.record_message(MessageType::Negotiate, 0, 1);
        assert_ne!(a.digest().full, b.digest().full);
    }

    #[test]
    fn outcomes_digest_ignores_traffic_but_full_does_not() {
        let mut a = ledger();
        let mut b = ledger();
        a.record_outcome(&sample_record(1, 0));
        b.record_outcome(&sample_record(1, 0));
        // Different directory traffic, same outcomes.
        a.record_directory(1, 3);
        b.record_directory(1, 9);
        b.record_publish(2, 4);
        let (da, db) = (a.digest(), b.digest());
        assert_eq!(da.outcomes, db.outcomes);
        assert_ne!(da.full, db.full);
    }

    #[test]
    fn payments_and_outcomes_land_in_the_outcomes_digest() {
        let mut a = ledger();
        let mut b = ledger();
        a.record_payment(0, 1, 5.0);
        b.record_payment(0, 1, 5.0 + 1e-12);
        assert_ne!(a.digest().outcomes, b.digest().outcomes);
        let mut c = ledger();
        let mut rejected = sample_record(2, 7);
        rejected.outcome = ExecutionOutcome::Rejected;
        c.record_outcome(&rejected);
        assert_ne!(c.digest().outcomes, ledger().digest().outcomes);
    }

    #[test]
    fn record_kinds_are_domain_separated() {
        // Same numeric payload through different record kinds must land on
        // different digests (the tag mixing at work).
        let mut a = ledger();
        a.record_directory(1, 7);
        let mut b = ledger();
        b.record_publish(1, 7);
        assert_ne!(a.digest().full, b.digest().full);
    }

    #[test]
    fn display_is_stable_hex() {
        let d = ledger().digest();
        let s = d.to_string();
        let parts: Vec<&str> = s.split(' ').collect();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 16);
        assert_eq!(parts[1].len(), 16);
        assert_eq!(parts[2], "0");
    }

    #[cfg(feature = "invariants")]
    #[test]
    fn corruption_breaks_consistency() {
        let mut l = ledger();
        l.record_message(MessageType::Negotiate, 2, 0);
        assert!(l.is_consistent());
        l.corrupt_chain(2);
        assert!(!l.is_consistent());
    }
}
