//! Runtime invariant checking (the `invariants` feature).
//!
//! When the feature is on, every GFA runs an [`InvariantSentry`] pass over
//! the shared federation state after each delivered event.  The sentry is a
//! pure observer: it holds the high-water marks of the monotone quantities
//! and asserts that the federation's global accounting identities still
//! hold.  Ten invariants are checked:
//!
//! 1. **Grid-Dollar conservation** — every payment debits a user account
//!    and credits an owner account, so total earnings must equal total
//!    spending at every instant ([`GridBank::is_balanced`]).
//! 2. **Payment monotonicity** — completed-job payments are never
//!    reversed, so the bank's total volume may only grow.
//! 3. **Traffic monotonicity** — message counters (negotiation, directory,
//!    publish) only accumulate.
//! 4. **Epoch monotonicity** — the directory epoch is bumped by mutations
//!    and never rewinds, which is what cursor/cache revalidation relies on.
//! 5. **Audit-chain consistency** — every audit chain's witness matches its
//!    digest and entry count ([`AuditLedger::is_consistent`]), and the
//!    number of audited records only grows; out-of-band tampering with a
//!    chain digest trips the sentry on the next event.
//! 6. **Membership-epoch monotonicity** — churn only moves the overlay
//!    membership epoch forward; a rewind would let stale cursors validate
//!    against a ring that no longer exists.
//! 7. **Replication bound** — the MAAN overlay never holds more than the
//!    configured `k` live replicas of an entry; repair that over-replicates
//!    would inflate publish traffic unbounded under churn.
//! 8. **Liveness of service** — no quote is served from a node that has
//!    departed the overlay; detours and repairs must land on live owners.
//! 9. **At-most-once job effects** — no job is *concluded* twice (its
//!    per-job message totals finalised) and no job record is emitted twice.
//!    This is what the unreliable transport's receiver-side dedup windows
//!    guarantee: a duplicated completion delivery that slipped past them
//!    would double-conclude its job (and double-charge the origin) and trip
//!    this check at the exact event that caused it.
//! 10. **Dedup-window monotonicity** — the receiver dedup windows of the
//!     network fault layer only slide forward (their base-sequence sum never
//!     decreases); a rewound window would re-admit envelopes it already
//!     accepted, voiding invariant 9's premise.
//!
//! Event-*time* monotonicity is the engine's own invariant and is enforced
//! inside `grid-des` (promoted to a hard assert under the same feature).
//! Companion corrupting test doubles — [`GridBank::corrupt_leak`],
//! `AnyDirectory::corrupt_epoch_rewind`, [`AuditLedger::corrupt_chain`],
//! `AnyDirectory::corrupt_membership_rewind`,
//! `AnyDirectory::corrupt_overreplicate`,
//! `AnyDirectory::corrupt_serve_departed`,
//! `SharedState::corrupt_replay_message`,
//! `NetState::corrupt_dedup_rewind`, the event-time corruptor in
//! `grid-des` — exist so the test suite can prove each check actually
//! fires.

use std::collections::BTreeSet;

use grid_directory::{AnyDirectory, FederationDirectory};
use grid_workload::JobId;

use crate::audit::AuditLedger;
use crate::economy::GridBank;
use crate::messages::MessageLedger;
use crate::metrics::JobRecord;

/// Per-run observer asserting the federation's global accounting
/// invariants after every delivered event (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct InvariantSentry {
    /// Highest simulation time observed so far.
    last_time: f64,
    /// Bank volume at the previous check.
    last_volume: f64,
    /// Ledger traffic (negotiation + directory + publish) at the previous
    /// check.
    last_traffic: u64,
    /// Directory epoch at the previous check.
    last_epoch: u64,
    /// Overlay membership epoch at the previous check.
    last_membership_epoch: u64,
    /// Audited record count at the previous check.
    last_audit_entries: u64,
    /// Dedup-window base sum of the network fault layer at the previous
    /// check (0 while the reliable transport is in use).
    last_dedup_base: u64,
    /// Jobs already seen concluded in the ledger's per-job totals; the scan
    /// is incremental (the list is append-only), so each check is O(new).
    seen_concluded: BTreeSet<JobId>,
    /// Per-job ledger entries scanned so far.
    scanned_concluded: usize,
    /// Job ids already seen in the emitted record stream.
    seen_records: BTreeSet<JobId>,
    /// Job records scanned so far.
    scanned_records: usize,
    /// Checks executed, for test observability.
    checks: u64,
}

impl InvariantSentry {
    /// Creates a sentry with empty high-water marks.
    #[must_use]
    pub fn new() -> Self {
        InvariantSentry::default()
    }

    /// Number of checks executed so far.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Asserts every invariant against the shared state as of `now`,
    /// updating the high-water marks.  `dedup_base` is the network fault
    /// layer's dedup-window base sum, or `None` on the reliable transport.
    ///
    /// # Panics
    /// Panics when an invariant is violated — that is the whole point.
    #[allow(clippy::too_many_arguments)]
    pub fn check(
        &mut self,
        now: f64,
        bank: &GridBank,
        ledger: &MessageLedger,
        directory: &AnyDirectory,
        audit: &AuditLedger,
        jobs: &[JobRecord],
        dedup_base: Option<u64>,
    ) {
        assert!(
            now >= self.last_time,
            "time ran backwards: checked at {now} after {}",
            self.last_time
        );
        self.last_time = now;

        assert!(
            bank.is_balanced(),
            "Grid Dollars leaked at t={now}: owners earned {} but users spent {}",
            bank.total_volume(),
            bank.all_spending().iter().sum::<f64>(),
        );
        let volume = bank.total_volume();
        assert!(
            volume >= self.last_volume,
            "bank volume shrank at t={now}: {volume} after {}",
            self.last_volume
        );
        self.last_volume = volume;

        let traffic = ledger.total_messages() + ledger.directory_messages() + ledger.publish_messages();
        assert!(
            traffic >= self.last_traffic,
            "message counters ran backwards at t={now}: {traffic} after {}",
            self.last_traffic
        );
        self.last_traffic = traffic;

        let epoch = directory.epoch();
        assert!(
            epoch >= self.last_epoch,
            "directory epoch rewound at t={now}: {epoch} after {}",
            self.last_epoch
        );
        self.last_epoch = epoch;

        let membership = directory.membership_epoch();
        assert!(
            membership >= self.last_membership_epoch,
            "membership epoch rewound at t={now}: {membership} after {}",
            self.last_membership_epoch
        );
        self.last_membership_epoch = membership;

        assert!(
            directory.replication_ok(),
            "replication factor exceeded at t={now}: an entry holds more \
             live replicas than the configured k"
        );
        assert!(
            directory.serves_only_live(),
            "departed node still serves at t={now}: a quote is stored on a \
             node that has left the overlay"
        );

        assert!(
            audit.is_consistent(),
            "audit chain corrupted at t={now}: a chain's witness no longer \
             matches its digest and entry count"
        );
        let audit_entries = audit.entries();
        assert!(
            audit_entries >= self.last_audit_entries,
            "audit records vanished at t={now}: {audit_entries} after {}",
            self.last_audit_entries
        );
        self.last_audit_entries = audit_entries;

        for &(job, _) in &ledger.per_job()[self.scanned_concluded..] {
            assert!(
                self.seen_concluded.insert(job),
                "job {job} concluded twice at t={now}: a duplicated delivery \
                 slipped past the dedup window and double-finalised its \
                 per-job message totals"
            );
        }
        self.scanned_concluded = ledger.per_job().len();
        for record in &jobs[self.scanned_records..] {
            assert!(
                self.seen_records.insert(record.id),
                "job {} recorded twice at t={now}: a duplicated delivery \
                 slipped past the dedup window and re-emitted its outcome \
                 record",
                record.id
            );
        }
        self.scanned_records = jobs.len();

        if let Some(base) = dedup_base {
            assert!(
                base >= self.last_dedup_base,
                "dedup windows rewound at t={now}: base sum {base} after {}",
                self.last_dedup_base
            );
            self.last_dedup_base = base;
        }

        self.checks += 1;
    }
}
