//! The commodity-market economy of the Grid-Federation.
//!
//! Three pieces live here:
//!
//! * the pricing function of Eq. 5–6 (`c_i = (c/µ_max)·µ_i`), which
//!   reproduces the Quote column of Table 1,
//! * [`GridBank`], the credit-management service the paper delegates to
//!   GridBank: user accounts are debited and owner accounts credited when a
//!   job completes, and currency is conserved,
//! * helpers for applying prices to whole resource sets.

use grid_cluster::ResourceSpec;
use grid_workload::Job;

/// The access price of the fastest resource used by the paper's pricing
/// function (NASA iPSC, 930 MIPS, priced at 5.3 Grid Dollars).
pub const PAPER_ACCESS_PRICE: f64 = 5.3;

/// How a resource owner converts a job into a charge.
///
/// The paper states both conventions ("the cluster owner charges c_i per unit
/// time or per unit of million instructions executed, e.g. per 1000 MI") and
/// writes Eq. 4 in the per-unit-time form, but the magnitudes of its
/// incentive and budget figures (total incentive ≈ 2×10⁹ Grid Dollars,
/// average budget ≈ 9×10⁵ per job over the 2-day trace) only come out with
/// the per-1000-MI convention.  Both are implemented; the economy experiments
/// default to [`ChargingPolicy::PerKiloMi`] and the `ablation_charging` bench
/// compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChargingPolicy {
    /// `B(J, R_m) = c_m · l / (µ_m · p)` — Grid Dollars per CPU-second
    /// (the literal Eq. 4).
    PerCpuSecond,
    /// `B(J, R_m) = c_m · l / 1000` — Grid Dollars per 1000 MI of executed
    /// work (matches the paper's reported magnitudes).
    #[default]
    PerKiloMi,
}

impl ChargingPolicy {
    /// The charge for executing `job` on `target` under this policy.
    #[must_use]
    pub fn charge(self, job: &Job, target: &ResourceSpec) -> f64 {
        match self {
            ChargingPolicy::PerCpuSecond => grid_cluster::job_cost(job, target),
            ChargingPolicy::PerKiloMi => grid_cluster::cost_per_kilo_mi(job, target),
        }
    }

    /// Fabricates the paper's QoS constraints (Eq. 7–8) under this charging
    /// policy: budget = 2 × charge on the origin, deadline = 2 × execution
    /// time on the origin.
    pub fn fabricate_qos_all(self, jobs: &mut [Job], origin: &ResourceSpec) {
        for job in jobs.iter_mut() {
            job.qos.budget = 2.0 * self.charge(job, origin);
            job.qos.deadline = 2.0 * grid_cluster::completion_time(job, origin, origin);
        }
    }
}

/// Computes a resource's quote with the paper's commodity-market pricing
/// function (Eq. 5–6): `c_i = (access_price / max_mips) · mips`.
///
/// # Panics
/// Panics unless all arguments are positive.
#[must_use]
pub fn quote_price(access_price: f64, max_mips: f64, mips: f64) -> f64 {
    assert!(access_price > 0.0, "access price must be positive");
    assert!(max_mips > 0.0, "max mips must be positive");
    assert!(mips > 0.0, "mips must be positive");
    access_price / max_mips * mips
}

/// Recomputes every resource's price with Eq. 5–6, using the fastest
/// resource in the slice as the reference.  Useful when constructing custom
/// federations whose prices should follow the paper's policy.
pub fn apply_commodity_pricing(resources: &mut [ResourceSpec], access_price: f64) {
    let max_mips = resources
        .iter()
        .map(|r| r.mips)
        .fold(f64::MIN, f64::max);
    assert!(max_mips > 0.0, "cannot price an empty resource set");
    for r in resources.iter_mut() {
        r.price = quote_price(access_price, max_mips, r.mips);
    }
}

/// A single transfer recorded by the [`GridBank`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Resource index whose local user paid.
    pub payer_origin: usize,
    /// Resource index whose owner was paid.
    pub payee_owner: usize,
    /// Amount in Grid Dollars.
    pub amount: f64,
}

/// The federation's credit-management service.
///
/// The paper assumes a GridBank service through which participants exchange
/// Grid Dollars.  Budgets are unbounded over the simulation (Eq. 7 gives each
/// job its own budget), so the bank only needs to track cumulative earnings
/// and spending — which is exactly what the incentive figures (Fig. 3a) plot.
#[derive(Debug, Clone, Default)]
pub struct GridBank {
    owner_earnings: Vec<f64>,
    user_spending: Vec<f64>,
    transfers: u64,
}

impl GridBank {
    /// Creates a bank for a federation of `n` resources.
    #[must_use]
    pub fn new(n: usize) -> Self {
        GridBank {
            owner_earnings: vec![0.0; n],
            user_spending: vec![0.0; n],
            transfers: 0,
        }
    }

    /// Records the payment for a completed job: the users of `payer_origin`
    /// pay `amount` to the owner of `payee_owner`.
    ///
    /// # Panics
    /// Panics if the amount is negative or either index is out of range.
    pub fn pay(&mut self, payer_origin: usize, payee_owner: usize, amount: f64) {
        assert!(amount >= 0.0, "payments cannot be negative, got {amount}");
        assert!(
            payer_origin < self.user_spending.len() && payee_owner < self.owner_earnings.len(),
            "unknown account (payer {payer_origin}, payee {payee_owner})"
        );
        self.user_spending[payer_origin] += amount;
        self.owner_earnings[payee_owner] += amount;
        self.transfers += 1;
    }

    /// Total incentive earned by the owner of resource `owner` so far.
    #[must_use]
    pub fn earnings(&self, owner: usize) -> f64 {
        self.owner_earnings[owner]
    }

    /// Total spending of the users local to resource `origin` so far.
    #[must_use]
    pub fn spending(&self, origin: usize) -> f64 {
        self.user_spending[origin]
    }

    /// Earnings of every owner (indexed by resource).
    #[must_use]
    pub fn all_earnings(&self) -> &[f64] {
        &self.owner_earnings
    }

    /// Spending of every origin's users (indexed by resource).
    #[must_use]
    pub fn all_spending(&self) -> &[f64] {
        &self.user_spending
    }

    /// Total Grid Dollars that changed hands.
    #[must_use]
    pub fn total_volume(&self) -> f64 {
        self.owner_earnings.iter().sum()
    }

    /// Number of recorded transfers.
    #[must_use]
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Corrupting test double: credits `amount` Grid Dollars to `owner`
    /// without debiting anyone, leaking currency into the federation.  Only
    /// exists so the invariant tests can prove the conservation check
    /// fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_leak(&mut self, owner: usize, amount: f64) {
        self.owner_earnings[owner] += amount;
    }

    /// Currency conservation check: total earnings must equal total spending
    /// (up to floating-point error).  Used by tests and debug assertions.
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        let earned: f64 = self.owner_earnings.iter().sum();
        let spent: f64 = self.user_spending.iter().sum();
        (earned - spent).abs() <= 1e-6 * earned.abs().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_cluster::paper_resources;

    #[test]
    fn pricing_reproduces_table1_quotes() {
        let resources = paper_resources();
        let max_mips = 930.0;
        for r in &resources {
            let predicted = quote_price(PAPER_ACCESS_PRICE, max_mips, r.spec.mips);
            assert!(
                (predicted - r.spec.price).abs() < 0.02,
                "{}: {} vs {}",
                r.spec.name,
                predicted,
                r.spec.price
            );
        }
    }

    #[test]
    fn apply_pricing_uses_fastest_as_reference() {
        let mut specs: Vec<ResourceSpec> = paper_resources().into_iter().map(|r| r.spec).collect();
        // Perturb prices, then restore them with the pricing policy.
        for s in specs.iter_mut() {
            s.price = 1.0;
        }
        apply_commodity_pricing(&mut specs, PAPER_ACCESS_PRICE);
        assert!((specs[4].price - 5.3).abs() < 1e-9); // NASA iPSC is the reference
        assert!((specs[0].price - 4.84).abs() < 0.01); // CTC SP2
        assert!((specs[3].price - 3.59).abs() < 0.01); // LANL Origin
    }

    #[test]
    fn bank_conserves_currency() {
        let mut bank = GridBank::new(4);
        bank.pay(0, 1, 100.0);
        bank.pay(2, 1, 50.0);
        bank.pay(1, 3, 25.0);
        assert!(bank.is_balanced());
        assert_eq!(bank.earnings(1), 150.0);
        assert_eq!(bank.spending(0), 100.0);
        assert_eq!(bank.spending(1), 25.0);
        assert_eq!(bank.total_volume(), 175.0);
        assert_eq!(bank.transfer_count(), 3);
        assert_eq!(bank.all_earnings().len(), 4);
        assert_eq!(bank.all_spending().iter().sum::<f64>(), 175.0);
    }

    #[test]
    fn self_payment_is_legal() {
        // A job executed on its own originating resource still pays the owner
        // (the owner happens to host the user, but the accounts are separate).
        let mut bank = GridBank::new(2);
        bank.pay(0, 0, 10.0);
        assert_eq!(bank.earnings(0), 10.0);
        assert_eq!(bank.spending(0), 10.0);
        assert!(bank.is_balanced());
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_payment_panics() {
        let mut bank = GridBank::new(2);
        bank.pay(0, 1, -5.0);
    }

    #[test]
    #[should_panic(expected = "unknown account")]
    fn unknown_account_panics() {
        let mut bank = GridBank::new(2);
        bank.pay(0, 7, 5.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_pricing_inputs_panic() {
        let _ = quote_price(5.3, 0.0, 100.0);
    }

    #[test]
    fn charging_policies_differ_in_the_expected_way() {
        use grid_workload::{JobId, UserId};
        let cheap_slow = ResourceSpec::new("LANL Origin", 2048, 630.0, 1.6, 3.59);
        let fast_pricey = ResourceSpec::new("NASA iPSC", 128, 930.0, 4.0, 5.3);
        let job = grid_workload::Job::from_runtime(
            JobId { origin: 0, seq: 0 },
            UserId { origin: 0, local: 0 },
            0.0,
            16,
            1_000.0,
            630.0,
            0.10,
        );
        // Per CPU-second: commodity pricing makes the charge nearly identical
        // everywhere (c_m / µ_m is constant up to the Table 1 rounding).
        let a = ChargingPolicy::PerCpuSecond.charge(&job, &cheap_slow);
        let b = ChargingPolicy::PerCpuSecond.charge(&job, &fast_pricey);
        assert!((a - b).abs() / a < 0.01, "{a} vs {b}");
        // Per 1000 MI: the faster resource is genuinely more expensive, which
        // is what gives the paper its OFC-vs-OFT budget separation.
        let a = ChargingPolicy::PerKiloMi.charge(&job, &cheap_slow);
        let b = ChargingPolicy::PerKiloMi.charge(&job, &fast_pricey);
        assert!(b > a * 1.3, "{b} should clearly exceed {a}");
        assert_eq!(ChargingPolicy::default(), ChargingPolicy::PerKiloMi);
    }

    #[test]
    fn qos_fabrication_follows_the_charging_policy() {
        use grid_workload::{JobId, UserId};
        let origin = ResourceSpec::new("CTC SP2", 512, 850.0, 2.0, 4.84);
        let mut jobs = vec![grid_workload::Job::from_runtime(
            JobId { origin: 0, seq: 0 },
            UserId { origin: 0, local: 0 },
            0.0,
            8,
            900.0,
            850.0,
            0.10,
        )];
        ChargingPolicy::PerKiloMi.fabricate_qos_all(&mut jobs, &origin);
        let expected_budget = 2.0 * 4.84 * jobs[0].length_mi / 1_000.0;
        assert!((jobs[0].qos.budget - expected_budget).abs() < 1e-6);
        assert!((jobs[0].qos.deadline - 2.0 * 900.0).abs() < 1e-6);
        ChargingPolicy::PerCpuSecond.fabricate_qos_all(&mut jobs, &origin);
        let expected_budget = 2.0 * 4.84 * jobs[0].compute_time(850.0);
        assert!((jobs[0].qos.budget - expected_budget).abs() < 1e-6);
    }
}
