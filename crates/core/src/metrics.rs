//! Model-level metrics: per-job records, per-resource statistics and the
//! federation-wide report every experiment consumes.
//!
//! The quantities mirror the paper's tables and figures directly:
//! acceptance/rejection rates and utilization (Tables 2–3, Fig. 2, 4, 6),
//! local/migrated/remote job counts (Table 3, Fig. 2b, 5), owner incentive
//! (Fig. 3), user response time and budget spent with and without rejected
//! jobs (Fig. 7–8), and message counts (Fig. 9–11).

use grid_directory::{CacheStats, DirectoryBackend};
use grid_obs::{MetricsRegistry, PercentileSummary};
use grid_workload::{JobId, Strategy};

use crate::audit::RunDigest;
use crate::economy::GridBank;
use crate::messages::MessageLedger;

/// What finally happened to a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionOutcome {
    /// The job ran to completion somewhere in the federation.
    Completed {
        /// Resource that executed the job.
        executed_on: usize,
        /// Time execution started.
        start: f64,
        /// Time execution finished.
        finish: f64,
        /// Grid Dollars charged (`B(J, R_m)`).
        cost: f64,
    },
    /// No resource could guarantee the deadline; the job was dropped.
    Rejected,
}

/// The full per-job record collected by the origin GFA.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job identity.
    pub id: JobId,
    /// Originating resource (`k`).
    pub origin: usize,
    /// The submitting user's strategy (OFC or OFT).
    pub strategy: Strategy,
    /// Submission time.
    pub submit: f64,
    /// Processors requested.
    pub processors: u32,
    /// Relative deadline `d` (seconds).
    pub deadline: f64,
    /// Budget `b` (Grid Dollars).
    pub budget: f64,
    /// Execution time the job would have had on its originating resource,
    /// `D(J, R_k)` — used for Fig. 8's "including rejected jobs" series.
    pub expected_local_response: f64,
    /// Cost the job would have had on its originating resource, `B(J, R_k)`.
    pub expected_local_cost: f64,
    /// Accountable negotiation messages exchanged to schedule this job.
    pub messages: u32,
    /// Directory messages spent on this job's ranking queries, following
    /// the DHT range-query model `O(log n + k)`: a routed rank-1 lookup
    /// (modelled `⌈log₂ n⌉` under the ideal backend, measured overlay hops
    /// under Chord) plus one cursor-advance message per further rank probed.
    /// Accounted separately from `messages` so Fig. 10/11 remain comparable
    /// across directory backends.
    pub directory_messages: u32,
    /// Final outcome.
    pub outcome: ExecutionOutcome,
}

impl JobRecord {
    /// Response time (completion − submission), or `None` if rejected.
    #[must_use]
    pub fn response_time(&self) -> Option<f64> {
        match self.outcome {
            ExecutionOutcome::Completed { finish, .. } => Some(finish - self.submit),
            ExecutionOutcome::Rejected => None,
        }
    }

    /// Cost actually paid, or `None` if rejected.
    #[must_use]
    pub fn cost_paid(&self) -> Option<f64> {
        match self.outcome {
            ExecutionOutcome::Completed { cost, .. } => Some(cost),
            ExecutionOutcome::Rejected => None,
        }
    }

    /// Whether the job executed on a resource other than its origin.
    #[must_use]
    pub fn was_migrated(&self) -> bool {
        matches!(self.outcome, ExecutionOutcome::Completed { executed_on, .. } if executed_on != self.origin)
    }

    /// Whether the job was accepted (executed anywhere).
    #[must_use]
    pub fn was_accepted(&self) -> bool {
        matches!(self.outcome, ExecutionOutcome::Completed { .. })
    }

    /// The paper's QoS-satisfaction predicate: completed within both budget
    /// and deadline.
    #[must_use]
    pub fn qos_satisfied(&self) -> bool {
        match self.outcome {
            ExecutionOutcome::Completed { finish, cost, .. } => {
                finish <= self.submit + self.deadline + 1e-6 && cost <= self.budget + 1e-6
            }
            ExecutionOutcome::Rejected => false,
        }
    }
}

/// Per-resource statistics, as reported in Tables 2 and 3.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceMetrics {
    /// Resource name.
    pub name: String,
    /// Processors of the resource.
    pub processors: u32,
    /// Average utilization over the simulation, in `[0, 1]`.
    pub utilization: f64,
    /// Busy processor-seconds accumulated.
    pub busy_processor_seconds: f64,
    /// Jobs submitted by this resource's local users.
    pub total_local_jobs: usize,
    /// … of which accepted anywhere in the federation.
    pub accepted: usize,
    /// … of which rejected.
    pub rejected: usize,
    /// Local jobs executed on this resource itself.
    pub processed_locally: usize,
    /// Local jobs executed on some other resource.
    pub migrated: usize,
    /// Jobs from other origins executed on this resource.
    pub remote_jobs_processed: usize,
    /// Total incentive (Grid Dollars) earned by this resource's owner.
    pub incentive: f64,
}

impl ResourceMetrics {
    /// Acceptance rate of the local workload, in percent.
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        if self.total_local_jobs == 0 {
            100.0
        } else {
            100.0 * self.accepted as f64 / self.total_local_jobs as f64
        }
    }

    /// Rejection rate of the local workload, in percent.
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        100.0 - self.acceptance_rate()
    }

    /// Utilization in percent, as printed in the paper's tables.
    #[must_use]
    pub fn utilization_percent(&self) -> f64 {
        100.0 * self.utilization
    }
}

/// Aggregate churn and self-healing telemetry of one run.
///
/// All-zero when the run had no churn configured (the static-ring path) —
/// the counters live outside the audit chains, so enabling a zero-rate
/// churn config leaves the run's [`RunDigest`] bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChurnSummary {
    /// Graceful departures delivered by the seeded failure process (the
    /// node handed its stored directory entries off before leaving).
    pub graceful_leaves: u64,
    /// Ungraceful crashes delivered (entries dropped cold; the node squats
    /// in the overlay until a stabilization round evicts it).
    pub crashes: u64,
    /// Churned-out nodes that came back, rejoined the overlay and
    /// republished their quote.
    pub rejoins: u64,
    /// Periodic stabilization rounds executed (including free ones on an
    /// already-stable overlay).
    pub stabilization_rounds: u64,
    /// Overlay messages those rounds cost: crashed-node eviction, entry
    /// reconciliation and replica repair, charged into the publish class.
    pub stabilization_messages: u64,
    /// Ranking lookups that faulted: the entry's store had crashed and no
    /// live replica could answer before stabilization repaired the overlay.
    pub lookup_faults: u64,
    /// Backoff retries scheduled after faulted lookups.
    pub retries: u64,
    /// Jobs that exhausted their retry budget and degraded to local-only
    /// scheduling.
    pub local_fallbacks: u64,
    /// Reactive lookup-time repairs executed (only under
    /// [`RepairMode::Reactive`](crate::federation::RepairMode::Reactive)):
    /// a faulted lookup triggered an immediate targeted eviction of the
    /// crashed store instead of waiting for the periodic round.
    pub reactive_repairs: u64,
    /// Overlay messages those reactive repairs cost, charged into the
    /// publish class like stabilization traffic.
    pub reactive_repair_messages: u64,
    /// Total simulated seconds jobs spent parked in post-fault backoff
    /// before their next directory attempt — the latency price of waiting
    /// for the periodic round, and the quantity reactive repair trades
    /// messages against.
    pub fault_wait_seconds: f64,
}

impl ChurnSummary {
    /// Total churn events (departures plus rejoins) the run delivered.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.graceful_leaves + self.crashes + self.rejoins
    }

    /// Fraction of ranking lookups that resolved, given the directory's
    /// served-query count: `served / (served + faults)`, or `1.0` when the
    /// run never touched the directory.
    #[must_use]
    pub fn lookup_success_rate(&self, queries_served: u64) -> f64 {
        let total = queries_served + self.lookup_faults;
        if total == 0 {
            1.0
        } else {
            queries_served as f64 / total as f64
        }
    }
}

/// Aggregate unreliable-network telemetry of one run.
///
/// All-zero when the run had no network fault layer (the reliable-transport
/// path) — like [`ChurnSummary`], these counters live outside the audit
/// chains, so an inactive fault config leaves the run's [`RunDigest`]
/// bit-identical.  The retransmit and duplicate *charges* do enter the
/// traffic chains (they are real ledger messages); only `digest.outcomes`
/// is guaranteed invariant under faults.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetworkSummary {
    /// Protocol messages sent with a sequence-numbered envelope (the
    /// at-most-once-delivery surface: negotiate, reply, dispatch,
    /// completion).
    pub enveloped: u64,
    /// Retransmissions the fault layer charged for dropped protocol
    /// messages (each one a full extra message in the sender's ledger
    /// class).
    pub retransmissions: u64,
    /// Protocol messages the fault layer duplicated; each duplicate is
    /// delivered as a real second event and must be rejected by the
    /// receiver's dedup window.
    pub duplicates: u64,
    /// Deliveries rejected by receiver-side dedup windows (every duplicate
    /// that actually arrived lands here — the at-most-once-effect proof).
    pub dedup_drops: u64,
    /// Extra routed directory-query messages charged for per-hop drops on
    /// the lookup path.
    pub directory_retransmissions: u64,
    /// Extra routed publish messages charged for per-hop drops on the
    /// publish path.
    pub publish_retransmissions: u64,
    /// Total latency jitter drawn across enveloped sends (statistical
    /// telemetry; semantic deliveries stay on the nominal timeline).
    pub jitter_seconds: f64,
    /// Total retransmission backoff accumulated across enveloped sends
    /// (timeout × 2^attempt, capped), i.e. the latency the protocol would
    /// have waited out on a real lossy link.
    pub backoff_seconds: f64,
}

impl NetworkSummary {
    /// Whether the fault layer touched anything this run.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.enveloped == 0
            && self.retransmissions == 0
            && self.duplicates == 0
            && self.dedup_drops == 0
            && self.directory_retransmissions == 0
            && self.publish_retransmissions == 0
    }

    /// Total extra messages the fault layer charged on top of the lossless
    /// traffic (protocol retransmits + duplicates + query/publish repair).
    #[must_use]
    pub fn extra_messages(&self) -> u64 {
        self.retransmissions
            + self.duplicates
            + self.directory_retransmissions
            + self.publish_retransmissions
    }
}

/// Everything a federation run produces.
#[derive(Debug, Clone)]
pub struct FederationReport {
    /// Per-resource statistics, indexed like the input resources.
    pub resources: Vec<ResourceMetrics>,
    /// Per-job records for every job that entered the system.
    pub jobs: Vec<JobRecord>,
    /// Message accounting.
    pub messages: MessageLedger,
    /// The GridBank at the end of the run.
    pub bank: GridBank,
    /// Final simulation time.
    pub sim_end: f64,
    /// Which directory backend served the run's ranking queries.
    pub backend: DirectoryBackend,
    /// Total ranking queries the directory served during the run.
    pub directory_queries: u64,
    /// Average messages of one *routed* ranking lookup (rank-1 cursor
    /// establishment): the charged `⌈log₂ n⌉` average under the ideal
    /// backend, measured overlay hops under Chord, zero if the run never
    /// touched the directory.  This is the quantity the paper's `O(log n)`
    /// assumption is about.
    pub directory_avg_route_messages: f64,
    /// Aggregated hit/miss counters of the GFAs' epoch-keyed quote caches.
    /// Observability only — cache hits replay the exact charges and
    /// telemetry of a live query, so nothing rendered from a report depends
    /// on this field.  Always zero under
    /// [`crate::federation::DirectoryQueryPath::PerRank`].
    pub directory_cache: CacheStats,
    /// Churn and self-healing telemetry (all-zero without a churn config).
    pub churn: ChurnSummary,
    /// Unreliable-network telemetry (all-zero without an active fault
    /// config).
    pub network: NetworkSummary,
    /// The run's full metrics registry: every counter, floating-point sum
    /// and log-linear histogram the model recorded at event boundaries.
    /// [`FederationReport::directory_cache`], [`FederationReport::churn`]
    /// and [`FederationReport::network`] are reconstructed views of this
    /// registry, kept for API stability.
    pub metrics: MetricsRegistry,
    /// The run's hash-chained audit digest (see [`crate::audit`]): two runs
    /// with equal `digest.full` executed the same audited history; equal
    /// `digest.outcomes` means identical job outcomes and bank transfers
    /// regardless of directory-backend traffic.
    pub digest: RunDigest,
}

impl FederationReport {
    /// p50/p90/p99 panels over the run's wait, slowdown, negotiation,
    /// lookup-latency and queue-depth distributions.
    #[must_use]
    pub fn percentiles(&self) -> PercentileSummary {
        self.metrics.percentiles()
    }

    /// Mean acceptance rate across resources (the paper's "average job
    /// acceptance rate over all resources", 90.3 % → 98.6 %).
    #[must_use]
    pub fn mean_acceptance_rate(&self) -> f64 {
        if self.resources.is_empty() {
            return 0.0;
        }
        self.resources.iter().map(ResourceMetrics::acceptance_rate).sum::<f64>()
            / self.resources.len() as f64
    }

    /// Mean utilization across resources, in percent.
    #[must_use]
    pub fn mean_utilization_percent(&self) -> f64 {
        if self.resources.is_empty() {
            return 0.0;
        }
        self.resources
            .iter()
            .map(ResourceMetrics::utilization_percent)
            .sum::<f64>()
            / self.resources.len() as f64
    }

    /// Total incentive earned across the federation (Fig. 3a's headline
    /// totals: 2.12 × 10⁹ under all-OFC vs 2.30 × 10⁹ under all-OFT).
    #[must_use]
    pub fn total_incentive(&self) -> f64 {
        self.resources.iter().map(|r| r.incentive).sum()
    }

    /// Jobs originating at `origin`.
    pub fn jobs_of(&self, origin: usize) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(move |j| j.origin == origin)
    }

    /// Average response time of the users local to `origin`.
    ///
    /// With `include_rejected = false` this is Fig. 7(a): rejected jobs are
    /// excluded.  With `include_rejected = true` it is Fig. 8(a): rejected
    /// jobs contribute their *expected* response time on the originating
    /// resource, as the paper does.
    #[must_use]
    pub fn avg_response_time(&self, origin: usize, include_rejected: bool) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for j in self.jobs_of(origin) {
            match j.response_time() {
                Some(rt) => {
                    sum += rt;
                    count += 1;
                }
                None if include_rejected => {
                    sum += j.expected_local_response;
                    count += 1;
                }
                None => {}
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Average budget spent by the users local to `origin`; same
    /// including/excluding-rejected convention as [`Self::avg_response_time`]
    /// (Fig. 7(b) and 8(b)).
    #[must_use]
    pub fn avg_budget_spent(&self, origin: usize, include_rejected: bool) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for j in self.jobs_of(origin) {
            match j.cost_paid() {
                Some(c) => {
                    sum += c;
                    count += 1;
                }
                None if include_rejected => {
                    sum += j.expected_local_cost;
                    count += 1;
                }
                None => {}
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Federation-wide average response time over *all* users
    /// (the quantity the paper compares against the without-federation case,
    /// 1.171 × 10⁴ vs 1.207 × 10⁴ sim units under all-OFT).
    #[must_use]
    pub fn federation_avg_response_time(&self, include_rejected: bool) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for j in &self.jobs {
            match j.response_time() {
                Some(rt) => {
                    sum += rt;
                    count += 1;
                }
                None if include_rejected => {
                    sum += j.expected_local_response;
                    count += 1;
                }
                None => {}
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Federation-wide average budget spent over all users.
    #[must_use]
    pub fn federation_avg_budget_spent(&self, include_rejected: bool) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for j in &self.jobs {
            match j.cost_paid() {
                Some(c) => {
                    sum += c;
                    count += 1;
                }
                None if include_rejected => {
                    sum += j.expected_local_cost;
                    count += 1;
                }
                None => {}
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Average directory messages per ranking query (routed lookups and
    /// cursor advances combined).  See
    /// [`Self::directory_avg_route_messages`] for the pure routing cost.
    #[must_use]
    pub fn avg_directory_messages_per_query(&self) -> f64 {
        if self.directory_queries == 0 {
            0.0
        } else {
            self.messages.directory_messages() as f64 / self.directory_queries as f64
        }
    }

    /// Total publish-side directory messages of the run — the routed
    /// put/remove/move traffic of `subscribe` / `unsubscribe` /
    /// `update_price` under a distributed backend (zero under the
    /// centrally-stored backends).  Convenience accessor for
    /// [`MessageLedger::publish_messages`].
    #[must_use]
    pub fn directory_publish_messages(&self) -> u64 {
        self.messages.publish_messages()
    }

    /// Average publish-side directory messages per GFA.
    #[must_use]
    pub fn avg_publish_messages_per_gfa(&self) -> f64 {
        if self.resources.is_empty() {
            0.0
        } else {
            self.messages.publish_messages() as f64 / self.resources.len() as f64
        }
    }

    /// Fraction of ranking lookups that resolved despite churn (see
    /// [`ChurnSummary::lookup_success_rate`]); `1.0` on a static ring.
    #[must_use]
    pub fn lookup_success_rate(&self) -> f64 {
        self.churn.lookup_success_rate(self.directory_queries)
    }

    /// Fraction of accepted jobs whose QoS (budget **and** deadline) was met.
    #[must_use]
    pub fn qos_satisfaction_rate(&self) -> f64 {
        let accepted: Vec<&JobRecord> = self.jobs.iter().filter(|j| j.was_accepted()).collect();
        if accepted.is_empty() {
            return 0.0;
        }
        accepted.iter().filter(|j| j.qos_satisfied()).count() as f64 / accepted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed_record(origin: usize, executed_on: usize, submit: f64, finish: f64, cost: f64) -> JobRecord {
        JobRecord {
            id: JobId { origin, seq: 0 },
            origin,
            strategy: Strategy::Ofc,
            submit,
            processors: 4,
            deadline: 1_000.0,
            budget: 100.0,
            expected_local_response: 500.0,
            expected_local_cost: 40.0,
            messages: 4,
            directory_messages: 2,
            outcome: ExecutionOutcome::Completed {
                executed_on,
                start: submit,
                finish,
                cost,
            },
        }
    }

    fn rejected_record(origin: usize) -> JobRecord {
        JobRecord {
            id: JobId { origin, seq: 1 },
            origin,
            strategy: Strategy::Oft,
            submit: 0.0,
            processors: 4,
            deadline: 100.0,
            budget: 10.0,
            expected_local_response: 800.0,
            expected_local_cost: 60.0,
            messages: 8,
            directory_messages: 6,
            outcome: ExecutionOutcome::Rejected,
        }
    }

    fn resource(name: &str, total: usize, accepted: usize) -> ResourceMetrics {
        ResourceMetrics {
            name: name.into(),
            processors: 64,
            utilization: 0.5,
            busy_processor_seconds: 1_000.0,
            total_local_jobs: total,
            accepted,
            rejected: total - accepted,
            processed_locally: accepted / 2,
            migrated: accepted - accepted / 2,
            remote_jobs_processed: 3,
            incentive: 1_000.0,
        }
    }

    fn report() -> FederationReport {
        FederationReport {
            resources: vec![resource("A", 10, 9), resource("B", 20, 20)],
            jobs: vec![
                completed_record(0, 0, 0.0, 400.0, 30.0),
                completed_record(0, 1, 100.0, 900.0, 70.0),
                rejected_record(0),
                completed_record(1, 1, 0.0, 2_000.0, 120.0),
            ],
            messages: MessageLedger::new(2),
            bank: GridBank::new(2),
            sim_end: 10_000.0,
            backend: DirectoryBackend::Ideal,
            directory_queries: 0,
            directory_avg_route_messages: 0.0,
            directory_cache: CacheStats::default(),
            churn: ChurnSummary::default(),
            network: NetworkSummary::default(),
            metrics: MetricsRegistry::new(2),
            digest: crate::audit::AuditLedger::new(2).digest(),
        }
    }

    #[test]
    fn job_record_predicates() {
        let ok = completed_record(0, 1, 0.0, 400.0, 30.0);
        assert_eq!(ok.response_time(), Some(400.0));
        assert_eq!(ok.cost_paid(), Some(30.0));
        assert!(ok.was_migrated());
        assert!(ok.was_accepted());
        assert!(ok.qos_satisfied());
        let late = completed_record(0, 0, 0.0, 5_000.0, 30.0);
        assert!(!late.qos_satisfied());
        assert!(!late.was_migrated());
        let pricey = completed_record(0, 1, 0.0, 400.0, 400.0);
        assert!(!pricey.qos_satisfied());
        let rej = rejected_record(0);
        assert_eq!(rej.response_time(), None);
        assert!(!rej.was_accepted());
        assert!(!rej.qos_satisfied());
    }

    #[test]
    fn resource_rates() {
        let r = resource("A", 10, 9);
        assert!((r.acceptance_rate() - 90.0).abs() < 1e-12);
        assert!((r.rejection_rate() - 10.0).abs() < 1e-12);
        assert!((r.utilization_percent() - 50.0).abs() < 1e-12);
        let empty = ResourceMetrics {
            total_local_jobs: 0,
            accepted: 0,
            rejected: 0,
            ..resource("E", 10, 9)
        };
        assert_eq!(empty.acceptance_rate(), 100.0);
    }

    #[test]
    fn report_aggregates() {
        let rep = report();
        assert!((rep.mean_acceptance_rate() - 95.0).abs() < 1e-12);
        assert!((rep.mean_utilization_percent() - 50.0).abs() < 1e-12);
        assert!((rep.total_incentive() - 2_000.0).abs() < 1e-12);
        assert_eq!(rep.jobs_of(0).count(), 3);
        // Excluding rejected: origin 0 has responses 400 and 800 → 600.
        assert!((rep.avg_response_time(0, false) - 600.0).abs() < 1e-12);
        // Including rejected adds the expected 800 on origin → (400+800+800)/3.
        assert!((rep.avg_response_time(0, true) - 2_000.0 / 3.0).abs() < 1e-9);
        assert!((rep.avg_budget_spent(0, false) - 50.0).abs() < 1e-12);
        assert!((rep.avg_budget_spent(0, true) - (30.0 + 70.0 + 60.0) / 3.0).abs() < 1e-9);
        // Federation-wide.
        assert!((rep.federation_avg_response_time(false) - (400.0 + 800.0 + 2_000.0) / 3.0).abs() < 1e-9);
        assert!((rep.federation_avg_budget_spent(true) - (30.0 + 70.0 + 60.0 + 120.0) / 4.0).abs() < 1e-9);
        // QoS satisfaction: job at origin 1 finished after its deadline and
        // over budget → 2 of 3 accepted jobs satisfied.
        assert!((rep.qos_satisfaction_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let rep = FederationReport {
            resources: vec![],
            jobs: vec![],
            messages: MessageLedger::new(0),
            bank: GridBank::new(0),
            sim_end: 0.0,
            backend: DirectoryBackend::Chord,
            directory_queries: 0,
            directory_avg_route_messages: 0.0,
            directory_cache: CacheStats::default(),
            churn: ChurnSummary::default(),
            network: NetworkSummary::default(),
            metrics: MetricsRegistry::new(0),
            digest: crate::audit::AuditLedger::new(0).digest(),
        };
        assert_eq!(rep.mean_acceptance_rate(), 0.0);
        assert_eq!(rep.total_incentive(), 0.0);
        assert_eq!(rep.avg_response_time(0, true), 0.0);
        assert_eq!(rep.qos_satisfaction_rate(), 0.0);
        assert_eq!(rep.federation_avg_response_time(true), 0.0);
        assert_eq!(rep.federation_avg_budget_spent(false), 0.0);
        assert_eq!(rep.mean_utilization_percent(), 0.0);
        assert_eq!(rep.avg_budget_spent(3, false), 0.0);
    }

    #[test]
    fn network_summary_accessors() {
        let mut n = NetworkSummary::default();
        assert!(n.is_quiet());
        assert_eq!(n.extra_messages(), 0);
        n.enveloped = 10;
        n.retransmissions = 3;
        n.duplicates = 2;
        n.dedup_drops = 2;
        n.directory_retransmissions = 4;
        n.publish_retransmissions = 1;
        assert!(!n.is_quiet());
        assert_eq!(n.extra_messages(), 10);
    }

    #[test]
    fn churn_summary_rates() {
        let mut c = ChurnSummary::default();
        assert_eq!(c.events(), 0);
        assert_eq!(c.lookup_success_rate(0), 1.0);
        c.graceful_leaves = 2;
        c.crashes = 1;
        c.rejoins = 2;
        c.lookup_faults = 5;
        assert_eq!(c.events(), 5);
        assert!((c.lookup_success_rate(95) - 0.95).abs() < 1e-12);
        // The report-level view divides the directory's served-query count.
        let mut rep = report();
        assert_eq!(rep.lookup_success_rate(), 1.0);
        rep.directory_queries = 3;
        rep.churn.lookup_faults = 1;
        assert!((rep.lookup_success_rate() - 0.75).abs() < 1e-12);
    }
}
