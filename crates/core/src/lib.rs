//! # grid-federation-core — the Grid-Federation resource management model
//!
//! This crate implements the paper's primary contribution: a decentralised,
//! economy-driven super-scheduling system that couples autonomous clusters
//! into a *Grid-Federation*.
//!
//! * [`economy`] — the commodity-market pricing function (Eq. 5–6) and the
//!   GridBank credit service that accumulates resource-owner incentives.
//! * [`messages`] — the negotiate / reply / job-submission / job-completion
//!   vocabulary and the local-vs-remote message accounting of Experiments
//!   4–5.
//! * [`gfa`] — the Grid Federation Agent: admission control, the
//!   deadline-and-budget-constrained (DBC) scheduling loop with its
//!   OFC (optimise-for-cost) and OFT (optimise-for-time) strategies, and the
//!   execution of local and remote jobs on the cluster's LRMS.
//! * [`federation`] — the builder that assembles GFAs, the shared federation
//!   directory, the GridBank and the workloads into one deterministic
//!   discrete-event simulation, in any of the three sharing environments the
//!   paper evaluates (independent, federation without economy, federation
//!   with economy), optionally under a seeded churn model
//!   ([`federation::ChurnConfig`]) with directory self-healing and
//!   retry-with-backoff degradation at the GFAs.
//! * [`metrics`] — per-job, per-resource and federation-wide statistics
//!   matching the paper's tables and figures.
//! * [`audit`] — the hash-chained audit ledger: every job outcome, message
//!   charge and bank mutation folds into per-GFA chained digests, and the
//!   run-level [`RunDigest`] turns whole-run differentials into a single
//!   integer comparison.
//!
//! ## Quick example
//!
//! ```
//! use grid_cluster::ResourceSpec;
//! use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
//! use grid_workload::{Job, JobId, Strategy, UserId};
//!
//! let resources = vec![
//!     ResourceSpec::new("cheap", 64, 600.0, 1.0, 2.4),
//!     ResourceSpec::new("fast", 64, 1000.0, 2.0, 4.0),
//! ];
//! let mut job = Job::from_runtime(
//!     JobId { origin: 0, seq: 0 },
//!     UserId { origin: 0, local: 0 },
//!     0.0,     // submit time
//!     8,       // processors
//!     600.0,   // runtime on the origin, seconds
//!     600.0,   // origin MIPS
//!     0.10,    // communication share
//! );
//! job.qos.strategy = Strategy::Oft;
//! let report = run_federation(
//!     resources,
//!     vec![vec![job], vec![]],
//!     FederationConfig::with_mode(SchedulingMode::Economy),
//! );
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.jobs[0].was_accepted());
//! assert!(report.jobs[0].was_migrated()); // OFT picks the fast cluster
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod economy;
pub mod federation;
pub mod gfa;
#[cfg(feature = "invariants")]
pub mod invariants;
pub mod messages;
pub mod metrics;

pub use audit::{AuditLedger, RunDigest};
pub use economy::{apply_commodity_pricing, quote_price, ChargingPolicy, GridBank, PAPER_ACCESS_PRICE};
pub use federation::{
    run_federation, ChurnConfig, DirectoryQueryPath, FederationBuilder, FederationConfig,
    GfaSchedule, LrmsKind, RepairMode, RetryPolicy, SchedulingMode, SharedState,
};
pub use grid_des::{Jitter, NetworkFaultConfig};
pub use grid_directory::{CacheStats, DirectoryBackend};
pub use grid_obs::{
    Counter, FSum, HistId, MetricsRegistry, PercentileSummary, ProfileTable, Quantiles,
    SpanCollector,
};
pub use gfa::Gfa;
#[cfg(feature = "invariants")]
pub use invariants::InvariantSentry;
pub use messages::{FedMessage, GfaMessageCounters, MessageLedger, MessageType};
pub use metrics::{
    ChurnSummary, ExecutionOutcome, FederationReport, JobRecord, NetworkSummary, ResourceMetrics,
};
