//! The federation's message vocabulary and the message accounting used by
//! Experiments 4 and 5.
//!
//! The paper counts four message types — *negotiate*, *reply*,
//! *job-submission* and *job-completion* — and classifies them, per GFA, as
//! **local** (traffic a GFA generates to schedule its own users' jobs) or
//! **remote** (traffic a GFA handles on behalf of other GFAs' jobs).
//! Directory queries are accounted as a **separate** message class
//! (`directory`): every ranking query reports the number of overlay messages
//! it cost — a routed rank-1 lookup (modelled `⌈log₂ n⌉` for the ideal
//! backend, measured Chord hops for the overlay backend) plus one
//! cursor-advance message per further rank, the `O(log n + k)` complexity of
//! DHT range queries — and the ledger tracks those counts, plus the
//! simulated network time they represent, without ever mixing them into the
//! four negotiation counters, so the paper's Fig. 9–11 stay comparable.
//! The *execution* now matches that model too: the DBC loop streams ranks
//! through a per-job [`grid_directory::RankCursor`] backed by a per-GFA
//! quote cache, charging exactly what the query-per-rank oracle charges
//! (asserted bit-identical by the differential tests).

use grid_workload::{Job, JobId};

/// Message and timer payloads exchanged between federation entities.
#[derive(Debug, Clone, PartialEq)]
pub enum FedMessage {
    /// Self-timer: one of this GFA's local users submits a job.
    JobArrival(Job),
    /// Admission-control enquiry sent to a candidate GFA: "can you finish
    /// this job before its deadline?"
    Negotiate {
        /// Job being negotiated.
        job: JobId,
        /// GFA the job originates from (where the reply must go).
        origin: usize,
        /// Processors the job needs.
        processors: u32,
        /// Service time of the job on the *candidate* resource (computed by
        /// the origin from the candidate's quote, Eq. 2).
        service_time: f64,
        /// Cost of the job on the candidate resource (Eq. 4), carried so the
        /// candidate can account its incentive on completion.
        cost: f64,
        /// Absolute deadline (`submit + d`).
        absolute_deadline: f64,
        /// 1-based iteration counter `r` of the scheduling loop.
        attempt: u32,
        /// Per-link envelope sequence number (0 on a reliable transport).
        /// Under the network fault layer every remote protocol message
        /// carries a monotone per-(src, dst) sequence the receiver's dedup
        /// window filters duplicates by.
        seq: u64,
    },
    /// Admission-control answer.
    NegotiateReply {
        /// Job the reply refers to.
        job: JobId,
        /// Whether the candidate guarantees completion before the deadline.
        accept: bool,
        /// Candidate GFA replying.
        candidate: usize,
        /// Echo of the attempt counter.
        attempt: u32,
        /// Per-link envelope sequence number (0 on a reliable transport).
        seq: u64,
    },
    /// The actual job, sent after an accepted negotiation.
    JobDispatch {
        /// The job itself.
        job: Job,
        /// Service time on the executing resource.
        service_time: f64,
        /// Cost on the executing resource.
        cost: f64,
        /// Per-link envelope sequence number (0 on a reliable transport).
        seq: u64,
    },
    /// Completion notification (with "output") sent back to the origin GFA.
    JobCompletion {
        /// Job that finished.
        job: JobId,
        /// GFA that executed it.
        executed_on: usize,
        /// Time the job finished executing.
        finish: f64,
        /// Amount charged.
        cost: f64,
        /// Per-link envelope sequence number (0 on a reliable transport).
        seq: u64,
    },
    /// Self-timer: a job running on the local LRMS reached its finish time.
    LocalJobFinished {
        /// Job that finished locally.
        job: JobId,
    },
    /// Self-timer: this GFA departs the federation, withdrawing its quote
    /// from the directory.  Work already reserved on its LRMS still runs to
    /// completion; new negotiations are refused.
    Depart,
    /// Self-timer: this GFA republishes its access price through the
    /// directory's `update_price` primitive.
    Reprice {
        /// The new access price in Grid Dollars.
        price: f64,
    },
    /// Self-timer drawn from the seeded churn process: this GFA leaves the
    /// federation, either gracefully (handing its stored directory entries
    /// off to their new owners) or by crashing (dropping them cold).
    ChurnDepart {
        /// `true` for a graceful leave, `false` for an ungraceful crash.
        graceful: bool,
    },
    /// Self-timer drawn from the seeded churn process: a churned-out GFA
    /// comes back, rejoins the overlay and republishes its quote.
    ChurnJoin,
    /// Self-timer: this GFA drives one periodic stabilization round of the
    /// overlay — evicting crashed nodes, reconciling entry placement and
    /// repairing attribute-entry replicas up to the configured factor.
    Stabilize,
    /// Self-timer: a job whose directory lookup faulted retries its
    /// scheduling loop after an exponential-backoff delay.
    DirectoryRetry {
        /// Job whose scheduling loop resumes.
        job: JobId,
    },
}

impl FedMessage {
    /// The per-link envelope sequence number of a protocol message, or
    /// `None` for self-timers and other un-enveloped payloads.  Only the
    /// four remote negotiation-protocol messages travel the faultable
    /// transport, so only they carry a dedup-window envelope.
    #[must_use]
    pub fn envelope_seq(&self) -> Option<u64> {
        match self {
            FedMessage::Negotiate { seq, .. }
            | FedMessage::NegotiateReply { seq, .. }
            | FedMessage::JobDispatch { seq, .. }
            | FedMessage::JobCompletion { seq, .. } => Some(*seq),
            _ => None,
        }
    }

    /// A static per-variant label, used by the self-profiling hook to
    /// aggregate wall-clock handler timings by event type.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FedMessage::JobArrival(_) => "job_arrival",
            FedMessage::Negotiate { .. } => "negotiate",
            FedMessage::NegotiateReply { .. } => "negotiate_reply",
            FedMessage::JobDispatch { .. } => "job_dispatch",
            FedMessage::JobCompletion { .. } => "job_completion",
            FedMessage::LocalJobFinished { .. } => "local_job_finished",
            FedMessage::Depart => "depart",
            FedMessage::Reprice { .. } => "reprice",
            FedMessage::ChurnDepart { .. } => "churn_depart",
            FedMessage::ChurnJoin => "churn_join",
            FedMessage::Stabilize => "stabilize",
            FedMessage::DirectoryRetry { .. } => "directory_retry",
        }
    }
}

/// The four accountable message types of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// Admission-control enquiry.
    Negotiate,
    /// Admission-control answer.
    Reply,
    /// Message containing the actual job.
    JobSubmission,
    /// Message containing the job output.
    JobCompletion,
}

impl MessageType {
    /// All four types, in a stable order (useful for table headers).
    pub const ALL: [MessageType; 4] = [
        MessageType::Negotiate,
        MessageType::Reply,
        MessageType::JobSubmission,
        MessageType::JobCompletion,
    ];
}

/// Per-GFA message counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GfaMessageCounters {
    /// Messages this GFA sent or received for its **own** users' jobs.
    pub local: u64,
    /// Messages this GFA sent or received for **other** GFAs' jobs.
    pub remote: u64,
    /// Breakdown by message type (sum of local + remote contributions
    /// counted at this GFA).
    pub by_type: [u64; 4],
    /// Directory messages this GFA's ranking queries cost.  Kept out of
    /// `local`/`remote` so the negotiation panels remain comparable.
    pub directory: u64,
    /// Publish-side directory messages this GFA's quote mutations cost —
    /// the routed put/remove/move operations of `subscribe`, `unsubscribe`
    /// and `update_price` under a distributed backend (always zero under
    /// the centrally-stored `Ideal`/`Chord` backends).  Its own traffic
    /// class, kept out of both the negotiation counters and `directory`.
    pub publish: u64,
}

impl GfaMessageCounters {
    /// Total messages seen at this GFA.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.local + self.remote
    }
}

/// Federation-wide message ledger.
///
/// For every accountable message exchanged between the origin GFA `k` and a
/// candidate/executing GFA `m`:
///
/// * the per-job counter of the job is incremented once (a message is one
///   message, no matter how many parties look at it),
/// * GFA `k` records one **local** message,
/// * GFA `m` (if different from `k`) records one **remote** message.
///
/// Self-negotiation (the scheduling loop picking the origin itself) still
/// exchanges a negotiate/reply pair in the paper's accounting (`n = 2`
/// messages for an immediately-local job, "n/2 entries traversed"), so those
/// count as local messages at the origin with no remote counterpart.
#[derive(Debug, Clone, Default)]
pub struct MessageLedger {
    per_gfa: Vec<GfaMessageCounters>,
    per_job_messages: Vec<(JobId, u32)>,
    per_job_directory: Vec<(JobId, u32)>,
    total: u64,
    directory_total: u64,
    directory_seconds: f64,
    publish_total: u64,
    publish_seconds: f64,
}

impl MessageLedger {
    /// Creates a ledger for `n` GFAs.
    #[must_use]
    pub fn new(n: usize) -> Self {
        MessageLedger {
            per_gfa: vec![GfaMessageCounters::default(); n],
            per_job_messages: Vec::new(),
            per_job_directory: Vec::new(),
            total: 0,
            directory_total: 0,
            directory_seconds: 0.0,
            publish_total: 0,
            publish_seconds: 0.0,
        }
    }

    /// Records one message of `mtype` concerning a job originating at
    /// `origin`, whose counterpart GFA is `counterpart` (equal to `origin`
    /// for self-negotiation).
    ///
    /// # Panics
    /// Panics if either GFA index is out of range.
    pub fn record(&mut self, mtype: MessageType, origin: usize, counterpart: usize) {
        assert!(
            origin < self.per_gfa.len() && counterpart < self.per_gfa.len(),
            "unknown GFA in message record ({origin}, {counterpart})"
        );
        let type_idx = MessageType::ALL
            .iter()
            .position(|t| *t == mtype)
            .expect("type present in ALL");
        self.per_gfa[origin].local += 1;
        self.per_gfa[origin].by_type[type_idx] += 1;
        if counterpart != origin {
            self.per_gfa[counterpart].remote += 1;
            self.per_gfa[counterpart].by_type[type_idx] += 1;
        }
        self.total += 1;
    }

    /// Records directory traffic: a ranking query issued by `origin` that
    /// cost `messages` overlay messages and `seconds` of simulated network
    /// time (hops × latency).  Directory traffic is accounted separately
    /// from the four negotiation message types.
    ///
    /// # Panics
    /// Panics if the GFA index is out of range.
    pub fn record_directory(&mut self, origin: usize, messages: u64, seconds: f64) {
        assert!(
            origin < self.per_gfa.len(),
            "unknown GFA in directory record ({origin})"
        );
        self.per_gfa[origin].directory += messages;
        self.directory_total += messages;
        self.directory_seconds += seconds;
    }

    /// Records publish-side directory traffic: a quote mutation
    /// (`subscribe` / `unsubscribe` / `update_price`) issued by `origin`
    /// whose routed put/remove/move operations cost `messages` overlay
    /// messages and `seconds` of simulated network time.  A third traffic
    /// class, accounted separately from both the negotiation messages and
    /// the query-side `directory` class.
    ///
    /// # Panics
    /// Panics if the GFA index is out of range.
    pub fn record_publish(&mut self, origin: usize, messages: u64, seconds: f64) {
        assert!(
            origin < self.per_gfa.len(),
            "unknown GFA in publish record ({origin})"
        );
        self.per_gfa[origin].publish += messages;
        self.publish_total += messages;
        self.publish_seconds += seconds;
    }

    /// Records the final per-job message counts once the job's scheduling
    /// concluded (accepted somewhere or dropped): `messages` negotiation
    /// messages and `directory_messages` directory messages.
    pub fn finish_job(&mut self, job: JobId, messages: u32, directory_messages: u32) {
        self.per_job_messages.push((job, messages));
        self.per_job_directory.push((job, directory_messages));
    }

    /// Counters of one GFA.
    #[must_use]
    pub fn gfa(&self, idx: usize) -> &GfaMessageCounters {
        &self.per_gfa[idx]
    }

    /// Counters of all GFAs.
    #[must_use]
    pub fn all_gfas(&self) -> &[GfaMessageCounters] {
        &self.per_gfa
    }

    /// Per-job negotiation message counts, in completion order.
    #[must_use]
    pub fn per_job(&self) -> &[(JobId, u32)] {
        &self.per_job_messages
    }

    /// Per-job directory message counts, in completion order (parallel to
    /// [`Self::per_job`]).
    #[must_use]
    pub fn per_job_directory(&self) -> &[(JobId, u32)] {
        &self.per_job_directory
    }

    /// Total number of accountable negotiation messages exchanged in the
    /// federation (directory traffic excluded, as in the paper's figures).
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total
    }

    /// Total directory messages spent on ranking queries.
    #[must_use]
    pub fn directory_messages(&self) -> u64 {
        self.directory_total
    }

    /// Total simulated time (seconds) spent on directory lookups, i.e. the
    /// sum of hops × latency over all ranking queries.  Accounted out-of-band
    /// — lookups do not delay the negotiation timeline — so different
    /// backends produce identical job outcomes and differ only in this
    /// ledger.
    #[must_use]
    pub fn directory_seconds(&self) -> f64 {
        self.directory_seconds
    }

    /// Total publish-side directory messages spent on quote mutations
    /// (routed puts/removes/moves; zero under centrally-stored backends).
    #[must_use]
    pub fn publish_messages(&self) -> u64 {
        self.publish_total
    }

    /// Total simulated time (seconds) the publish-side traffic represents
    /// (messages × latency), accounted out-of-band like
    /// [`Self::directory_seconds`].
    #[must_use]
    pub fn publish_seconds(&self) -> f64 {
        self.publish_seconds
    }

    fn summary(entries: &[(JobId, u32)]) -> (u32, f64, u32) {
        if entries.is_empty() {
            return (0, 0.0, 0);
        }
        let min = entries.iter().map(|(_, m)| *m).min().unwrap_or(0);
        let max = entries.iter().map(|(_, m)| *m).max().unwrap_or(0);
        let sum: u64 = entries.iter().map(|(_, m)| u64::from(*m)).sum();
        (min, sum as f64 / entries.len() as f64, max)
    }

    /// (min, mean, max) negotiation messages per job, or zeros if no job
    /// finished.
    #[must_use]
    pub fn per_job_summary(&self) -> (u32, f64, u32) {
        Self::summary(&self.per_job_messages)
    }

    /// (min, mean, max) directory messages per job, or zeros if no job
    /// finished.
    #[must_use]
    pub fn per_job_directory_summary(&self) -> (u32, f64, u32) {
        Self::summary(&self.per_job_directory)
    }

    /// (min, mean, max) of per-GFA total (local + remote) message counts.
    #[must_use]
    pub fn per_gfa_summary(&self) -> (u64, f64, u64) {
        if self.per_gfa.is_empty() {
            return (0, 0.0, 0);
        }
        let totals: Vec<u64> = self.per_gfa.iter().map(GfaMessageCounters::total).collect();
        let min = *totals.iter().min().expect("non-empty");
        let max = *totals.iter().max().expect("non-empty");
        let sum: u64 = totals.iter().sum();
        (min, sum as f64 / totals.len() as f64, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jid(origin: usize, seq: usize) -> JobId {
        JobId { origin, seq }
    }

    #[test]
    fn remote_messages_count_at_both_sides() {
        let mut ledger = MessageLedger::new(3);
        // Origin 0 negotiates with candidate 2: negotiate + reply.
        ledger.record(MessageType::Negotiate, 0, 2);
        ledger.record(MessageType::Reply, 0, 2);
        // Accepted: dispatch + completion.
        ledger.record(MessageType::JobSubmission, 0, 2);
        ledger.record(MessageType::JobCompletion, 0, 2);
        ledger.finish_job(jid(0, 0), 4, 0);

        assert_eq!(ledger.gfa(0).local, 4);
        assert_eq!(ledger.gfa(0).remote, 0);
        assert_eq!(ledger.gfa(2).remote, 4);
        assert_eq!(ledger.gfa(2).local, 0);
        assert_eq!(ledger.gfa(1).total(), 0);
        assert_eq!(ledger.total_messages(), 4);
        assert_eq!(ledger.per_job_summary(), (4, 4.0, 4));
        assert_eq!(ledger.per_gfa_summary(), (0, 8.0 / 3.0, 4));
    }

    #[test]
    fn self_negotiation_counts_as_local_only() {
        let mut ledger = MessageLedger::new(2);
        ledger.record(MessageType::Negotiate, 1, 1);
        ledger.record(MessageType::Reply, 1, 1);
        ledger.finish_job(jid(1, 0), 2, 0);
        assert_eq!(ledger.gfa(1).local, 2);
        assert_eq!(ledger.gfa(1).remote, 0);
        assert_eq!(ledger.total_messages(), 2);
    }

    #[test]
    fn per_job_and_per_gfa_summaries() {
        let mut ledger = MessageLedger::new(2);
        ledger.finish_job(jid(0, 0), 2, 3);
        ledger.finish_job(jid(0, 1), 6, 5);
        ledger.finish_job(jid(1, 0), 4, 4);
        let (min, mean, max) = ledger.per_job_summary();
        assert_eq!((min, max), (2, 6));
        assert!((mean - 4.0).abs() < 1e-12);
        // Empty ledger edge cases.
        let empty = MessageLedger::new(0);
        assert_eq!(empty.per_gfa_summary(), (0, 0.0, 0));
        assert_eq!(MessageLedger::new(1).per_job_summary(), (0, 0.0, 0));
    }

    #[test]
    fn type_breakdown_is_tracked() {
        let mut ledger = MessageLedger::new(2);
        ledger.record(MessageType::Negotiate, 0, 1);
        ledger.record(MessageType::Negotiate, 0, 1);
        ledger.record(MessageType::Reply, 0, 1);
        assert_eq!(ledger.gfa(0).by_type[0], 2);
        assert_eq!(ledger.gfa(0).by_type[1], 1);
        assert_eq!(ledger.gfa(1).by_type[0], 2);
        assert_eq!(MessageType::ALL.len(), 4);
    }

    #[test]
    fn directory_traffic_is_accounted_separately() {
        let mut ledger = MessageLedger::new(2);
        ledger.record(MessageType::Negotiate, 0, 1);
        ledger.record(MessageType::Reply, 0, 1);
        ledger.record_directory(0, 3, 0.15);
        ledger.record_directory(1, 5, 0.25);
        ledger.finish_job(jid(0, 0), 2, 3);
        ledger.finish_job(jid(1, 0), 0, 5);

        // Negotiation counters are untouched by directory traffic.
        assert_eq!(ledger.total_messages(), 2);
        assert_eq!(ledger.gfa(0).local, 2);
        assert_eq!(ledger.gfa(0).directory, 3);
        assert_eq!(ledger.gfa(1).directory, 5);
        assert_eq!(ledger.directory_messages(), 8);
        assert!((ledger.directory_seconds() - 0.40).abs() < 1e-12);
        // Per-job views are parallel and separately summarised.
        assert_eq!(ledger.per_job().len(), ledger.per_job_directory().len());
        assert_eq!(ledger.per_job_directory_summary(), (3, 4.0, 5));
        assert_eq!(ledger.per_job_summary(), (0, 1.0, 2));
        // Empty ledger edge case.
        assert_eq!(MessageLedger::new(1).per_job_directory_summary(), (0, 0.0, 0));
        assert_eq!(MessageLedger::new(1).directory_messages(), 0);
    }

    #[test]
    fn publish_traffic_is_a_third_class() {
        let mut ledger = MessageLedger::new(2);
        ledger.record(MessageType::Negotiate, 0, 1);
        ledger.record_directory(0, 3, 0.15);
        ledger.record_publish(1, 4, 0.20);
        ledger.record_publish(1, 2, 0.10);
        // Neither the negotiation counters nor the query-side directory
        // class move.
        assert_eq!(ledger.total_messages(), 1);
        assert_eq!(ledger.directory_messages(), 3);
        assert_eq!(ledger.gfa(1).publish, 6);
        assert_eq!(ledger.gfa(0).publish, 0);
        assert_eq!(ledger.publish_messages(), 6);
        assert!((ledger.publish_seconds() - 0.30).abs() < 1e-12);
        assert_eq!(MessageLedger::new(1).publish_messages(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown GFA in publish record")]
    fn out_of_range_publish_record_panics() {
        let mut ledger = MessageLedger::new(1);
        ledger.record_publish(2, 1, 0.05);
    }

    #[test]
    #[should_panic(expected = "unknown GFA")]
    fn out_of_range_gfa_panics() {
        let mut ledger = MessageLedger::new(1);
        ledger.record(MessageType::Negotiate, 0, 5);
    }

    #[test]
    #[should_panic(expected = "unknown GFA in directory record")]
    fn out_of_range_directory_record_panics() {
        let mut ledger = MessageLedger::new(1);
        ledger.record_directory(3, 1, 0.05);
    }
}
