//! The federation's message vocabulary and the message accounting used by
//! Experiments 4 and 5.
//!
//! The paper counts four message types — *negotiate*, *reply*,
//! *job-submission* and *job-completion* — and classifies them, per GFA, as
//! **local** (traffic a GFA generates to schedule its own users' jobs) or
//! **remote** (traffic a GFA handles on behalf of other GFAs' jobs).
//! Directory queries are modelled separately (`O(log n)` each) and excluded
//! from these counts, exactly as in the paper.

use grid_workload::{Job, JobId};

/// Message and timer payloads exchanged between federation entities.
#[derive(Debug, Clone, PartialEq)]
pub enum FedMessage {
    /// Self-timer: one of this GFA's local users submits a job.
    JobArrival(Job),
    /// Admission-control enquiry sent to a candidate GFA: "can you finish
    /// this job before its deadline?"
    Negotiate {
        /// Job being negotiated.
        job: JobId,
        /// GFA the job originates from (where the reply must go).
        origin: usize,
        /// Processors the job needs.
        processors: u32,
        /// Service time of the job on the *candidate* resource (computed by
        /// the origin from the candidate's quote, Eq. 2).
        service_time: f64,
        /// Cost of the job on the candidate resource (Eq. 4), carried so the
        /// candidate can account its incentive on completion.
        cost: f64,
        /// Absolute deadline (`submit + d`).
        absolute_deadline: f64,
        /// 1-based iteration counter `r` of the scheduling loop.
        attempt: u32,
    },
    /// Admission-control answer.
    NegotiateReply {
        /// Job the reply refers to.
        job: JobId,
        /// Whether the candidate guarantees completion before the deadline.
        accept: bool,
        /// Candidate GFA replying.
        candidate: usize,
        /// Echo of the attempt counter.
        attempt: u32,
    },
    /// The actual job, sent after an accepted negotiation.
    JobDispatch {
        /// The job itself.
        job: Job,
        /// Service time on the executing resource.
        service_time: f64,
        /// Cost on the executing resource.
        cost: f64,
    },
    /// Completion notification (with "output") sent back to the origin GFA.
    JobCompletion {
        /// Job that finished.
        job: JobId,
        /// GFA that executed it.
        executed_on: usize,
        /// Time the job finished executing.
        finish: f64,
        /// Amount charged.
        cost: f64,
    },
    /// Self-timer: a job running on the local LRMS reached its finish time.
    LocalJobFinished {
        /// Job that finished locally.
        job: JobId,
    },
}

/// The four accountable message types of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// Admission-control enquiry.
    Negotiate,
    /// Admission-control answer.
    Reply,
    /// Message containing the actual job.
    JobSubmission,
    /// Message containing the job output.
    JobCompletion,
}

impl MessageType {
    /// All four types, in a stable order (useful for table headers).
    pub const ALL: [MessageType; 4] = [
        MessageType::Negotiate,
        MessageType::Reply,
        MessageType::JobSubmission,
        MessageType::JobCompletion,
    ];
}

/// Per-GFA message counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GfaMessageCounters {
    /// Messages this GFA sent or received for its **own** users' jobs.
    pub local: u64,
    /// Messages this GFA sent or received for **other** GFAs' jobs.
    pub remote: u64,
    /// Breakdown by message type (sum of local + remote contributions
    /// counted at this GFA).
    pub by_type: [u64; 4],
}

impl GfaMessageCounters {
    /// Total messages seen at this GFA.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.local + self.remote
    }
}

/// Federation-wide message ledger.
///
/// For every accountable message exchanged between the origin GFA `k` and a
/// candidate/executing GFA `m`:
///
/// * the per-job counter of the job is incremented once (a message is one
///   message, no matter how many parties look at it),
/// * GFA `k` records one **local** message,
/// * GFA `m` (if different from `k`) records one **remote** message.
///
/// Self-negotiation (the scheduling loop picking the origin itself) still
/// exchanges a negotiate/reply pair in the paper's accounting (`n = 2`
/// messages for an immediately-local job, "n/2 entries traversed"), so those
/// count as local messages at the origin with no remote counterpart.
#[derive(Debug, Clone, Default)]
pub struct MessageLedger {
    per_gfa: Vec<GfaMessageCounters>,
    per_job_messages: Vec<(JobId, u32)>,
    total: u64,
}

impl MessageLedger {
    /// Creates a ledger for `n` GFAs.
    #[must_use]
    pub fn new(n: usize) -> Self {
        MessageLedger {
            per_gfa: vec![GfaMessageCounters::default(); n],
            per_job_messages: Vec::new(),
            total: 0,
        }
    }

    /// Records one message of `mtype` concerning a job originating at
    /// `origin`, whose counterpart GFA is `counterpart` (equal to `origin`
    /// for self-negotiation).
    ///
    /// # Panics
    /// Panics if either GFA index is out of range.
    pub fn record(&mut self, mtype: MessageType, origin: usize, counterpart: usize) {
        assert!(
            origin < self.per_gfa.len() && counterpart < self.per_gfa.len(),
            "unknown GFA in message record ({origin}, {counterpart})"
        );
        let type_idx = MessageType::ALL
            .iter()
            .position(|t| *t == mtype)
            .expect("type present in ALL");
        self.per_gfa[origin].local += 1;
        self.per_gfa[origin].by_type[type_idx] += 1;
        if counterpart != origin {
            self.per_gfa[counterpart].remote += 1;
            self.per_gfa[counterpart].by_type[type_idx] += 1;
        }
        self.total += 1;
    }

    /// Records the final per-job message count once the job's scheduling
    /// concluded (accepted somewhere or dropped).
    pub fn finish_job(&mut self, job: JobId, messages: u32) {
        self.per_job_messages.push((job, messages));
    }

    /// Counters of one GFA.
    #[must_use]
    pub fn gfa(&self, idx: usize) -> &GfaMessageCounters {
        &self.per_gfa[idx]
    }

    /// Counters of all GFAs.
    #[must_use]
    pub fn all_gfas(&self) -> &[GfaMessageCounters] {
        &self.per_gfa
    }

    /// Per-job message counts, in completion order.
    #[must_use]
    pub fn per_job(&self) -> &[(JobId, u32)] {
        &self.per_job_messages
    }

    /// Total number of accountable messages exchanged in the federation.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total
    }

    /// (min, mean, max) messages per job, or zeros if no job finished.
    #[must_use]
    pub fn per_job_summary(&self) -> (u32, f64, u32) {
        if self.per_job_messages.is_empty() {
            return (0, 0.0, 0);
        }
        let min = self.per_job_messages.iter().map(|(_, m)| *m).min().unwrap_or(0);
        let max = self.per_job_messages.iter().map(|(_, m)| *m).max().unwrap_or(0);
        let sum: u64 = self.per_job_messages.iter().map(|(_, m)| u64::from(*m)).sum();
        (min, sum as f64 / self.per_job_messages.len() as f64, max)
    }

    /// (min, mean, max) of per-GFA total (local + remote) message counts.
    #[must_use]
    pub fn per_gfa_summary(&self) -> (u64, f64, u64) {
        if self.per_gfa.is_empty() {
            return (0, 0.0, 0);
        }
        let totals: Vec<u64> = self.per_gfa.iter().map(GfaMessageCounters::total).collect();
        let min = *totals.iter().min().expect("non-empty");
        let max = *totals.iter().max().expect("non-empty");
        let sum: u64 = totals.iter().sum();
        (min, sum as f64 / totals.len() as f64, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jid(origin: usize, seq: usize) -> JobId {
        JobId { origin, seq }
    }

    #[test]
    fn remote_messages_count_at_both_sides() {
        let mut ledger = MessageLedger::new(3);
        // Origin 0 negotiates with candidate 2: negotiate + reply.
        ledger.record(MessageType::Negotiate, 0, 2);
        ledger.record(MessageType::Reply, 0, 2);
        // Accepted: dispatch + completion.
        ledger.record(MessageType::JobSubmission, 0, 2);
        ledger.record(MessageType::JobCompletion, 0, 2);
        ledger.finish_job(jid(0, 0), 4);

        assert_eq!(ledger.gfa(0).local, 4);
        assert_eq!(ledger.gfa(0).remote, 0);
        assert_eq!(ledger.gfa(2).remote, 4);
        assert_eq!(ledger.gfa(2).local, 0);
        assert_eq!(ledger.gfa(1).total(), 0);
        assert_eq!(ledger.total_messages(), 4);
        assert_eq!(ledger.per_job_summary(), (4, 4.0, 4));
        assert_eq!(ledger.per_gfa_summary(), (0, 8.0 / 3.0, 4));
    }

    #[test]
    fn self_negotiation_counts_as_local_only() {
        let mut ledger = MessageLedger::new(2);
        ledger.record(MessageType::Negotiate, 1, 1);
        ledger.record(MessageType::Reply, 1, 1);
        ledger.finish_job(jid(1, 0), 2);
        assert_eq!(ledger.gfa(1).local, 2);
        assert_eq!(ledger.gfa(1).remote, 0);
        assert_eq!(ledger.total_messages(), 2);
    }

    #[test]
    fn per_job_and_per_gfa_summaries() {
        let mut ledger = MessageLedger::new(2);
        ledger.finish_job(jid(0, 0), 2);
        ledger.finish_job(jid(0, 1), 6);
        ledger.finish_job(jid(1, 0), 4);
        let (min, mean, max) = ledger.per_job_summary();
        assert_eq!((min, max), (2, 6));
        assert!((mean - 4.0).abs() < 1e-12);
        // Empty ledger edge cases.
        let empty = MessageLedger::new(0);
        assert_eq!(empty.per_gfa_summary(), (0, 0.0, 0));
        assert_eq!(MessageLedger::new(1).per_job_summary(), (0, 0.0, 0));
    }

    #[test]
    fn type_breakdown_is_tracked() {
        let mut ledger = MessageLedger::new(2);
        ledger.record(MessageType::Negotiate, 0, 1);
        ledger.record(MessageType::Negotiate, 0, 1);
        ledger.record(MessageType::Reply, 0, 1);
        assert_eq!(ledger.gfa(0).by_type[0], 2);
        assert_eq!(ledger.gfa(0).by_type[1], 1);
        assert_eq!(ledger.gfa(1).by_type[0], 2);
        assert_eq!(MessageType::ALL.len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown GFA")]
    fn out_of_range_gfa_panics() {
        let mut ledger = MessageLedger::new(1);
        ledger.record(MessageType::Negotiate, 0, 5);
    }
}
