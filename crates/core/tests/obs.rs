//! Observability-inertness coverage: arming the span collector and the
//! handler profiler must be *provably* invisible to a run — full
//! `RunDigest` (outcomes **and** traffic chains) and the entire metrics
//! registry bit-identical to the sinks-absent run — on every directory
//! backend, with churn and network faults active.  Sinks are identity, not
//! configuration: two runs differing only in armed sinks are the same run.
//!
//! The suite also pins the export surface: an armed run's Chrome Trace
//! document parses, uses only valid phases, and keeps per-(pid, tid)
//! timestamps non-decreasing (a structural property of the exporter's
//! sort, asserted here end to end on real federation spans).

use std::cell::RefCell;
use std::rc::Rc;

use grid_cluster::ResourceSpec;
use grid_federation_core::{
    ChurnConfig, DirectoryBackend, FederationBuilder, FederationConfig, FederationReport,
    NetworkFaultConfig, ProfileTable, SchedulingMode, SpanCollector,
};
use grid_obs::json::{parse, Json};
use grid_workload::{Job, JobId, Strategy, UserId};
use proptest::prelude::*;

const DURATION: f64 = 30_000.0;

const BACKENDS: [DirectoryBackend; 3] = [
    DirectoryBackend::Ideal,
    DirectoryBackend::Chord,
    DirectoryBackend::Maan,
];

fn resources(n: usize) -> Vec<ResourceSpec> {
    (0..n)
        .map(|i| {
            ResourceSpec::new(
                "cluster",
                32,
                500.0 + 100.0 * i as f64,
                1.0 + 0.5 * i as f64,
                2.0,
            )
        })
        .collect()
}

/// A deterministic workload with remote negotiations on every GFA.
fn workloads(n: usize, jobs_per_gfa: usize) -> Vec<Vec<Job>> {
    (0..n)
        .map(|origin| {
            (0..jobs_per_gfa)
                .map(|seq| {
                    let submit = 10.0 + 900.0 * seq as f64 + 17.0 * origin as f64;
                    let mips = 500.0 + 100.0 * origin as f64;
                    let mut job = Job::from_runtime(
                        JobId { origin, seq },
                        UserId { origin, local: seq % 4 },
                        submit,
                        4,
                        300.0,
                        mips,
                        0.10,
                    );
                    job.qos.strategy = if seq % 2 == 0 { Strategy::Ofc } else { Strategy::Oft };
                    job
                })
                .collect()
        })
        .collect()
}

fn moderate_churn() -> ChurnConfig {
    ChurnConfig {
        mean_uptime: 12_000.0,
        mean_downtime: 3_000.0,
        crash_fraction: 0.5,
        stabilization_interval: 1_200.0,
        replication: 3,
        horizon: DURATION,
        ..ChurnConfig::default()
    }
}

fn config(
    backend: DirectoryBackend,
    churn: Option<ChurnConfig>,
    network: Option<NetworkFaultConfig>,
    seed: u64,
) -> FederationConfig {
    FederationConfig {
        mode: SchedulingMode::Economy,
        directory: backend,
        seed,
        utilization_horizon: Some(DURATION),
        churn,
        network,
        ..FederationConfig::default()
    }
}

/// The pair of shared sinks an armed run hands back for inspection.
type Sinks = (Rc<RefCell<SpanCollector>>, Rc<RefCell<ProfileTable>>);

/// Runs one federation; when `armed`, both observability sinks are attached
/// and returned alongside the report.
fn run(
    n: usize,
    jobs_per_gfa: usize,
    cfg: FederationConfig,
    armed: bool,
) -> (FederationReport, Option<Sinks>) {
    let mut builder = FederationBuilder::new(resources(n))
        .workloads(workloads(n, jobs_per_gfa))
        .config(cfg);
    let sinks = armed.then(|| {
        (
            Rc::new(RefCell::new(SpanCollector::new())),
            Rc::new(RefCell::new(ProfileTable::new())),
        )
    });
    if let Some((tracer, profiler)) = &sinks {
        builder = builder.tracer(Rc::clone(tracer)).profiler(Rc::clone(profiler));
    }
    (builder.run(), sinks)
}

/// The tentpole's hard constraint, exhaustively: on every backend, with
/// churn and network faults in every combination, the armed run's full
/// digest *and* metrics registry are bit-identical to the unarmed run's —
/// while the sinks demonstrably saw the run (spans and profiled events).
#[test]
fn armed_sinks_are_digest_inert_on_every_backend_under_churn_and_faults() {
    for backend in BACKENDS {
        for (churn, network) in [
            (None, None),
            (Some(moderate_churn()), None),
            (None, Some(NetworkFaultConfig::moderate())),
            (Some(moderate_churn()), Some(NetworkFaultConfig::moderate())),
        ] {
            let cfg = config(backend, churn.clone(), network, 0xC0FFEE);
            let (unarmed, _) = run(6, 24, cfg.clone(), false);
            let (armed, sinks) = run(6, 24, cfg, true);
            let label = format!(
                "{backend:?} churn={} network={}",
                churn.is_some(),
                network.is_some()
            );
            assert_eq!(
                unarmed.digest, armed.digest,
                "{label}: arming sinks must not perturb the run digest"
            );
            assert_eq!(
                unarmed.metrics, armed.metrics,
                "{label}: the metrics registry must record identically either way"
            );
            let (tracer, profiler) = sinks.expect("armed run returns its sinks");
            assert!(
                !tracer.borrow().is_empty(),
                "{label}: the armed collector must have seen spans"
            );
            assert!(
                profiler.borrow().total_events() > 0,
                "{label}: the armed profiler must have bracketed handlers"
            );
        }
    }
}

/// An armed run's Chrome Trace export parses, uses only the phases the
/// exporter emits, and every (pid, tid) track's timestamps are
/// non-decreasing — on a run where churn *and* network faults reorder and
/// retransmit traffic, the worst case for the exporter's sort.
#[test]
fn chrome_trace_export_is_valid_and_per_track_monotone() {
    let cfg = config(
        DirectoryBackend::Chord,
        Some(moderate_churn()),
        Some(NetworkFaultConfig::moderate()),
        0xC0FFEE,
    );
    let (report, sinks) = run(6, 24, cfg, true);
    let (tracer, _) = sinks.expect("armed");
    let doc = tracer.borrow().to_chrome_trace();
    let parsed = parse(&doc).expect("the Chrome Trace document must parse as JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents must be an array");
    assert!(!events.is_empty(), "a real run must emit spans");

    let gfas = report.resources.len() as f64;
    let mut last: Vec<((u64, u64), f64)> = Vec::new();
    let mut complete = 0usize;
    let mut flow_starts = 0usize;
    let mut flow_finishes = 0usize;
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("every event has ph");
        match ph {
            "M" => continue,
            "X" => complete += 1,
            "s" => flow_starts += 1,
            "f" => flow_finishes += 1,
            other => panic!("unexpected phase {other:?}"),
        }
        let pid = event.get("pid").and_then(Json::as_f64).expect("pid");
        let tid = event.get("tid").and_then(Json::as_f64).expect("tid");
        assert!(pid >= 0.0 && pid < gfas, "pid {pid} outside the federation");
        assert!(tid <= 3.0, "tid {tid} is not a known span track");
        let ts = event.get("ts").and_then(Json::as_f64).expect("ts");
        let key = (pid as u64, tid as u64);
        match last.iter_mut().find(|(k, _)| *k == key) {
            Some((_, prev)) => {
                assert!(ts >= *prev, "track {key:?} went backwards: {ts} < {prev}");
                *prev = ts;
            }
            None => last.push((key, ts)),
        }
        if ph == "X" {
            let dur = event.get("dur").and_then(Json::as_f64).expect("dur");
            assert!(dur >= 0.0, "negative span duration");
        }
    }
    assert!(complete > 0, "lifecycle/negotiation spans expected");
    assert!(
        flow_starts > 0 && flow_finishes > 0,
        "cross-GFA dispatch flows expected in a federated run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomised interleavings: whatever the seed, backend and fault mix,
    /// the armed and unarmed runs remain bit-identical.  Small federations
    /// keep the 8 cases fast while still exercising remote negotiation.
    #[test]
    fn armed_and_unarmed_runs_agree_for_any_seed(
        seed in any::<u64>(),
        backend_index in 0usize..3,
        with_churn in any::<bool>(),
        with_network in any::<bool>(),
    ) {
        let cfg = config(
            BACKENDS[backend_index],
            with_churn.then(moderate_churn),
            with_network.then(NetworkFaultConfig::moderate),
            seed,
        );
        let (unarmed, _) = run(4, 10, cfg.clone(), false);
        let (armed, _) = run(4, 10, cfg, true);
        prop_assert_eq!(unarmed.digest, armed.digest);
        prop_assert_eq!(unarmed.metrics, armed.metrics);
    }
}
