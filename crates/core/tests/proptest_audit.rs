//! Property-based tests for the hash-chained audit ledger.
//!
//! The differential suites compare whole runs by a single `RunDigest`, so
//! the ledger must be *order-sensitive* (a reordered history is a different
//! history) and *collision-resistant on adjacent mutations*: swapping two
//! neighbouring charges, duplicating one, or dropping one must change the
//! digest.  These are exactly the edits a subtle scheduling bug would make
//! to a run's charge history, so they are the mutations the properties pin.

use grid_federation_core::{AuditLedger, MessageType};
use proptest::prelude::*;

const GFAS: usize = 4;

/// One replayable charge record, so histories can be permuted and mutated
/// before being folded into a fresh ledger.
#[derive(Debug, Clone, PartialEq)]
enum Charge {
    Message { ty: MessageType, origin: usize, counterpart: usize },
    Payment { payer: usize, payee: usize, amount: f64 },
    Directory { gfa: usize, messages: u64 },
    Publish { gfa: usize, messages: u64 },
}

impl Charge {
    fn apply(&self, ledger: &mut AuditLedger) {
        match *self {
            Charge::Message { ty, origin, counterpart } => {
                ledger.record_message(ty, origin, counterpart);
            }
            Charge::Payment { payer, payee, amount } => {
                ledger.record_payment(payer, payee, amount);
            }
            Charge::Directory { gfa, messages } => ledger.record_directory(gfa, messages),
            Charge::Publish { gfa, messages } => ledger.record_publish(gfa, messages),
        }
    }

    /// The chain this charge lands in: `(gfa, lands_in_outcome_chain)`.
    /// Payments fold into the payer's outcome chain; everything else folds
    /// into a traffic chain.
    fn chain(&self) -> (usize, bool) {
        match *self {
            Charge::Message { origin, .. } => (origin, false),
            Charge::Payment { payer, .. } => (payer, true),
            Charge::Directory { gfa, .. } | Charge::Publish { gfa, .. } => (gfa, false),
        }
    }
}

fn replay(history: &[Charge]) -> AuditLedger {
    let mut ledger = AuditLedger::new(GFAS);
    for charge in history {
        charge.apply(&mut ledger);
    }
    ledger
}

fn charge_strategy() -> impl Strategy<Value = Charge> {
    (0u32..7, 0..GFAS, 0..GFAS, 0.01f64..500.0, 1u64..64).prop_map(
        |(kind, a, b, amount, messages)| match kind {
            0 => Charge::Message { ty: MessageType::Negotiate, origin: a, counterpart: b },
            1 => Charge::Message { ty: MessageType::Reply, origin: a, counterpart: b },
            2 => Charge::Message { ty: MessageType::JobSubmission, origin: a, counterpart: b },
            3 => Charge::Message { ty: MessageType::JobCompletion, origin: a, counterpart: b },
            4 => Charge::Payment { payer: a, payee: b, amount },
            5 => Charge::Directory { gfa: a, messages },
            _ => Charge::Publish { gfa: a, messages },
        },
    )
}

fn history_strategy() -> impl Strategy<Value = Vec<Charge>> {
    proptest::collection::vec(charge_strategy(), 2..40)
}

proptest! {
    /// Replaying the same history twice produces the same digest: the
    /// ledger is a pure function of the charge sequence.
    #[test]
    fn replay_is_deterministic(history in history_strategy()) {
        prop_assert_eq!(replay(&history).digest(), replay(&history).digest());
    }

    /// Swapping two *adjacent, distinct* charges that land in the same
    /// chain changes the digest: the chains commit to record order, not
    /// just the multiset of records.
    #[test]
    fn adjacent_swap_changes_the_digest(
        history in history_strategy(),
        at in 0usize..64,
    ) {
        let base = replay(&history).digest();
        let mut swapped = history.clone();
        let i = at % (swapped.len() - 1);
        swapped.swap(i, i + 1);
        // A swap is only observable when the two records differ and land in
        // the same chain; across different chains the histories are
        // equivalent by construction.
        if swapped[i].chain() == swapped[i + 1].chain() {
            if swapped[i] != swapped[i + 1] {
                prop_assert_ne!(replay(&swapped).digest().full, base.full);
            }
        } else {
            prop_assert_eq!(replay(&swapped).digest(), base);
        }
    }

    /// Duplicating any single charge changes the digest (and the entry
    /// count, which the run-level digest also carries).
    #[test]
    fn duplicating_one_charge_changes_the_digest(
        history in history_strategy(),
        at in 0usize..64,
    ) {
        let base = replay(&history).digest();
        let mut duped = history.clone();
        let i = at % duped.len();
        let extra = duped[i].clone();
        duped.insert(i, extra);
        let mutated = replay(&duped).digest();
        prop_assert_ne!(mutated.full, base.full);
        prop_assert_eq!(mutated.entries, base.entries + 1);
    }

    /// Dropping any single charge changes the digest.
    #[test]
    fn dropping_one_charge_changes_the_digest(
        history in history_strategy(),
        at in 0usize..64,
    ) {
        let base = replay(&history).digest();
        let mut dropped = history.clone();
        dropped.remove(at % dropped.len());
        prop_assert_ne!(replay(&dropped).digest().full, base.full);
    }

    /// Payments land in the outcome digest; pure traffic charges never do.
    #[test]
    fn outcome_digest_tracks_payments_and_ignores_traffic(history in history_strategy()) {
        let ledger = replay(&history);
        let traffic_only: Vec<Charge> = history
            .iter()
            .filter(|c| !matches!(c, Charge::Payment { .. }))
            .cloned()
            .collect();
        let payments: Vec<Charge> = history
            .iter()
            .filter(|c| matches!(c, Charge::Payment { .. }))
            .cloned()
            .collect();
        // Stripping traffic leaves the outcome digest untouched…
        prop_assert_eq!(replay(&payments).digest().outcomes, ledger.digest().outcomes);
        // …and a traffic-only history has the empty outcome digest.
        prop_assert_eq!(
            replay(&traffic_only).digest().outcomes,
            AuditLedger::new(GFAS).digest().outcomes
        );
    }

    /// Every replayed ledger stays witness-consistent — the sentry's chain
    /// check never fires on an honestly-built history.
    #[test]
    fn honest_histories_are_always_consistent(history in history_strategy()) {
        prop_assert!(replay(&history).is_consistent());
    }
}
