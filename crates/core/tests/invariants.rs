//! Invariant-checker coverage (the `invariants` feature).
//!
//! Two kinds of test live here: end-to-end runs proving a healthy
//! federation passes every per-event check, and deliberately-corrupting
//! test doubles — a bank that leaks one Grid Dollar, a directory that
//! rewinds its epoch, an audit ledger with a tampered chain — proving each
//! invariant actually fires.
#![cfg(feature = "invariants")]

use grid_cluster::ResourceSpec;
use grid_des::DedupWindow;
use grid_directory::{AnyDirectory, FederationDirectory, Quote};
use grid_federation_core::{
    run_federation, AuditLedger, ChurnConfig, DirectoryBackend, ExecutionOutcome,
    FederationConfig, GridBank, InvariantSentry, JobRecord, MessageLedger, MessageType,
    MetricsRegistry, SchedulingMode, SharedState,
};
use grid_workload::{Job, JobId, Strategy, UserId};

fn healthy_state() -> (GridBank, MessageLedger, AnyDirectory, AuditLedger) {
    let mut bank = GridBank::new(3);
    bank.pay(0, 1, 40.0);
    bank.pay(2, 0, 2.5);
    let mut ledger = MessageLedger::new(3);
    ledger.record_directory(0, 4, 0.2);
    let mut dir = DirectoryBackend::Ideal.build(3, 0xBEEF);
    let _ = dir.subscribe(Quote {
        gfa: 0,
        processors: 16,
        mips: 500.0,
        bandwidth: 1.0,
        price: 2.0,
    });
    let mut audit = AuditLedger::new(3);
    audit.record_payment(0, 1, 40.0);
    audit.record_payment(2, 0, 2.5);
    audit.record_directory(0, 4);
    (bank, ledger, dir, audit)
}

#[test]
fn healthy_state_passes_repeated_checks() {
    let (bank, ledger, dir, audit) = healthy_state();
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    sentry.check(10.0, &bank, &ledger, &dir, &audit, &[], None);
    sentry.check(10.0, &bank, &ledger, &dir, &audit, &[], None); // equal time is fine
    assert_eq!(sentry.checks(), 3);
}

#[test]
#[should_panic(expected = "Grid Dollars leaked")]
fn leaked_grid_dollar_fires_conservation() {
    let (mut bank, ledger, dir, audit) = healthy_state();
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    // The corrupting double credits an owner without debiting any user.
    bank.corrupt_leak(1, 1.0);
    sentry.check(1.0, &bank, &ledger, &dir, &audit, &[], None);
}

#[test]
#[should_panic(expected = "bank volume shrank")]
fn shrinking_volume_fires_monotonicity() {
    let (bank, ledger, dir, audit) = healthy_state();
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    // A *fresh* bank stands in for one that forgot recorded payments.
    let empty = GridBank::new(3);
    sentry.check(1.0, &empty, &ledger, &dir, &audit, &[], None);
}

#[test]
#[should_panic(expected = "time ran backwards")]
fn reordered_check_fires_time_monotonicity() {
    let (bank, ledger, dir, audit) = healthy_state();
    let mut sentry = InvariantSentry::new();
    sentry.check(10.0, &bank, &ledger, &dir, &audit, &[], None);
    sentry.check(5.0, &bank, &ledger, &dir, &audit, &[], None);
}

#[test]
#[should_panic(expected = "message counters ran backwards")]
fn forgotten_traffic_fires_ledger_monotonicity() {
    let (bank, ledger, dir, audit) = healthy_state();
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    let empty = MessageLedger::new(3);
    sentry.check(1.0, &bank, &empty, &dir, &audit, &[], None);
}

#[test]
#[should_panic(expected = "directory epoch rewound")]
fn epoch_rewind_fires_on_every_backend() {
    let (bank, ledger, mut dir, audit) = healthy_state();
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    // The corrupting double forgets every mutation's epoch bump.
    dir.corrupt_epoch_rewind();
    sentry.check(1.0, &bank, &ledger, &dir, &audit, &[], None);
}

#[test]
#[should_panic(expected = "audit chain corrupted")]
fn tampered_audit_chain_fires_consistency() {
    let (bank, ledger, dir, mut audit) = healthy_state();
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    // The corrupting double rewrites a chain digest out of band, leaving
    // its witness stale — exactly the tamper case the chains exist to catch.
    audit.corrupt_chain(1);
    sentry.check(1.0, &bank, &ledger, &dir, &audit, &[], None);
}

#[test]
#[should_panic(expected = "audit records vanished")]
fn forgotten_audit_records_fire_monotonicity() {
    let (bank, ledger, dir, audit) = healthy_state();
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    // A fresh ledger stands in for one that dropped audited records.
    let empty = AuditLedger::new(3);
    sentry.check(1.0, &bank, &ledger, &dir, &empty, &[], None);
}

#[test]
fn audit_records_keep_the_sentry_green_as_they_accumulate() {
    let (bank, ledger, dir, mut audit) = healthy_state();
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    audit.record_message(MessageType::Negotiate, 1, 2);
    audit.record_publish(2, 3);
    sentry.check(1.0, &bank, &ledger, &dir, &audit, &[], None);
    assert_eq!(sentry.checks(), 2);
}

/// An overlay directory with one published quote, for the churn doubles.
fn overlay_state(backend: DirectoryBackend) -> (GridBank, MessageLedger, AnyDirectory, AuditLedger) {
    let (bank, ledger, _, audit) = healthy_state();
    let mut dir = backend.build(4, 0xBEEF);
    let _ = dir.subscribe(Quote {
        gfa: 0,
        processors: 16,
        mips: 500.0,
        bandwidth: 1.0,
        price: 2.0,
    });
    (bank, ledger, dir, audit)
}

#[test]
#[should_panic(expected = "membership epoch rewound")]
fn membership_rewind_fires_monotonicity() {
    let (bank, ledger, mut dir, audit) = overlay_state(DirectoryBackend::Maan);
    // A graceful departure bumps the membership epoch past zero.
    let _ = dir.node_depart(1, true);
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    // The corrupting double snaps the epoch back to the pre-churn ring.
    dir.corrupt_membership_rewind();
    sentry.check(1.0, &bank, &ledger, &dir, &audit, &[], None);
}

#[test]
#[should_panic(expected = "replication factor exceeded")]
fn overreplication_fires_replication_bound() {
    let (bank, ledger, mut dir, audit) = overlay_state(DirectoryBackend::Maan);
    dir.set_replication(2);
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    // The corrupting double piles more copies onto an entry than k allows.
    dir.corrupt_overreplicate();
    sentry.check(1.0, &bank, &ledger, &dir, &audit, &[], None);
}

#[test]
#[should_panic(expected = "departed node still serves")]
fn serving_from_departed_node_fires_liveness() {
    let (bank, ledger, mut dir, audit) = overlay_state(DirectoryBackend::Chord);
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    // The corrupting double marks the quote's owner down without the
    // handoff/repair that a real departure performs.
    dir.corrupt_serve_departed();
    sentry.check(1.0, &bank, &ledger, &dir, &audit, &[], None);
}

/// End to end: a churning federation — departures, crashes, rejoins,
/// stabilization and replica repair — keeps every invariant green on
/// the genuinely distributed backend.
#[test]
fn churning_federation_passes_under_invariant_checking() {
    let resources = vec![
        ResourceSpec::new("slow-cheap", 32, 500.0, 1.0, 2.0),
        ResourceSpec::new("fast-pricey", 32, 1_000.0, 2.0, 4.0),
        ResourceSpec::new("middling", 32, 750.0, 1.5, 3.0),
    ];
    let workloads = vec![
        vec![job(0, 0, 10.0, Strategy::Ofc), job(0, 1, 40.0, Strategy::Oft)],
        vec![job(1, 0, 25.0, Strategy::Ofc)],
        vec![job(2, 0, 55.0, Strategy::Oft)],
    ];
    let config = FederationConfig {
        mode: SchedulingMode::Economy,
        directory: DirectoryBackend::Maan,
        seed: 0xFED5EED,
        churn: Some(ChurnConfig {
            mean_uptime: 1_800.0,
            mean_downtime: 900.0,
            crash_fraction: 0.5,
            stabilization_interval: 600.0,
            replication: 2,
            horizon: 7_200.0,
            ..ChurnConfig::default()
        }),
        ..FederationConfig::default()
    };
    let report = run_federation(resources, workloads, config);
    assert!(
        report.churn.events() > 0,
        "the churn model must actually inject failures for this test to bite"
    );
    assert!(report.bank.is_balanced());
    assert!(report.digest.entries > 0);
}

#[test]
fn epoch_rewind_double_works_on_overlay_backends() {
    for backend in [DirectoryBackend::Chord, DirectoryBackend::Maan] {
        let mut dir = backend.build(4, 0xF00D);
        let _ = dir.subscribe(Quote {
            gfa: 1,
            processors: 8,
            mips: 700.0,
            bandwidth: 1.0,
            price: 3.0,
        });
        assert!(dir.epoch() > 0, "{backend:?}: mutation must bump the epoch");
        dir.corrupt_epoch_rewind();
        assert_eq!(dir.epoch(), 0, "{backend:?}: double must rewind the epoch");
    }
}

/// A minimal shared state with one concluded job, for the at-most-once
/// doubles.
fn shared_with_one_job() -> SharedState {
    let mut shared = SharedState {
        directory: DirectoryBackend::Ideal.build(2, 0xBEEF),
        bank: GridBank::new(2),
        ledger: MessageLedger::new(2),
        jobs: Vec::new(),
        resource_snapshots: vec![None; 2],
        remote_processed: vec![0; 2],
        audit: AuditLedger::new(2),
        net: None,
        metrics: MetricsRegistry::new(2),
        tracer: None,
        invariants: InvariantSentry::new(),
    };
    let id = JobId { origin: 0, seq: 0 };
    shared.conclude_job(id, 4, 2);
    shared.push_job_record(JobRecord {
        id,
        origin: 0,
        strategy: Strategy::Ofc,
        submit: 0.0,
        processors: 4,
        deadline: 600.0,
        budget: 100.0,
        expected_local_response: 120.0,
        expected_local_cost: 8.0,
        messages: 4,
        directory_messages: 2,
        outcome: ExecutionOutcome::Rejected,
    });
    shared
}

#[test]
#[should_panic(expected = "concluded twice")]
fn replayed_delivery_fires_at_most_once_conclude() {
    let mut shared = shared_with_one_job();
    let mut sentry = InvariantSentry::new();
    sentry.check(
        0.0,
        &shared.bank,
        &shared.ledger,
        &shared.directory,
        &shared.audit,
        &shared.jobs,
        None,
    );
    // The corrupting double replays the last concluded job, exactly as a
    // duplicated completion delivery slipping past the dedup window would.
    shared.corrupt_replay_message();
    sentry.check(
        1.0,
        &shared.bank,
        &shared.ledger,
        &shared.directory,
        &shared.audit,
        &shared.jobs,
        None,
    );
}

#[test]
#[should_panic(expected = "recorded twice")]
fn duplicated_record_fires_at_most_once_record() {
    let shared = shared_with_one_job();
    let mut sentry = InvariantSentry::new();
    // Same record id twice in the record stream, with the per-job ledger
    // totals untouched: only the record-side scan can catch this one.
    let mut jobs = shared.jobs.clone();
    jobs.push(jobs[0].clone());
    sentry.check(
        0.0,
        &shared.bank,
        &shared.ledger,
        &shared.directory,
        &shared.audit,
        &jobs,
        None,
    );
}

#[test]
#[should_panic(expected = "dedup windows rewound")]
fn dedup_rewind_fires_monotonicity() {
    let (bank, ledger, dir, audit) = healthy_state();
    let mut window = DedupWindow::default();
    assert!(window.admit(200), "a fresh window admits any new sequence");
    assert!(window.base() > 0, "admitting far ahead slides the window");
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], Some(window.base()));
    // The corrupting double snaps the window back to its initial state, so
    // already-admitted envelopes would be admitted again.
    window.corrupt_rewind();
    sentry.check(1.0, &bank, &ledger, &dir, &audit, &[], Some(window.base()));
}

#[test]
fn advancing_dedup_windows_keep_the_sentry_green() {
    let (bank, ledger, dir, audit) = healthy_state();
    let mut sentry = InvariantSentry::new();
    sentry.check(0.0, &bank, &ledger, &dir, &audit, &[], None);
    sentry.check(1.0, &bank, &ledger, &dir, &audit, &[], Some(0));
    sentry.check(2.0, &bank, &ledger, &dir, &audit, &[], Some(64));
    sentry.check(3.0, &bank, &ledger, &dir, &audit, &[], Some(64));
    // A reliable-transport check between network checks is not a rewind.
    sentry.check(4.0, &bank, &ledger, &dir, &audit, &[], None);
    sentry.check(5.0, &bank, &ledger, &dir, &audit, &[], Some(128));
    assert_eq!(sentry.checks(), 6);
}

fn job(origin: usize, seq: usize, submit: f64, strategy: Strategy) -> Job {
    let mips = if origin == 0 { 500.0 } else { 1_000.0 };
    let mut j = Job::from_runtime(
        JobId { origin, seq },
        UserId { origin, local: seq % 4 },
        submit,
        4,
        120.0,
        mips,
        0.10,
    );
    j.qos.strategy = strategy;
    j
}

/// End to end: a real federation run executes the sentry after every
/// delivered event and finishes cleanly on every backend — the economy
/// workload conserves currency, keeps every counter monotone and leaves
/// the audit chains consistent.
#[test]
fn federation_runs_pass_under_invariant_checking() {
    for backend in [
        DirectoryBackend::Ideal,
        DirectoryBackend::Chord,
        DirectoryBackend::Maan,
    ] {
        let resources = vec![
            ResourceSpec::new("slow-cheap", 32, 500.0, 1.0, 2.0),
            ResourceSpec::new("fast-pricey", 32, 1_000.0, 2.0, 4.0),
        ];
        let workloads = vec![
            vec![
                job(0, 0, 10.0, Strategy::Ofc),
                job(0, 1, 40.0, Strategy::Oft),
            ],
            vec![job(1, 0, 25.0, Strategy::Ofc)],
        ];
        let config = FederationConfig {
            mode: SchedulingMode::Economy,
            directory: backend,
            seed: 0xFED5EED,
            ..FederationConfig::default()
        };
        let report = run_federation(resources, workloads, config);
        assert_eq!(
            report.jobs.len(),
            3,
            "{backend:?}: the run must process jobs for the sentry to see events"
        );
        assert!(report.bank.is_balanced());
        assert!(report.digest.entries > 0);
    }
}
