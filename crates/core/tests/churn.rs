//! Churn-model coverage: the zero-churn differential (an *inactive*
//! [`ChurnConfig`] must be indistinguishable, digest for digest, from no
//! churn config at all), determinism of the seeded failure process, and the
//! headline robustness claim — k-replicated MAAN entries keep ranking
//! lookups ≥ 99% successful under moderate churn, while k = 1 under pure
//! crashes visibly degrades and exercises the retry/fallback path.

use grid_cluster::ResourceSpec;
use grid_federation_core::{
    run_federation, ChurnConfig, DirectoryBackend, FederationConfig, FederationReport,
    SchedulingMode,
};
use grid_workload::{Job, JobId, Strategy, UserId};
use proptest::prelude::*;

const GFAS: usize = 6;
const DURATION: f64 = 50_000.0;

fn resources() -> Vec<ResourceSpec> {
    (0..GFAS)
        .map(|i| {
            ResourceSpec::new(
                "cluster",
                32,
                500.0 + 100.0 * i as f64,
                1.0 + 0.5 * i as f64,
                2.0,
            )
        })
        .collect()
}

/// A deterministic workload: every GFA submits a job every 1 250 seconds,
/// alternating OFC/OFT, so ranking queries keep arriving throughout the
/// churn horizon.
fn workloads() -> Vec<Vec<Job>> {
    (0..GFAS)
        .map(|origin| {
            (0..40)
                .map(|seq| {
                    let submit = 10.0 + 1_250.0 * seq as f64 + 17.0 * origin as f64;
                    let mips = 500.0 + 100.0 * origin as f64;
                    let mut job = Job::from_runtime(
                        JobId { origin, seq },
                        UserId { origin, local: seq % 4 },
                        submit,
                        4,
                        300.0,
                        mips,
                        0.10,
                    );
                    job.qos.strategy = if seq % 2 == 0 { Strategy::Ofc } else { Strategy::Oft };
                    job
                })
                .collect()
        })
        .collect()
}

fn run(backend: DirectoryBackend, churn: Option<ChurnConfig>, seed: u64) -> FederationReport {
    run_federation(
        resources(),
        workloads(),
        FederationConfig {
            mode: SchedulingMode::Economy,
            directory: backend,
            seed,
            utilization_horizon: Some(DURATION),
            churn,
            ..FederationConfig::default()
        },
    )
}

fn moderate_churn(replication: usize) -> ChurnConfig {
    ChurnConfig {
        mean_uptime: 20_000.0,
        mean_downtime: 5_000.0,
        crash_fraction: 0.5,
        stabilization_interval: 1_200.0,
        replication,
        horizon: DURATION,
        ..ChurnConfig::default()
    }
}

const BACKENDS: [DirectoryBackend; 3] = [
    DirectoryBackend::Ideal,
    DirectoryBackend::Chord,
    DirectoryBackend::Maan,
];

/// The zero-churn differential: a churn config whose failure process never
/// fires (mean uptime 0 disables it) is bit-identical — full run digest,
/// not just outcomes — to the static-ring path, even with a replication
/// factor configured, on every backend.
#[test]
fn inactive_churn_config_is_digest_identical_to_none() {
    for backend in BACKENDS {
        let baseline = run(backend, None, 0xC0FFEE);
        let inactive = run(
            backend,
            Some(ChurnConfig {
                mean_uptime: 0.0,
                replication: 3,
                ..ChurnConfig::default()
            }),
            0xC0FFEE,
        );
        assert_eq!(
            baseline.digest, inactive.digest,
            "{backend:?}: an inactive churn config must not perturb the run"
        );
        assert_eq!(inactive.churn.events(), 0);
        assert_eq!(inactive.lookup_success_rate(), 1.0);
    }
}

/// The seeded failure process is part of the deterministic simulation:
/// identical configs replay to identical digests, churn summary included.
#[test]
fn churn_runs_are_deterministic() {
    for backend in [DirectoryBackend::Chord, DirectoryBackend::Maan] {
        let a = run(backend, Some(moderate_churn(2)), 0xFEED);
        let b = run(backend, Some(moderate_churn(2)), 0xFEED);
        assert_eq!(a.digest, b.digest, "{backend:?}");
        assert_eq!(a.churn, b.churn, "{backend:?}");
        assert!(a.churn.events() > 0, "{backend:?}: churn must actually fire");
    }
}

/// The headline claim: with k = 3 replicas and stabilization repairing the
/// overlay, moderate churn leaves at least 99% of ranking lookups
/// answerable on both overlay backends.
#[test]
fn k3_replication_keeps_lookups_available_under_moderate_churn() {
    for backend in [DirectoryBackend::Chord, DirectoryBackend::Maan] {
        let report = run(backend, Some(moderate_churn(3)), 0xFEED);
        assert!(report.churn.events() > 0, "{backend:?}");
        let rate = report.lookup_success_rate();
        assert!(
            rate >= 0.99,
            "{backend:?}: lookup success {rate} under moderate churn with k=3"
        );
        assert!(report.bank.is_balanced(), "{backend:?}");
    }
}

/// Under pure crashes with no replication the MAAN overlay visibly
/// degrades between stabilization rounds: lookups fault, the GFAs retry
/// with backoff, and the schedule still completes every job admission
/// decision (degradation, not deadlock).
#[test]
fn unreplicated_crashes_exercise_retry_and_fallback() {
    let churn = ChurnConfig {
        mean_uptime: 6_000.0,
        mean_downtime: 10_000.0,
        crash_fraction: 1.0,
        stabilization_interval: 8_000.0,
        replication: 1,
        horizon: DURATION,
        ..ChurnConfig::default()
    };
    let report = run(DirectoryBackend::Maan, Some(churn), 0xFEED);
    assert!(report.churn.crashes > 0);
    assert_eq!(report.churn.graceful_leaves, 0);
    assert!(
        report.churn.lookup_faults > 0,
        "crashes with k=1 must produce unanswerable lookups"
    );
    assert!(report.churn.retries > 0, "faulted jobs must retry with backoff");
    assert_eq!(
        report.jobs.len(),
        GFAS * 40,
        "every submitted job must still reach an admission decision"
    );
    assert!(report.lookup_success_rate() < 1.0);
    // Stabilization repaired the ring: rounds ran and charged traffic.
    assert!(report.churn.stabilization_rounds > 0);
}

/// More replicas never hurt availability for the same failure sequence:
/// the churn chain depends only on the seed, so k = 3 must fault no more
/// often than k = 1.
#[test]
fn replication_is_monotone_in_availability() {
    let fault_count = |k: usize| {
        run(DirectoryBackend::Maan, Some(moderate_churn(k)), 0xFEED)
            .churn
            .lookup_faults
    };
    let (k1, k2, k3) = (fault_count(1), fault_count(2), fault_count(3));
    assert!(k3 <= k2 && k2 <= k1, "faults must not grow with k: {k1} {k2} {k3}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The zero-churn differential holds under scripted departures too:
    /// whatever `Depart`/`Reprice` events the script injects, an inactive
    /// churn config replays to the identical run digest.
    #[test]
    fn inactive_churn_is_invisible_under_scripted_departures(
        departing in proptest::collection::vec(0..GFAS, 0..3),
        when in 0.1f64..0.8,
        which in 0u32..3,
    ) {
        let backend = BACKENDS[which as usize];
        let mut unique = departing;
        unique.sort_unstable();
        unique.dedup();
        let departures: Vec<(usize, f64)> = unique
            .iter()
            .enumerate()
            .map(|(i, &gfa)| (gfa, DURATION * when + 500.0 * i as f64))
            .collect();
        let run_scripted = |churn: Option<ChurnConfig>| {
            run_federation(
                resources(),
                workloads(),
                FederationConfig {
                    mode: SchedulingMode::Economy,
                    directory: backend,
                    seed: 0xD1FF,
                    utilization_horizon: Some(DURATION),
                    departures: departures.clone(),
                    churn,
                    ..FederationConfig::default()
                },
            )
        };
        let baseline = run_scripted(None);
        let inactive = run_scripted(Some(ChurnConfig {
            mean_uptime: 0.0,
            replication: 2,
            ..ChurnConfig::default()
        }));
        prop_assert_eq!(baseline.digest, inactive.digest);
        prop_assert_eq!(inactive.churn.events(), 0);
    }
}
