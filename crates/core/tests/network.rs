//! Unreliable-network coverage: the reliable-transport differential (an
//! *inactive* [`NetworkFaultConfig`] must be indistinguishable, digest for
//! digest, from no network config at all), determinism of the seeded fault
//! layer, and the headline robustness claim — under moderate message loss,
//! jitter and duplication, timeout/retransmit negotiation and receiver-side
//! dedup keep every job outcome and balance **bit-identical** to the
//! lossless run, with the retransmit traffic visible in the ledgers.

use grid_cluster::ResourceSpec;
use grid_federation_core::{
    run_federation, DirectoryBackend, FederationConfig, FederationReport, Jitter,
    NetworkFaultConfig, SchedulingMode,
};
use grid_workload::{Job, JobId, Strategy, UserId};
use proptest::prelude::*;

const GFAS: usize = 6;
const DURATION: f64 = 50_000.0;

fn resources() -> Vec<ResourceSpec> {
    (0..GFAS)
        .map(|i| {
            ResourceSpec::new(
                "cluster",
                32,
                500.0 + 100.0 * i as f64,
                1.0 + 0.5 * i as f64,
                2.0,
            )
        })
        .collect()
}

/// A deterministic workload with plenty of remote negotiations: every GFA
/// submits a job every 1 250 seconds, alternating OFC/OFT.
fn workloads() -> Vec<Vec<Job>> {
    (0..GFAS)
        .map(|origin| {
            (0..40)
                .map(|seq| {
                    let submit = 10.0 + 1_250.0 * seq as f64 + 17.0 * origin as f64;
                    let mips = 500.0 + 100.0 * origin as f64;
                    let mut job = Job::from_runtime(
                        JobId { origin, seq },
                        UserId { origin, local: seq % 4 },
                        submit,
                        4,
                        300.0,
                        mips,
                        0.10,
                    );
                    job.qos.strategy = if seq % 2 == 0 { Strategy::Ofc } else { Strategy::Oft };
                    job
                })
                .collect()
        })
        .collect()
}

fn run(backend: DirectoryBackend, network: Option<NetworkFaultConfig>, seed: u64) -> FederationReport {
    run_federation(
        resources(),
        workloads(),
        FederationConfig {
            mode: SchedulingMode::Economy,
            directory: backend,
            seed,
            utilization_horizon: Some(DURATION),
            network,
            ..FederationConfig::default()
        },
    )
}

const BACKENDS: [DirectoryBackend; 3] = [
    DirectoryBackend::Ideal,
    DirectoryBackend::Chord,
    DirectoryBackend::Maan,
];

/// The reliable-transport differential: a fault config whose rates are all
/// zero (the default) is bit-identical — full run digest, not just
/// outcomes — to no network config at all, on every backend.
#[test]
fn inactive_network_config_is_digest_identical_to_none() {
    for backend in BACKENDS {
        let baseline = run(backend, None, 0xC0FFEE);
        let inactive = run(backend, Some(NetworkFaultConfig::default()), 0xC0FFEE);
        assert_eq!(
            baseline.digest, inactive.digest,
            "{backend:?}: an inactive fault config must not perturb the run"
        );
        assert!(
            inactive.network.is_quiet(),
            "{backend:?}: the reliable transport must report no fault traffic"
        );
        assert_eq!(baseline.network, inactive.network, "{backend:?}");
    }
}

/// The headline claim: under moderate faults (2% loss, exponential jitter,
/// 1% duplication) every job outcome and every balance is bit-identical to
/// the lossless run — the retransmit/duplicate traffic lands only in the
/// traffic chains, where it is visibly accounted.
#[test]
fn moderate_faults_keep_outcomes_bit_identical_to_lossless() {
    for backend in BACKENDS {
        let lossless = run(backend, None, 0xC0FFEE);
        let lossy = run(backend, Some(NetworkFaultConfig::moderate()), 0xC0FFEE);
        assert_eq!(
            lossless.digest.outcomes, lossy.digest.outcomes,
            "{backend:?}: outcomes and balances must survive the fault layer bit-identically"
        );
        assert_eq!(
            lossless.jobs.len(),
            lossy.jobs.len(),
            "{backend:?}: every negotiation must eventually complete"
        );
        assert!(lossy.bank.is_balanced(), "{backend:?}");
        assert!(
            lossy.network.enveloped > 0,
            "{backend:?}: protocol messages must travel enveloped"
        );
        assert!(
            lossy.network.retransmissions > 0,
            "{backend:?}: 2% loss over this workload must force retransmissions"
        );
        assert!(
            lossy.network.extra_messages() > 0,
            "{backend:?}: fault traffic must be charged"
        );
        assert_eq!(
            lossy.network.dedup_drops, lossy.network.duplicates,
            "{backend:?}: every in-flight duplicate must be delivered and deduplicated"
        );
        assert_ne!(
            lossless.digest, lossy.digest,
            "{backend:?}: the extra traffic must be visible in the full digest"
        );
        let base_traffic = lossless.messages.total_messages();
        let lossy_traffic = lossy.messages.total_messages();
        assert_eq!(
            lossy_traffic,
            base_traffic + lossy.network.retransmissions + lossy.network.duplicates,
            "{backend:?}: retransmit and duplicate charges must land in the negotiation class"
        );
    }
}

/// The seeded fault layer is part of the deterministic simulation:
/// identical configs replay to identical digests and fault telemetry.
#[test]
fn lossy_runs_are_deterministic() {
    for backend in [DirectoryBackend::Chord, DirectoryBackend::Maan] {
        let a = run(backend, Some(NetworkFaultConfig::moderate()), 0xFEED);
        let b = run(backend, Some(NetworkFaultConfig::moderate()), 0xFEED);
        assert_eq!(a.digest, b.digest, "{backend:?}");
        assert_eq!(a.network, b.network, "{backend:?}");
        assert!(a.network.retransmissions > 0, "{backend:?}");
    }
}

/// Fault severity moves the traffic knob monotonically on the same seed:
/// doubling the loss rate cannot reduce drop-forced retransmissions, and
/// outcomes stay pinned throughout.
#[test]
fn heavier_loss_means_more_retransmissions_same_outcomes() {
    let lossless = run(DirectoryBackend::Maan, None, 0xFEED);
    let mut last = 0;
    for drop in [0.01, 0.05, 0.10] {
        let cfg = NetworkFaultConfig {
            drop,
            ..NetworkFaultConfig::moderate()
        };
        let lossy = run(DirectoryBackend::Maan, Some(cfg), 0xFEED);
        assert_eq!(lossless.digest.outcomes, lossy.digest.outcomes, "drop={drop}");
        assert!(
            lossy.network.retransmissions >= last,
            "drop={drop}: retransmissions must not shrink as loss grows"
        );
        last = lossy.network.retransmissions;
    }
    assert!(last > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The reliable-transport differential holds across the whole zero-rate
    /// config family: whatever timeout, retransmit budget or reorder window
    /// is configured, a config with zero drop/duplicate rates and no jitter
    /// replays to the identical run digest on every backend.
    #[test]
    fn zero_rate_network_config_is_invisible(
        timeout in 1.0f64..120.0,
        max_retransmits in 1u32..12,
        reorder_window in 0.0f64..30.0,
        which in 0u32..3,
    ) {
        let backend = BACKENDS[which as usize];
        let baseline = run(backend, None, 0xD1FF);
        let inactive = run(
            backend,
            Some(NetworkFaultConfig {
                drop: 0.0,
                jitter: Jitter::None,
                duplicate: 0.0,
                reorder_window,
                timeout,
                max_retransmits,
            }),
            0xD1FF,
        );
        prop_assert_eq!(baseline.digest, inactive.digest);
        prop_assert!(inactive.network.is_quiet());
    }
}
