//! Differential property tests: the cursor/cache path vs. the
//! query-per-rank oracle, and the distributed MAAN store vs. the ideal
//! oracle.
//!
//! Random interleavings of `subscribe` / `unsubscribe` / `update_price`
//! mutations and ranking queries are driven against two identically-built
//! directories per backend: one serves every probe through [`QuoteCache`] +
//! [`RankCursor`] (the DBC loop's fast path), the other executes the
//! paper's query-per-rank model literally.  Every probe must return a
//! **bit-identical** [`TracedQuote`] — same quote, same message charge — and
//! at the end of each case the two directories must be indistinguishable
//! through their public telemetry (queries served, routed-lookup averages).
//!
//! A second differential pits the MAAN backend against the ideal backend
//! over the same interleavings: quotes must come out bit-identical (the
//! distributed range index never diverges from the central store), while
//! MAAN's message charges are merely required to be well-formed (≥ 1 per
//! served rank) — the traffic model is exactly where backends may differ.

use std::collections::BTreeMap;

use grid_directory::{
    AnyDirectory, DirectoryBackend, FederationDirectory, QuoteCache, Quote, RankCursor, RankOrder,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Subscribe { gfa: usize, mips: f64, price: f64 },
    Unsubscribe { gfa: usize },
    Reprice { gfa: usize, price: f64 },
    /// One "job": probe ranks `1..=ranks` of `order` from `origin`, exactly
    /// like the DBC loop walks its candidates.
    Query { origin: usize, fastest: bool, ranks: usize },
}

const GFAS: usize = 10;

fn op() -> impl Strategy<Value = Op> {
    (0u32..10, 0usize..GFAS, 0.05f64..40.0, 300.0f64..1_300.0, proptest::bool::ANY, 1usize..=GFAS + 2)
        .prop_map(|(kind, gfa, price, mips, fastest, ranks)| match kind {
            0 | 1 => Op::Subscribe { gfa, mips, price },
            2 => Op::Unsubscribe { gfa },
            3 | 4 => Op::Reprice { gfa, price },
            _ => Op::Query { origin: gfa, fastest, ranks },
        })
}

fn populated(backend: DirectoryBackend) -> AnyDirectory {
    let mut dir = backend.build(GFAS, 0xCAFE);
    for gfa in 0..GFAS {
        let _ = dir.subscribe(Quote {
            gfa,
            processors: 64,
            mips: 400.0 + 57.0 * ((gfa * 3) % GFAS) as f64,
            bandwidth: 1.0,
            price: 1.0 + 0.45 * ((gfa * 7) % GFAS) as f64,
        });
    }
    dir
}

fn drive(backend: DirectoryBackend, ops: &[Op]) {
    let mut cached = populated(backend);
    let mut oracle = populated(backend);
    // One quote cache per origin GFA, exactly as the federation holds them.
    let mut caches: BTreeMap<usize, QuoteCache> = BTreeMap::new();
    for (step, op) in ops.iter().copied().enumerate() {
        match op {
            Op::Subscribe { gfa, mips, price } => {
                let q = Quote { gfa, processors: 64, mips, bandwidth: 1.0, price };
                let _ = cached.subscribe(q);
                let _ = oracle.subscribe(q);
            }
            Op::Unsubscribe { gfa } => {
                let _ = cached.unsubscribe(gfa);
                let _ = oracle.unsubscribe(gfa);
            }
            Op::Reprice { gfa, price } => {
                let _ = cached.update_price(gfa, price);
                let _ = oracle.update_price(gfa, price);
            }
            Op::Query { origin, fastest, ranks } => {
                let order = if fastest { RankOrder::Fastest } else { RankOrder::Cheapest };
                let cache = caches.entry(origin).or_default();
                let mut cursor: Option<RankCursor> = None;
                for r in 1..=ranks {
                    let got = cache.probe(&cached, origin, order, r, &mut cursor);
                    let want = oracle.query_ranked(origin, order, r);
                    prop_assert_eq!(
                        got,
                        want,
                        "{:?} step {}: origin {} {:?} rank {} diverged",
                        backend,
                        step,
                        origin,
                        order,
                        r
                    );
                }
            }
        }
        prop_assert_eq!(cached.len(), oracle.len());
    }
    // The replayed telemetry keeps the two directories indistinguishable.
    prop_assert_eq!(cached.queries_served(), oracle.queries_served(), "{:?}", backend);
    prop_assert_eq!(
        cached.average_route_messages().to_bits(),
        oracle.average_route_messages().to_bits(),
        "{:?}: routed-lookup telemetry diverged",
        backend
    );
    prop_assert_eq!(cached.query_message_cost(), oracle.query_message_cost(), "{:?}", backend);
}

/// Applies one mutation op to a directory (queries are handled by callers).
fn apply_mutation(dir: &mut AnyDirectory, op: Op) {
    match op {
        Op::Subscribe { gfa, mips, price } => {
            let _ = dir.subscribe(Quote { gfa, processors: 64, mips, bandwidth: 1.0, price });
        }
        Op::Unsubscribe { gfa } => {
            let _ = dir.unsubscribe(gfa);
        }
        Op::Reprice { gfa, price } => {
            let _ = dir.update_price(gfa, price);
        }
        Op::Query { .. } => unreachable!("queries are driven by the caller"),
    }
}

/// The Maan-vs-Ideal differential: identical interleavings must resolve
/// identical quotes through the genuinely distributed store, with only the
/// message charges free to differ (MAAN's must still be well-formed: every
/// served rank costs at least one message, and rank-1 charges route).
fn drive_maan_vs_ideal(ops: &[Op]) {
    let mut maan = populated(DirectoryBackend::Maan);
    let mut ideal = populated(DirectoryBackend::Ideal);
    for (step, op) in ops.iter().copied().enumerate() {
        match op {
            Op::Query { origin, fastest, ranks } => {
                let order = if fastest { RankOrder::Fastest } else { RankOrder::Cheapest };
                for r in 1..=ranks {
                    let got = maan.query_ranked(origin, order, r);
                    let want = ideal.query_ranked(origin, order, r);
                    prop_assert_eq!(
                        got.quote,
                        want.quote,
                        "step {}: origin {} {:?} rank {}: distributed rank data diverged",
                        step,
                        origin,
                        order,
                        r
                    );
                    prop_assert!(
                        got.messages >= 1,
                        "step {}: a served MAAN query must cost at least one message",
                        step
                    );
                }
            }
            mutation => {
                apply_mutation(&mut maan, mutation);
                apply_mutation(&mut ideal, mutation);
            }
        }
        prop_assert_eq!(maan.len(), ideal.len());
        prop_assert_eq!(maan.is_empty(), ideal.is_empty());
    }
    // The ideal store never charges publish traffic; the distributed one
    // reports whatever its routed mutations cost (monotone, and positive as
    // soon as any mutation ran — the populated() build already subscribed).
    prop_assert_eq!(ideal.publish_messages_total(), 0);
    prop_assert!(maan.publish_messages_total() >= 2 * GFAS as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ideal backend: cursor-streamed rankings are bit-identical to the
    /// query-per-rank oracle under arbitrary mutation/query interleavings.
    #[test]
    fn ideal_cursor_path_matches_query_per_rank(ops in proptest::collection::vec(op(), 1..60)) {
        drive(DirectoryBackend::Ideal, &ops);
    }

    /// Chord backend: same property, with *measured* route hops replayed
    /// instead of the modelled `⌈log₂ n⌉`.
    #[test]
    fn chord_cursor_path_matches_query_per_rank(ops in proptest::collection::vec(op(), 1..60)) {
        drive(DirectoryBackend::Chord, &ops);
    }

    /// MAAN backend: the cursor/cache fast path is bit-identical to the
    /// query-per-rank oracle even though advances carry boundary-crossing
    /// charges and mutations rebuild the distributed walk index.
    #[test]
    fn maan_cursor_path_matches_query_per_rank(ops in proptest::collection::vec(op(), 1..60)) {
        drive(DirectoryBackend::Maan, &ops);
    }

    /// The distributed MAAN store resolves the same quotes as the central
    /// ideal store under arbitrary sub/unsub/reprice/query interleavings.
    #[test]
    fn maan_store_matches_ideal_store(ops in proptest::collection::vec(op(), 1..60)) {
        drive_maan_vs_ideal(&ops);
    }
}
