//! Trait-conformance suite for [`FederationDirectory`] implementations.
//!
//! Every check runs against **all three** backends (`Ideal`, `Chord`,
//! `Maan`) through the same generic harness, so the directories cannot
//! drift apart in ranking semantics, mutation behaviour (`subscribe` /
//! `unsubscribe` / `update_price`) or traced-query bookkeeping.  Backends
//! are allowed to differ only in the *message costs* they report — the
//! query-side charges and, for the distributed MAAN index, the publish-side
//! cost its routed put/remove/move mutations return.

use grid_directory::{AnyDirectory, DirectoryBackend, FederationDirectory, Quote, RankOrder};

const N: usize = 8;

fn quote(gfa: usize, mips: f64, price: f64) -> Quote {
    Quote {
        gfa,
        processors: 32 + 16 * gfa as u32,
        mips,
        bandwidth: 1.0 + gfa as f64 * 0.1,
        price,
    }
}

/// A fixed population with distinct prices and speeds.
fn population() -> Vec<Quote> {
    (0..N)
        .map(|i| quote(i, 500.0 + 37.0 * ((i * 5) % N) as f64, 1.0 + 0.7 * ((i * 3) % N) as f64))
        .collect()
}

fn populated(backend: DirectoryBackend) -> AnyDirectory {
    let mut dir = backend.build(N, 2_005);
    for q in population() {
        let _ = dir.subscribe(q);
    }
    dir
}

fn for_each_backend(check: impl Fn(DirectoryBackend, AnyDirectory)) {
    for backend in DirectoryBackend::ALL {
        check(backend, populated(backend));
    }
}

#[test]
fn rankings_agree_with_sorted_oracles() {
    for_each_backend(|backend, dir| {
        let mut by_price = population();
        by_price.sort_by(|a, b| a.price.total_cmp(&b.price).then(a.gfa.cmp(&b.gfa)));
        let mut by_speed = population();
        by_speed.sort_by(|a, b| b.mips.total_cmp(&a.mips).then(a.gfa.cmp(&b.gfa)));
        for r in 1..=N {
            assert_eq!(
                dir.kth_cheapest(r).unwrap().gfa,
                by_price[r - 1].gfa,
                "{backend:?}: rank {r} cheapest"
            );
            assert_eq!(
                dir.kth_fastest(r).unwrap().gfa,
                by_speed[r - 1].gfa,
                "{backend:?}: rank {r} fastest"
            );
        }
        assert!(dir.kth_cheapest(N + 1).is_none());
        assert!(dir.kth_cheapest(0).is_none());
        assert_eq!(dir.len(), N);
        assert!(!dir.is_empty());
    });
}

#[test]
fn resubscription_overwrites_in_place() {
    for_each_backend(|backend, mut dir| {
        let mut q = quote(5, 9_999.0, 0.01);
        let _ = dir.subscribe(q);
        assert_eq!(dir.len(), N, "{backend:?}: republish must not grow the directory");
        assert_eq!(dir.kth_cheapest(1).unwrap().gfa, 5);
        assert_eq!(dir.kth_fastest(1).unwrap().gfa, 5);
        // Republish again with mid-range values: the old extreme quote is gone.
        q.mips = 1.0;
        q.price = 1_000.0;
        let _ = dir.subscribe(q);
        assert_eq!(dir.kth_cheapest(N).unwrap().gfa, 5);
        assert_eq!(dir.kth_fastest(N).unwrap().gfa, 5);
    });
}

#[test]
fn unsubscribe_removes_and_reranks() {
    for_each_backend(|backend, mut dir| {
        let cheapest = dir.kth_cheapest(1).unwrap().gfa;
        let _ = dir.unsubscribe(cheapest);
        assert_eq!(dir.len(), N - 1, "{backend:?}");
        assert_ne!(dir.kth_cheapest(1).unwrap().gfa, cheapest);
        assert!(dir.kth_cheapest(N).is_none());
        // Unsubscribing an unknown GFA is a no-op.
        let _ = dir.unsubscribe(cheapest);
        assert_eq!(dir.len(), N - 1);
        // The departed GFA can rejoin.
        let _ = dir.subscribe(quote(cheapest, 600.0, 0.5));
        assert_eq!(dir.len(), N);
        assert_eq!(dir.kth_cheapest(1).unwrap().gfa, cheapest);
    });
}

#[test]
fn update_price_reranks_without_touching_speed() {
    for_each_backend(|backend, mut dir| {
        let fastest_before = dir.kth_fastest(1).unwrap().gfa;
        let target = dir.kth_cheapest(N).unwrap().gfa; // most expensive
        let _ = dir.update_price(target, 0.001);
        assert_eq!(dir.kth_cheapest(1).unwrap().gfa, target, "{backend:?}");
        assert_eq!(dir.kth_fastest(1).unwrap().gfa, fastest_before);
        // Updating an unknown GFA is a no-op.
        let _ = dir.update_price(999, 0.000_1);
        assert_eq!(dir.len(), N);
        assert_ne!(dir.kth_cheapest(1).unwrap().gfa, 999);
    });
}

#[test]
fn traced_queries_match_untraced_results_and_cost_messages() {
    for_each_backend(|backend, dir| {
        for origin in 0..N {
            for r in 1..=N {
                let cheap = dir.query_cheapest(origin, r);
                assert_eq!(cheap.quote, dir.kth_cheapest(r), "{backend:?}");
                assert!(
                    cheap.messages >= 1,
                    "{backend:?}: a served query must cost at least one message"
                );
                let fast = dir.query_fastest(origin, r);
                assert_eq!(fast.quote, dir.kth_fastest(r));
                assert!(fast.messages >= 1);
            }
            // Rank 0 is answered locally, for free, on every backend.
            assert_eq!(dir.query_cheapest(origin, 0).messages, 0);
            assert_eq!(dir.query_fastest(origin, 0).quote, None);
        }
        assert!(dir.query_message_cost() >= 1);
        assert!(dir.queries_served() > 0);
    });
}

#[test]
fn cursors_stream_what_per_rank_queries_answer() {
    for_each_backend(|backend, dir| {
        for order in RankOrder::ALL {
            for origin in [0usize, 3, N - 1] {
                let mut cursor = dir.open_cursor(origin, order);
                for r in 1..=N + 1 {
                    let streamed = dir.cursor_next(&mut cursor);
                    let fresh = dir.query_ranked(origin, order, r);
                    assert_eq!(streamed.quote, fresh.quote, "{backend:?} {order:?} rank {r}");
                    assert_eq!(
                        streamed.messages, fresh.messages,
                        "{backend:?} {order:?} rank {r}: cursor charges must equal the oracle's"
                    );
                }
            }
        }
    });
}

#[test]
fn every_mutation_kind_bumps_the_epoch_exactly_once() {
    for_each_backend(|backend, mut dir| {
        let e0 = dir.epoch();
        let _ = dir.update_price(1, 123.0);
        assert_eq!(dir.epoch(), e0 + 1, "{backend:?}");
        let _ = dir.unsubscribe(1);
        assert_eq!(dir.epoch(), e0 + 2, "{backend:?}");
        let _ = dir.subscribe(quote(1, 700.0, 2.0));
        assert_eq!(dir.epoch(), e0 + 3, "{backend:?}");
        // No-ops on unknown GFAs leave cursors and caches valid.
        let _ = dir.unsubscribe(77);
        let _ = dir.update_price(77, 1.0);
        assert_eq!(dir.epoch(), e0 + 3, "{backend:?}");
        // Queries never move the epoch.
        let _ = dir.query_cheapest(0, 1);
        let mut cursor = dir.open_cursor(0, RankOrder::Fastest);
        let _ = dir.cursor_next(&mut cursor);
        assert_eq!(dir.epoch(), e0 + 3, "{backend:?}");
    });
}

#[test]
fn backends_resolve_identical_quotes_for_identical_mutations() {
    // Drive every backend through the same mutation script and assert the
    // rank data never diverges — the invariant the federation's differential
    // test relies on.  The ideal directory is the oracle.
    let mut ideal = populated(DirectoryBackend::Ideal);
    let mut others: Vec<(DirectoryBackend, AnyDirectory)> =
        [DirectoryBackend::Chord, DirectoryBackend::Maan]
            .iter()
            .map(|&b| (b, populated(b)))
            .collect();
    let script: Vec<(&str, usize, f64)> = vec![
        ("price", 2, 0.2),
        ("unsub", 4, 0.0),
        ("price", 7, 3.3),
        ("sub", 4, 0.0),
        ("unsub", 0, 0.0),
    ];
    for (op, gfa, value) in script {
        let apply = |dir: &mut AnyDirectory| match op {
            "price" => {
                let _ = dir.update_price(gfa, value);
            }
            "unsub" => {
                let _ = dir.unsubscribe(gfa);
            }
            "sub" => {
                let _ = dir.subscribe(quote(gfa, 777.0, 1.5));
            }
            _ => unreachable!(),
        };
        apply(&mut ideal);
        for (backend, dir) in &mut others {
            apply(dir);
            assert_eq!(ideal.len(), dir.len(), "{backend:?}");
            for r in 1..=ideal.len() + 1 {
                assert_eq!(
                    ideal.kth_cheapest(r),
                    dir.kth_cheapest(r),
                    "{backend:?} after {op}({gfa})"
                );
                assert_eq!(
                    ideal.kth_fastest(r),
                    dir.kth_fastest(r),
                    "{backend:?} after {op}({gfa})"
                );
            }
        }
    }
}

#[test]
fn publish_costs_are_zero_for_central_stores_and_routed_for_maan() {
    for backend in DirectoryBackend::ALL {
        let mut dir = backend.build(N, 2_005);
        let mut publish = 0u64;
        for q in population() {
            publish += dir.subscribe(q);
        }
        publish += dir.update_price(3, 9.1);
        publish += dir.unsubscribe(5);
        // No-ops are free everywhere.
        assert_eq!(dir.unsubscribe(42), 0, "{backend:?}");
        assert_eq!(dir.update_price(3, 9.1), 0, "{backend:?}: identical reprice is a no-op");
        match backend {
            DirectoryBackend::Maan => {
                assert!(
                    publish >= 2 * N as u64 + 2,
                    "{backend:?}: N publishes, a move and a withdrawal must route (got {publish})"
                );
                assert_eq!(dir.publish_messages_total(), publish);
            }
            _ => {
                assert_eq!(publish, 0, "{backend:?}: central stores mutate for free");
                assert_eq!(dir.publish_messages_total(), 0);
            }
        }
    }
}

#[test]
fn maan_range_walks_cross_node_boundaries() {
    // The cost signature that distinguishes the distributed index from the
    // modelled backends: some cursor advance past rank 1 must pay for a
    // node-boundary crossing (> 1 message), while the modelled backends
    // charge exactly 1 per advance.  The shared spread population (full
    // price/speed calibration range, 16 ring nodes) guarantees the keys
    // span several ownership arcs.
    let wide = 16usize;
    let harvest = |backend: DirectoryBackend| -> Vec<u64> {
        let mut dir = backend.build(wide, 2_005);
        for q in grid_directory::MaanDirectory::spread_population(wide) {
            let _ = dir.subscribe(q);
        }
        let mut cursor = dir.open_cursor(0, RankOrder::Cheapest);
        let _ = dir.cursor_next(&mut cursor);
        (2..=wide).map(|_| dir.cursor_next(&mut cursor).messages).collect()
    };
    for backend in [DirectoryBackend::Ideal, DirectoryBackend::Chord] {
        assert!(
            harvest(backend).iter().all(|&m| m == 1),
            "{backend:?}: modelled advances are exactly one message"
        );
    }
    let maan = harvest(DirectoryBackend::Maan);
    assert!(maan.iter().all(|&m| m >= 1));
    assert!(
        maan.iter().any(|&m| m > 1),
        "Maan: a walk over distributed rank data must cross a node boundary (got {maan:?})"
    );
}
