//! A MAAN-style multi-attribute range index living on the Chord ring.
//!
//! This is the third directory backend, and the first in which the rank data
//! itself is **distributed**: the `Ideal` backend models message costs over a
//! central store and the `Chord` backend measures routing hops while still
//! resolving every rank through an exact in-memory store, but
//! [`MaanDirectory`] stores each quote *at the ring nodes that own its
//! attribute keys* (see [`crate::keys`]) and answers rank queries by actually
//! walking that partitioned state:
//!
//! * **publish** (`subscribe`) puts the quote under its price key and its
//!   speed key — two routed messages from the publisher's node to the owner
//!   of each key; a republish whose keys moved to a different owner also
//!   pays a routed remove per relocated entry;
//! * **withdraw** (`unsubscribe`) routes a remove to each owner;
//! * **reprice** (`update_price`) is a *move*: the price entry is removed
//!   under its old key and re-inserted under the new one — one routed
//!   message when both keys share an owner, a routed remove plus a routed
//!   put otherwise (the speed entry never moves);
//! * **query** routes from the querying GFA's node to the start of the
//!   attribute's range partition and walks successor sub-ranges (*walk
//!   arcs*, [`ChordOverlay::walk_arc_of`]) in key order.  Rank 1 therefore
//!   costs measured `O(log n)` routing hops plus the walk steps to the first
//!   populated arc; every further rank costs one cursor-advance message
//!   **plus one message per node boundary the walk crosses** — the
//!   `O(log n + k)` profile of MAAN range queries, including the
//!   boundary-crossing advances (`> 1` message) the modelled backends never
//!   produce.
//!
//! Because the locality-preserving hash is monotone and ties share an owner
//! node (where the node-local store orders them by the true attribute
//! comparator), the concatenation of per-node stores in walk order equals
//! the exact ranking — quotes resolved here are bit-identical to
//! [`IdealDirectory`](crate::ideal::IdealDirectory)'s, which the conformance
//! and differential suites assert.  Only the *message charges* differ, and
//! those are deterministic functions of the directory content and the query
//! origin, so the cursor path, the query-per-rank oracle and GFA cache
//! replays all charge identically (the invariant the federation's ledger
//! accounting relies on).

use std::cell::Cell;
use std::cmp::Ordering;

use crate::chord::{ceil_log2, ChordOverlay};
use crate::cursor::RankCursor;
use crate::keys;
use crate::quote::{FederationDirectory, Quote, RankOrder, TracedQuote};

/// One ring node's share of the distributed index: the quote entries whose
/// attribute keys this node owns, one sorted vector per attribute.
#[derive(Debug, Clone, Default)]
struct NodeStore {
    /// `entries[RankOrder::index()]`, each sorted by
    /// `(key, attribute comparator, gfa)`.
    entries: [Vec<(u64, Quote)>; 2],
}

/// One entry of the flattened walk index: the quote plus the walk arc its
/// key lives in (the arc delta between consecutive ranks is the number of
/// successor hops a range walk pays to advance between them).
#[derive(Debug, Clone, Copy)]
struct FlatEntry {
    arc: usize,
    quote: Quote,
}

/// Ordering of entries within one attribute dimension: ascending key first
/// (the ring-walk order), then the true attribute comparator (which resolves
/// ties among values that clamp or quantise onto the same key), then the GFA
/// index.  Because the key map is monotone in the attribute, this equals the
/// exact ranking order.
fn entry_cmp(order: RankOrder, a: &(u64, Quote), b: &(u64, Quote)) -> Ordering {
    a.0.cmp(&b.0)
        .then_with(|| match order {
            RankOrder::Cheapest => a.1.price.total_cmp(&b.1.price),
            RankOrder::Fastest => b.1.mips.total_cmp(&a.1.mips),
        })
        .then_with(|| a.1.gfa.cmp(&b.1.gfa))
}

/// The MAAN-style distributed federation directory.  See the module docs
/// for the storage and charge model.
#[derive(Debug)]
pub struct MaanDirectory {
    overlay: ChordOverlay,
    /// Per-node attribute stores, indexed like the overlay's GFAs.  This is
    /// the authoritative, partitioned quote state.
    nodes: Vec<NodeStore>,
    /// Publisher-side records (each GFA remembers the quote it published),
    /// in subscription order.  Used to locate the old keys on republish /
    /// withdraw and to answer `len()`.
    published: Vec<Quote>,
    /// Flattened walk indexes (one per attribute), rebuilt eagerly from the
    /// node stores on every mutation so queries and charge computations are
    /// O(1) per rank.
    flat: [Vec<FlatEntry>; 2],
    epoch: u64,
    queries: Cell<u64>,
    /// All directory messages spent on ranking queries (routed lookups,
    /// cursor advances and boundary crossings).
    hops_total: Cell<u64>,
    /// Routed (rank-1) lookups served and the messages they cost.
    routes: Cell<u64>,
    route_hops: Cell<u64>,
    /// Total routed publish-side messages charged by mutations.
    publish_messages: u64,
    /// Replication factor `k ≥ 1`: each entry keeps `k − 1` successor
    /// copies, (re)created lazily by [`FederationDirectory::stabilize`].
    replication: usize,
    /// Replica records per dimension: `(entry's GFA, holder GFA)`.  Records
    /// only — resolution always reads the canonical walk index; copies
    /// decide whether a lookup hitting a crashed store can detour.
    copies: [Vec<(usize, usize)>; 2],
    /// Per-GFA departed flag (graceful leave or crash).
    down: Vec<bool>,
    /// Crashed nodes still squatting on their ring position (and still
    /// holding their store as an unreachable ghost) until the next
    /// stabilization round evicts them.
    pending_dead: Vec<usize>,
    /// Bumped on every live-membership change.
    membership_epoch: u64,
    /// Fault flag of the most recent query/cursor operation.
    fault: Cell<bool>,
    /// The crashed store node the most recent faulted lookup resolved to —
    /// the target of a reactive [`FederationDirectory::repair_faulted`].
    last_fault: Cell<Option<usize>>,
}

impl MaanDirectory {
    /// Builds the directory for `n` GFAs, placing their ring nodes with
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        MaanDirectory {
            overlay: ChordOverlay::new(n, seed),
            nodes: vec![NodeStore::default(); n],
            published: Vec::new(),
            flat: [Vec::new(), Vec::new()],
            epoch: 0,
            queries: Cell::new(0),
            hops_total: Cell::new(0),
            routes: Cell::new(0),
            route_hops: Cell::new(0),
            publish_messages: 0,
            replication: 1,
            copies: [Vec::new(), Vec::new()],
            down: vec![false; n],
            pending_dead: Vec::new(),
            membership_epoch: 0,
            fault: Cell::new(false),
            last_fault: Cell::new(None),
        }
    }

    /// Corrupting test double: rewinds the content epoch to zero without
    /// touching the distributed store.  Only exists so the invariant tests
    /// can prove the epoch monotonicity check fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_epoch_rewind(&mut self) {
        self.epoch = 0;
    }

    /// Corrupting test double: marks the GFA of the first published quote as
    /// departed *without* withdrawing its entries, so ranking queries keep
    /// serving a dead node's offer.  Only exists so the invariant tests can
    /// prove the `serves_only_live` check fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_serve_departed(&mut self) {
        let gfa = self
            .published
            .first()
            .expect("corrupting a directory requires at least one quote")
            .gfa;
        self.down[gfa] = true;
    }

    /// Corrupting test double: records more copies of the first published
    /// entry than the replication factor allows.  Only exists so the
    /// invariant tests can prove the `replication_ok` check fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_overreplicate(&mut self) {
        let gfa = self
            .published
            .first()
            .expect("corrupting a directory requires at least one quote")
            .gfa;
        for holder in 0..self.replication {
            self.copies[0].push((gfa, holder));
        }
    }

    /// Corrupting test double: rewinds the membership epoch to zero.  Only
    /// exists so the invariant tests can prove the membership-monotonicity
    /// check fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_membership_rewind(&mut self) {
        self.membership_epoch = 0;
    }

    /// The underlying overlay (for inspection in benches and tests).
    #[must_use]
    pub fn overlay(&self) -> &ChordOverlay {
        &self.overlay
    }

    /// Total directory messages spent on ranking queries so far.
    #[must_use]
    pub fn hops_total(&self) -> u64 {
        self.hops_total.get()
    }

    /// Total routed publish-side messages charged by `subscribe` /
    /// `unsubscribe` / `update_price` so far.
    #[must_use]
    pub fn publish_messages_total(&self) -> u64 {
        self.publish_messages
    }

    /// Average directory messages per ranking query served so far.
    #[must_use]
    pub fn average_hops_per_query(&self) -> f64 {
        let served = self.queries.get();
        if served == 0 {
            0.0
        } else {
            self.hops_total.get() as f64 / served as f64
        }
    }

    /// Average messages of one *routed* (rank-1) lookup — the measured
    /// quantity the paper models as `O(log n)`.
    #[must_use]
    pub fn average_route_hops(&self) -> f64 {
        let routes = self.routes.get();
        if routes == 0 {
            0.0
        } else {
            self.route_hops.get() as f64 / routes as f64
        }
    }

    /// A deterministic `n`-quote population whose prices and speeds stride
    /// across the full calibrated key domains ([`keys::PRICE_DOMAIN_MAX`],
    /// [`keys::MIPS_DOMAIN_MAX`]), so the published keys span many ring
    /// ownership arcs.  Shared by the unit tests and the conformance suite:
    /// both assert boundary-crossing walk charges against this population,
    /// and a single generator keeps those guarantees from drifting apart if
    /// the key calibration changes.
    #[must_use]
    pub fn spread_population(n: usize) -> Vec<Quote> {
        (0..n)
            .map(|gfa| Quote {
                gfa,
                processors: 64,
                mips: 250.0 + 1_500.0 * ((gfa * 7) % n) as f64 / n as f64,
                bandwidth: 1.0,
                price: 0.5 + 9.0 * ((gfa * 3) % n) as f64 / n as f64,
            })
            .collect()
    }

    /// Number of entries of `gfa`'s node store in `order` — exposes the
    /// actual data placement for tests asserting the index is genuinely
    /// partitioned.
    #[must_use]
    pub fn node_entries(&self, gfa: usize, order: RankOrder) -> usize {
        self.nodes
            .get(gfa)
            .map_or(0, |n| n.entries[order.index()].len())
    }

    /// Routed messages from `publisher`'s node to the owner of `key`
    /// (measured closest-preceding-finger hops).
    fn route_hops_from(&self, publisher: usize, key: u64) -> u64 {
        let (_, hops) = self.overlay.lookup(publisher % self.overlay.len(), key);
        u64::from(hops)
    }

    /// Messages of a routed rank-1 lookup from `origin`: route to the start
    /// of the attribute partition, then walk successor arcs to the first
    /// populated one.
    fn route_to_rank1(&self, origin: usize, order: RankOrder) -> u64 {
        let start = keys::range_start_key(order);
        let hops = self.route_hops_from(origin, start);
        let walk = self.flat[order.index()]
            .first()
            .map_or(0, |head| (head.arc - self.overlay.walk_arc_of(start)) as u64);
        hops + walk
    }

    /// Messages to advance a range walk from rank `r - 1` to rank `r`
    /// (`r ≥ 2`): one cursor-advance (result delivery) message — the cost
    /// the modelled backends charge — **plus one message per successor hop**
    /// when the walk crosses node boundaries (including empty intermediate
    /// arcs), which is how a distributed range walk exceeds the modelled
    /// `+1` per rank.  Past-the-end advances probe the end-of-range marker
    /// locally: one message.
    fn advance_messages(&self, order: RankOrder, r: usize) -> u64 {
        debug_assert!(r >= 2, "rank-1 lookups route, they do not advance");
        let flat = &self.flat[order.index()];
        if r > flat.len() {
            return 1;
        }
        1 + (flat[r - 1].arc - flat[r - 2].arc) as u64
    }

    /// The single place rank-dependent query charges are applied, so the
    /// oracle path, the cursor path and cache replays cannot drift apart:
    /// rank 1 charges `route()` (lazily) and records the routed lookup;
    /// every higher rank charges the walk's advance cost.  `extra` is the
    /// availability surcharge of the current churn state (a replica detour,
    /// see [`Self::availability`]) — zero on a churn-free ring, so the
    /// static-path charges are untouched.  Rank 0 must be short-circuited
    /// by callers.
    #[inline]
    fn charge_ranked(&self, order: RankOrder, r: usize, extra: u64, route: impl FnOnce() -> u64) -> u64 {
        debug_assert!(r >= 1, "rank 0 is answered locally and never charged");
        let messages = if r == 1 {
            let hops = route() + extra;
            self.routes.set(self.routes.get() + 1);
            self.route_hops.set(self.route_hops.get() + hops);
            hops
        } else {
            self.advance_messages(order, r) + extra
        };
        self.hops_total.set(self.hops_total.get() + messages);
        messages
    }

    /// Availability of the rank-`r` lookup of `order` under the current
    /// churn state: `(extra_messages, faulted)`.  The walk resolves rank `r`
    /// at the node storing the entry; if that node crashed and has not been
    /// evicted yet, a live replica created by an earlier stabilization round
    /// answers for one extra successor hop, while an unreplicated (or
    /// not-yet-repaired) entry faults — the route/advance is wasted and the
    /// query answers `None`.  Entirely inert (`(0, false)`) while no crash
    /// is pending, which keeps zero-churn charges bit-identical.
    #[inline]
    fn availability(&self, order: RankOrder, r: usize) -> (u64, bool) {
        if self.pending_dead.is_empty() {
            return (0, false);
        }
        let dim = order.index();
        let Some(entry) = self.flat[dim].get(r - 1) else {
            // Past-the-end advances probe the end-of-range marker locally.
            return (0, false);
        };
        let store_node = self.overlay.walk_arc_owner(entry.arc);
        if !self.down[store_node] {
            return (0, false);
        }
        let gfa = entry.quote.gfa;
        if self.copies[dim].iter().any(|&(g, h)| g == gfa && !self.down[h]) {
            (1, false)
        } else {
            self.last_fault.set(Some(store_node));
            (0, true)
        }
    }

    /// Cold tail of [`FederationDirectory::cursor_next`]: lazy revalidation
    /// after an epoch move.  The distributed store mutated under the cursor:
    /// positional reads already see the rebuilt walk index, and a cursor
    /// that has not yielded its head yet re-routes against the current
    /// rank-1 placement (quotes relocate when their keys change, and
    /// membership churn re-shapes the ring the route crosses), exactly like
    /// a fresh rank-1 query would charge.
    #[cold]
    #[inline(never)]
    fn revalidate_cursor(&self, cursor: &mut RankCursor) {
        if cursor.yielded == 0 {
            cursor.route_messages = self.route_to_rank1(cursor.origin, cursor.order);
        }
        cursor.epoch = self.epoch;
    }

    /// Cold tail of [`FederationDirectory::cursor_next`] while a crashed
    /// node squats on the ring: resolves the rank's availability, detours to
    /// a live replica for one extra message, or reports a fault while still
    /// charging the wasted route/advance.
    #[cold]
    #[inline(never)]
    fn cursor_next_degraded(&self, cursor: &mut RankCursor, r: usize) -> TracedQuote {
        let (extra, fault) = self.availability(cursor.order, r);
        let messages = self.charge_ranked(cursor.order, r, extra, || cursor.route_messages);
        if fault {
            self.fault.set(true);
            return TracedQuote { quote: None, messages };
        }
        let quote = self.resolve_ranked(cursor.order, r);
        TracedQuote { quote, messages }
    }

    /// Drops the replica records of `gfa`'s entry in both dimensions — a
    /// mutation makes the copies stale, and the repair model re-creates them
    /// only at the next stabilization round (replication lag).
    fn drop_copies_of(&mut self, gfa: usize) {
        for order in RankOrder::ALL {
            self.copies[order.index()].retain(|c| c.0 != gfa);
        }
    }

    /// Moves every entry whose key's owner changed (because the live ring
    /// gained or lost a node) to its current owner's store, returning the
    /// number of entries moved — each handoff is one successor-transfer
    /// message.  Must run after **every** ring-membership change: the walk
    /// index rebuild and `remove_entry`'s owner lookup both require entries
    /// to sit at `owner_of(key)`.
    fn reconcile_stores(&mut self) -> u64 {
        let mut moved = 0u64;
        for order in RankOrder::ALL {
            let dim = order.index();
            let mut relocated: Vec<(u64, Quote)> = Vec::new();
            for node in 0..self.nodes.len() {
                let mut i = 0;
                while i < self.nodes[node].entries[dim].len() {
                    let key = self.nodes[node].entries[dim][i].0;
                    if self.overlay.owner_of(key) != node {
                        relocated.push(self.nodes[node].entries[dim].remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
            moved += relocated.len() as u64;
            for (key, quote) in relocated {
                self.insert_entry(order, key, quote);
            }
        }
        moved
    }

    /// (Re)creates the successor copies the replication factor asks for:
    /// every stored entry wants `k − 1` copies at its owner's live
    /// successors.  Charges one replication message per copy that does not
    /// exist yet and drops copies no longer wanted (free).  Runs only from
    /// [`FederationDirectory::stabilize`], so freshly published or repriced
    /// entries are unprotected until the next round — the replication lag a
    /// real overlay has.
    fn repair_replicas(&mut self) -> u64 {
        let mut messages = 0u64;
        for order in RankOrder::ALL {
            let dim = order.index();
            let mut desired: Vec<(usize, usize)> = Vec::new();
            for entry in &self.flat[dim] {
                let owner = self.overlay.walk_arc_owner(entry.arc);
                for holder in self.overlay.successors(owner, self.replication - 1) {
                    if !self.down[holder] {
                        desired.push((entry.quote.gfa, holder));
                    }
                }
            }
            desired.sort_unstable();
            desired.dedup();
            messages += desired
                .iter()
                .filter(|pair| !self.copies[dim].contains(pair))
                .count() as u64;
            self.copies[dim] = desired;
        }
        messages
    }

    /// Resolves the `r`-th quote of `order` from the flattened walk index,
    /// counting the served query.
    #[inline]
    fn resolve_ranked(&self, order: RankOrder, r: usize) -> Option<Quote> {
        if r == 0 {
            return None;
        }
        self.queries.set(self.queries.get() + 1);
        self.flat[order.index()].get(r - 1).map(|e| e.quote)
    }

    /// Inserts `quote` into the owner node's store for `order` under `key`.
    fn insert_entry(&mut self, order: RankOrder, key: u64, quote: Quote) {
        let node = self.overlay.owner_of(key);
        let store = &mut self.nodes[node].entries[order.index()];
        let probe = (key, quote);
        let at = store
            .binary_search_by(|e| entry_cmp(order, e, &probe))
            .unwrap_or_else(|pos| pos);
        store.insert(at, probe);
    }

    /// Removes `quote`'s entry (published under `key`) from its owner node.
    fn remove_entry(&mut self, order: RankOrder, key: u64, quote: Quote) {
        let node = self.overlay.owner_of(key);
        let store = &mut self.nodes[node].entries[order.index()];
        let probe = (key, quote);
        let at = store
            .binary_search_by(|e| entry_cmp(order, e, &probe))
            .expect("a published entry is present at its owner node");
        store.remove(at);
    }

    /// Rebuilds the flattened walk indexes from the node stores: nodes are
    /// visited in walk-arc order (ascending key ranges, wrap arc last) and
    /// contribute the entries whose keys fall in that arc.  Because node
    /// stores are kept sorted by `(key, attribute, gfa)` and the arc index
    /// is monotone in the key, the concatenation is the exact ranking.
    fn rebuild_flat(&mut self) {
        for order in RankOrder::ALL {
            let dim = order.index();
            self.flat[dim].clear();
            for arc in 0..self.overlay.walk_arcs() {
                let node = self.overlay.walk_arc_owner(arc);
                for &(key, quote) in &self.nodes[node].entries[dim] {
                    if self.overlay.walk_arc_of(key) == arc {
                        self.flat[dim].push(FlatEntry { arc, quote });
                    }
                }
            }
            debug_assert_eq!(
                self.flat[dim].len(),
                self.published.len(),
                "every published quote appears exactly once per attribute index"
            );
        }
    }
}

impl FederationDirectory for MaanDirectory {
    fn subscribe(&mut self, quote: Quote) -> u64 {
        let publisher = quote.gfa;
        let new_pk = keys::price_key(quote.price);
        let new_sk = keys::speed_key(quote.mips);
        let mut messages = 0u64;
        if let Some(slot) = self.published.iter().position(|q| q.gfa == quote.gfa) {
            let old = self.published[slot];
            let old_pk = keys::price_key(old.price);
            let old_sk = keys::speed_key(old.mips);
            self.remove_entry(RankOrder::Cheapest, old_pk, old);
            self.remove_entry(RankOrder::Fastest, old_sk, old);
            // Stale entries whose key moved to a different owner need their
            // own routed removes; same-owner overwrites ride on the put.
            if self.overlay.owner_of(old_pk) != self.overlay.owner_of(new_pk) {
                messages += self.route_hops_from(publisher, old_pk);
            }
            if self.overlay.owner_of(old_sk) != self.overlay.owner_of(new_sk) {
                messages += self.route_hops_from(publisher, old_sk);
            }
            self.published[slot] = quote;
        } else {
            self.published.push(quote);
        }
        self.insert_entry(RankOrder::Cheapest, new_pk, quote);
        self.insert_entry(RankOrder::Fastest, new_sk, quote);
        messages += self.route_hops_from(publisher, new_pk);
        messages += self.route_hops_from(publisher, new_sk);
        self.drop_copies_of(publisher);
        self.rebuild_flat();
        self.epoch += 1;
        self.publish_messages += messages;
        messages
    }

    fn unsubscribe(&mut self, gfa: usize) -> u64 {
        let Some(slot) = self.published.iter().position(|q| q.gfa == gfa) else {
            return 0; // unknown GFA: nothing changed, keep caches valid
        };
        let old = self.published.remove(slot);
        let pk = keys::price_key(old.price);
        let sk = keys::speed_key(old.mips);
        self.remove_entry(RankOrder::Cheapest, pk, old);
        self.remove_entry(RankOrder::Fastest, sk, old);
        let messages = self.route_hops_from(gfa, pk) + self.route_hops_from(gfa, sk);
        self.drop_copies_of(gfa);
        self.rebuild_flat();
        self.epoch += 1;
        self.publish_messages += messages;
        messages
    }

    fn update_price(&mut self, gfa: usize, price: f64) -> u64 {
        let Some(slot) = self.published.iter().position(|q| q.gfa == gfa) else {
            return 0;
        };
        let old = self.published[slot];
        if old.price.to_bits() == price.to_bits() {
            // Identical reprice: nothing observable changes — no epoch bump,
            // no publish traffic (mirrors the ideal backend's no-op rule).
            return 0;
        }
        let old_pk = keys::price_key(old.price);
        let new_pk = keys::price_key(price);
        let mut new_quote = old;
        new_quote.price = price;
        self.remove_entry(RankOrder::Cheapest, old_pk, old);
        self.insert_entry(RankOrder::Cheapest, new_pk, new_quote);
        // The speed register stores a full replica of the quote; its key
        // (and therefore its owner and position) depends only on the MIPS,
        // so the reprice refreshes the replica's payload in place — the
        // update rides along with the price move, costing no extra routed
        // messages.
        let sk = keys::speed_key(old.mips);
        let speed_node = self.overlay.owner_of(sk);
        let store = &mut self.nodes[speed_node].entries[RankOrder::Fastest.index()];
        let probe = (sk, old);
        let at = store
            .binary_search_by(|e| entry_cmp(RankOrder::Fastest, e, &probe))
            .expect("a published quote has a speed-register replica at its owner node");
        store[at].1 = new_quote;
        self.published[slot] = new_quote;
        // A *move*: one routed message when the entry stays on its owner,
        // a routed remove plus a routed put when it migrates.  The speed
        // entry does not depend on the price and never moves.
        let messages = if self.overlay.owner_of(old_pk) == self.overlay.owner_of(new_pk) {
            self.route_hops_from(gfa, new_pk)
        } else {
            self.route_hops_from(gfa, old_pk) + self.route_hops_from(gfa, new_pk)
        };
        self.drop_copies_of(gfa);
        self.rebuild_flat();
        self.epoch += 1;
        self.publish_messages += messages;
        messages
    }

    fn query_cheapest(&self, origin: usize, r: usize) -> TracedQuote {
        if r == 0 {
            return TracedQuote { quote: None, messages: 0 };
        }
        self.fault.set(false);
        let (extra, fault) = self.availability(RankOrder::Cheapest, r);
        let messages = self.charge_ranked(RankOrder::Cheapest, r, extra, || {
            self.route_to_rank1(origin, RankOrder::Cheapest)
        });
        if fault {
            self.fault.set(true);
            return TracedQuote { quote: None, messages };
        }
        TracedQuote {
            quote: self.resolve_ranked(RankOrder::Cheapest, r),
            messages,
        }
    }

    fn query_fastest(&self, origin: usize, r: usize) -> TracedQuote {
        if r == 0 {
            return TracedQuote { quote: None, messages: 0 };
        }
        self.fault.set(false);
        let (extra, fault) = self.availability(RankOrder::Fastest, r);
        let messages = self.charge_ranked(RankOrder::Fastest, r, extra, || {
            self.route_to_rank1(origin, RankOrder::Fastest)
        });
        if fault {
            self.fault.set(true);
            return TracedQuote { quote: None, messages };
        }
        TracedQuote {
            quote: self.resolve_ranked(RankOrder::Fastest, r),
            messages,
        }
    }

    fn len(&self) -> usize {
        self.published.len()
    }

    fn query_message_cost(&self) -> u64 {
        // Report the measured average, falling back to the model before any
        // query has been served.
        let avg = self.average_hops_per_query();
        if avg > 0.0 {
            avg.round() as u64
        } else {
            let n = self.published.len().max(1) as f64;
            n.log2().ceil().max(1.0) as u64
        }
    }

    fn queries_served(&self) -> u64 {
        self.queries.get()
    }

    fn epoch(&self) -> u64 {
        // The node stores are the content; the overlay ring is a static
        // routing substrate and contributes nothing to the epoch.
        self.epoch
    }

    fn open_cursor(&self, origin: usize, order: RankOrder) -> RankCursor {
        // The genuinely expensive step: route to the start of the attribute
        // partition and walk to the first populated arc.
        RankCursor::opened(origin, order, self.epoch, self.route_to_rank1(origin, order))
    }

    #[inline]
    fn cursor_next(&self, cursor: &mut RankCursor) -> TracedQuote {
        self.fault.set(false);
        if cursor.epoch != self.epoch {
            self.revalidate_cursor(cursor);
        }
        cursor.yielded += 1;
        let r = cursor.yielded;
        // Out-of-line churn handling keeps the static-ring advance compact
        // enough to stay fully inlined through the enum dispatch (the gated
        // advance_ns metric) — the degraded path only exists while a crashed
        // node squats on the ring awaiting stabilization.
        if !self.pending_dead.is_empty() {
            return self.cursor_next_degraded(cursor, r);
        }
        let messages = self.charge_ranked(cursor.order, r, 0, || cursor.route_messages);
        let quote = self.resolve_ranked(cursor.order, r);
        TracedQuote { quote, messages }
    }

    #[inline]
    fn note_replayed_query(&self, _origin: usize, _order: RankOrder, r: usize, messages: u64) {
        if r == 0 {
            return;
        }
        self.queries.set(self.queries.get() + 1);
        if r == 1 {
            self.routes.set(self.routes.get() + 1);
            self.route_hops.set(self.route_hops.get() + messages);
        }
        self.hops_total.set(self.hops_total.get() + messages);
    }

    fn membership_epoch(&self) -> u64 {
        self.membership_epoch
    }

    fn node_depart(&mut self, gfa: usize, graceful: bool) -> u64 {
        if gfa >= self.down.len() || self.down[gfa] {
            return 0;
        }
        self.down[gfa] = true;
        let messages = if graceful {
            // A graceful leave withdraws its own quote first (routed removes,
            // charged by `unsubscribe` while the node still routes), then
            // unlinks from the ring and hands every entry it stored to the
            // inheriting successor — one transfer message per entry, the
            // handoff cost the regression suite pins.
            let mut messages = self.unsubscribe(gfa);
            self.drop_copies_of(gfa);
            for order in RankOrder::ALL {
                self.copies[order.index()].retain(|c| c.1 != gfa);
            }
            if self.overlay.remove_node(gfa) {
                let moved = self.reconcile_stores();
                self.publish_messages += moved;
                messages += moved;
            }
            messages
        } else {
            // A crash is silent: the dead GFA's own offer vanishes from the
            // index (nothing may keep serving it), its store becomes an
            // unreachable ghost still squatting on the ring, and no messages
            // flow until a stabilization round notices and repairs.
            if let Some(slot) = self.published.iter().position(|q| q.gfa == gfa) {
                let old = self.published.remove(slot);
                self.remove_entry(RankOrder::Cheapest, keys::price_key(old.price), old);
                self.remove_entry(RankOrder::Fastest, keys::speed_key(old.mips), old);
            }
            self.drop_copies_of(gfa);
            for order in RankOrder::ALL {
                self.copies[order.index()].retain(|c| c.1 != gfa);
            }
            self.pending_dead.push(gfa);
            0
        };
        self.membership_epoch += 1;
        self.epoch += 1;
        self.rebuild_flat();
        messages
    }

    fn node_join(&mut self, gfa: usize) -> u64 {
        if gfa >= self.down.len() || !self.down[gfa] {
            return 0;
        }
        self.down[gfa] = false;
        self.pending_dead.retain(|&g| g != gfa);
        // Joining routes one lookup to locate the successor (`⌈log₂ n⌉`
        // messages on the post-join ring) and takes over its key range:
        // every entry the new owner inherits is one transfer message.  A
        // crashed node rejoining before its eviction finds its ring position
        // (and ghost store) intact, so only the join handshake is paid.
        let _ = self.overlay.insert_node(gfa);
        let moved = self.reconcile_stores();
        let messages = ceil_log2(self.overlay.live_len() as u64) + moved;
        self.publish_messages += moved;
        self.membership_epoch += 1;
        self.epoch += 1;
        self.rebuild_flat();
        messages
    }

    fn stabilize(&mut self) -> u64 {
        let mut messages = 0u64;
        let mut evicted = 0u64;
        if !self.pending_dead.is_empty() {
            for gfa in std::mem::take(&mut self.pending_dead) {
                if self.overlay.remove_node(gfa) {
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            // Each eviction is a routed repair (successor-list splice), and
            // the evicted ghost's entries hand off to the inheriting owner —
            // one transfer message per entry, like a graceful handoff but
            // paid by the repairing successor instead of the departed node.
            messages += evicted * ceil_log2(self.overlay.live_len().max(1) as u64);
            messages += self.reconcile_stores();
        }
        if self.replication > 1 {
            messages += self.repair_replicas();
        }
        if messages > 0 {
            // Ring repair and replica placement both change what subsequent
            // lookups charge; bump the content epoch so open cursors and
            // GFA-side caches revalidate instead of replaying stale charges.
            self.publish_messages += messages;
            self.epoch += 1;
        }
        if evicted > 0 {
            self.membership_epoch += 1;
            self.rebuild_flat();
        }
        messages
    }

    fn set_replication(&mut self, k: usize) {
        self.replication = k.max(1);
    }

    fn repair_faulted(&mut self) -> u64 {
        let Some(gfa) = self.last_fault.take() else {
            return 0;
        };
        if !self.pending_dead.contains(&gfa) {
            // Rejoined or already evicted by a stabilization round since the
            // fault was recorded — nothing left to repair.
            return 0;
        }
        self.pending_dead.retain(|&g| g != gfa);
        if !self.overlay.remove_node(gfa) {
            return 0;
        }
        // A targeted single-node version of `stabilize`: the routed
        // successor-list splice, the ghost store's entry handoffs, and (when
        // replicated) the replica repair the eviction makes possible.
        let mut messages = ceil_log2(self.overlay.live_len().max(1) as u64);
        messages += self.reconcile_stores();
        if self.replication > 1 {
            messages += self.repair_replicas();
        }
        self.publish_messages += messages;
        self.epoch += 1;
        self.membership_epoch += 1;
        self.rebuild_flat();
        messages
    }

    fn is_node_live(&self, gfa: usize) -> bool {
        !self.down.get(gfa).copied().unwrap_or(false)
    }

    #[inline]
    fn peek_fault(&self) -> bool {
        self.fault.get()
    }

    #[inline]
    fn take_fault(&self) -> bool {
        self.fault.replace(false)
    }

    fn replication_ok(&self) -> bool {
        let allowed = self.replication.saturating_sub(1);
        RankOrder::ALL.iter().all(|order| {
            let dim = order.index();
            self.published.iter().all(|q| {
                self.copies[dim].iter().filter(|c| c.0 == q.gfa).count() <= allowed
            })
        })
    }

    fn serves_only_live(&self) -> bool {
        self.published.iter().all(|q| !self.down[q.gfa])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealDirectory;
    use grid_cluster::paper_resources;

    fn paper_maan(n_nodes: usize) -> MaanDirectory {
        let mut dir = MaanDirectory::new(n_nodes, 11);
        for (i, r) in paper_resources().iter().enumerate() {
            let _ = dir.subscribe(Quote::from_spec(i, &r.spec));
        }
        dir
    }

    fn spread_quotes(n: usize) -> Vec<Quote> {
        MaanDirectory::spread_population(n)
    }

    #[test]
    fn rankings_match_the_ideal_oracle() {
        let maan = paper_maan(8);
        let ideal = IdealDirectory::with_quotes(
            paper_resources()
                .iter()
                .enumerate()
                .map(|(i, r)| Quote::from_spec(i, &r.spec)),
        );
        for r in 0..=9 {
            assert_eq!(maan.kth_cheapest(r), ideal.kth_cheapest(r), "rank {r} cheapest");
            assert_eq!(maan.kth_fastest(r), ideal.kth_fastest(r), "rank {r} fastest");
        }
    }

    #[test]
    fn quotes_are_actually_partitioned_across_nodes() {
        let mut dir = MaanDirectory::new(16, 3);
        for q in spread_quotes(16) {
            let _ = dir.subscribe(q);
        }
        for order in RankOrder::ALL {
            let occupied = (0..16).filter(|&g| dir.node_entries(g, order) > 0).count();
            let total: usize = (0..16).map(|g| dir.node_entries(g, order)).sum();
            assert_eq!(total, 16, "{order:?}: every quote stored exactly once");
            assert!(
                occupied >= 3,
                "{order:?}: a spread population must occupy several ring nodes (got {occupied})"
            );
        }
    }

    #[test]
    fn boundary_crossing_advances_cost_more_than_one_message() {
        let mut dir = MaanDirectory::new(16, 3);
        for q in spread_quotes(16) {
            let _ = dir.subscribe(q);
        }
        for order in RankOrder::ALL {
            let advances: Vec<u64> = (2..=16).map(|r| dir.query_ranked(0, order, r).messages).collect();
            assert!(advances.iter().all(|&m| m >= 1));
            assert!(
                advances.iter().any(|&m| m > 1),
                "{order:?}: a multi-node range walk must cross at least one boundary (got {advances:?})"
            );
        }
    }

    #[test]
    fn full_sweep_costs_log_n_plus_k_messages() {
        // Acceptance bound: streaming all k ranks costs the routed open plus
        // k - 1 advances plus at most one extra message per ring node (each
        // boundary is crossed at most once per sweep) — O(log n + k).
        for n in [8usize, 16, 32, 50] {
            let mut dir = MaanDirectory::new(n, 9);
            for q in spread_quotes(n) {
                let _ = dir.subscribe(q);
            }
            for order in RankOrder::ALL {
                let mut cursor = dir.open_cursor(1, order);
                let mut total = 0u64;
                for _ in 1..=n {
                    total += dir.cursor_next(&mut cursor).messages;
                }
                let route_bound = 2 * (n as f64).log2().ceil() as u64 + 4;
                let bound = route_bound + (n as u64 - 1) + (n as u64 + 1);
                assert!(
                    total <= bound,
                    "n={n} {order:?}: full sweep cost {total} exceeds the O(log n + k) bound {bound}"
                );
                assert!(total >= n as u64, "k ranks cost at least k messages");
            }
        }
    }

    #[test]
    fn publish_operations_charge_routed_messages() {
        let mut dir = MaanDirectory::new(8, 11);
        let mut q = Quote { gfa: 0, processors: 64, mips: 700.0, bandwidth: 1.0, price: 3.0 };
        let put = dir.subscribe(q);
        assert!(put >= 2, "a publish routes one put per attribute (got {put})");
        assert_eq!(dir.publish_messages_total(), put);

        // A reprice is a move: ≥ 1 routed message, speed entry untouched.
        let moved = dir.update_price(0, 8.5);
        assert!(moved >= 1);
        assert_eq!(dir.kth_cheapest(1).unwrap().price, 8.5);

        // Identical reprice and unknown GFAs are free no-ops.
        let e = dir.epoch();
        assert_eq!(dir.update_price(0, 8.5), 0);
        assert_eq!(dir.update_price(99, 1.0), 0);
        assert_eq!(dir.unsubscribe(99), 0);
        assert_eq!(dir.epoch(), e);

        // Republishing with moved keys pays for the stale entries too.
        q.price = 0.2;
        q.mips = 1_900.0;
        let republish = dir.subscribe(q);
        assert!(republish >= 2);
        assert_eq!(dir.len(), 1);

        // Withdrawal routes a remove per attribute.
        let removed = dir.unsubscribe(0);
        assert!(removed >= 2);
        assert!(dir.is_empty());
        assert_eq!(
            dir.publish_messages_total(),
            put + moved + republish + removed
        );
    }

    #[test]
    fn mutations_keep_the_ranking_equal_to_a_sorted_oracle() {
        let mut dir = MaanDirectory::new(12, 5);
        let mut quotes = spread_quotes(12);
        for q in &quotes {
            let _ = dir.subscribe(*q);
        }
        for step in 0..60usize {
            let gfa = (step * 5) % 12;
            match step % 4 {
                0 => {
                    let price = 0.1 + ((step * 11) % 97) as f64 * 0.09;
                    let _ = dir.update_price(gfa, price);
                    quotes[gfa].price = price;
                }
                1 => {
                    // Withdraw and immediately re-publish with fresh values.
                    let _ = dir.unsubscribe(gfa);
                    quotes[gfa].mips = 300.0 + ((step * 13) % 140) as f64 * 10.0;
                    let _ = dir.subscribe(quotes[gfa]);
                }
                _ => {
                    quotes[gfa].price = 0.3 + ((step * 7) % 31) as f64 * 0.25;
                    let _ = dir.subscribe(quotes[gfa]);
                }
            }
            let mut by_price: Vec<&Quote> = quotes.iter().collect();
            by_price.sort_by(|a, b| a.price.total_cmp(&b.price).then(a.gfa.cmp(&b.gfa)));
            let mut by_speed: Vec<&Quote> = quotes.iter().collect();
            by_speed.sort_by(|a, b| b.mips.total_cmp(&a.mips).then(a.gfa.cmp(&b.gfa)));
            for r in 1..=12 {
                assert_eq!(
                    dir.kth_cheapest(r).unwrap().gfa,
                    by_price[r - 1].gfa,
                    "step {step}: rank {r} cheapest diverged"
                );
                let fast = dir.kth_fastest(r).unwrap();
                assert_eq!(fast.gfa, by_speed[r - 1].gfa, "step {step}: rank {r} fastest diverged");
                // Regression: a reprice must refresh the speed register's
                // replica, or streamed quotes would carry stale prices.
                assert_eq!(
                    fast.price.to_bits(),
                    quotes[fast.gfa].price.to_bits(),
                    "step {step}: rank {r} speed replica carries a stale price"
                );
            }
        }
    }

    #[test]
    fn route_telemetry_tracks_rank1_lookups() {
        let dir = paper_maan(8);
        assert_eq!(dir.average_route_hops(), 0.0);
        let head = dir.query_cheapest(2, 1);
        assert!(head.messages >= 1);
        assert_eq!(dir.average_route_hops(), head.messages as f64);
        let _ = dir.query_cheapest(2, 2);
        assert_eq!(dir.routes.get(), 1, "advances are not routed lookups");
        assert!(dir.hops_total() > head.messages);
        assert!(dir.query_message_cost() >= 1);
        assert!(dir.queries_served() >= 2);
    }

    #[test]
    fn same_arc_ties_resolve_through_the_node_local_comparator() {
        // Quotes far beyond the calibrated domain clamp onto the same
        // boundary key — one owner node — and must still rank exactly.
        let mut dir = MaanDirectory::new(6, 7);
        for (gfa, price) in [(0, 50.0), (1, 80.0), (2, 50.0), (3, 11.0)] {
            let _ = dir.subscribe(Quote { gfa, processors: 8, mips: 500.0, bandwidth: 1.0, price });
        }
        let order: Vec<usize> = (1..=4).map(|r| dir.kth_cheapest(r).unwrap().gfa).collect();
        assert_eq!(order, vec![3, 0, 2, 1], "ties break by price then GFA");
        // All four clamped price entries share one owner node.
        let owners: Vec<usize> = (0..6)
            .filter(|&g| dir.node_entries(g, RankOrder::Cheapest) > 0)
            .collect();
        assert_eq!(
            owners.len(),
            1,
            "every price here clamps onto the domain boundary key, so one node owns all of them: {owners:?}"
        );
    }

    fn populated(n: usize, seed: u64) -> MaanDirectory {
        let mut dir = MaanDirectory::new(n, seed);
        for q in spread_quotes(n) {
            let _ = dir.subscribe(q);
        }
        dir
    }

    #[test]
    fn graceful_departure_hands_off_stored_entries() {
        // Twin directories pin the handoff charge exactly: the twin measures
        // the withdrawal cost and the post-withdrawal store occupancy, so the
        // depart must charge `routed removes + one transfer per entry the
        // departing node still held for others`.
        let mut twin = populated(16, 3);
        let g = (0..16)
            .max_by_key(|&g| {
                twin.node_entries(g, RankOrder::Cheapest) + twin.node_entries(g, RankOrder::Fastest)
            })
            .unwrap();
        let withdraw = twin.unsubscribe(g);
        let held =
            twin.node_entries(g, RankOrder::Cheapest) + twin.node_entries(g, RankOrder::Fastest);
        assert!(held > 0, "the busiest node must store entries for others");

        let mut dir = populated(16, 3);
        let messages = dir.node_depart(g, true);
        assert_eq!(
            messages,
            withdraw + held as u64,
            "handoff charges one successor-transfer message per stored entry"
        );
        assert_eq!(dir.node_entries(g, RankOrder::Cheapest), 0);
        assert_eq!(dir.node_entries(g, RankOrder::Fastest), 0);
        assert!(!dir.is_node_live(g));
        assert!(dir.serves_only_live());
        assert_eq!(dir.len(), 15);
        assert_eq!(dir.membership_epoch(), 1);
        assert_eq!(dir.node_depart(g, true), 0, "departing twice is a no-op");

        // The inherited entries still rank exactly against a sorted oracle.
        let mut rest: Vec<Quote> = spread_quotes(16).into_iter().filter(|q| q.gfa != g).collect();
        rest.sort_by(|a, b| a.price.total_cmp(&b.price).then(a.gfa.cmp(&b.gfa)));
        for (i, q) in rest.iter().enumerate() {
            assert_eq!(dir.kth_cheapest(i + 1).unwrap().gfa, q.gfa, "rank {}", i + 1);
        }
        assert!(dir.kth_cheapest(16).is_none());
    }

    #[test]
    fn crashed_stores_detour_to_replicas_or_fault() {
        // `dir` runs replicated (k = 2) with one pre-crash stabilization
        // round (copies exist); `k1` is an unreplicated twin with identical
        // content and ring, so per-rank results pin the detour surcharge and
        // the fault behaviour against each other.
        let mut dir = populated(16, 3);
        dir.set_replication(2);
        let repaired = dir.stabilize();
        assert!(repaired > 0, "replica placement charges one message per copy");
        assert!(dir.replication_ok());
        assert_eq!(dir.stabilize(), 0, "replicas in place: a second round is free");

        let mut k1 = populated(16, 3);
        let victim = (0..16)
            .max_by_key(|&g| k1.node_entries(g, RankOrder::Cheapest))
            .unwrap();
        assert_eq!(dir.node_depart(victim, false), 0, "a crash is silent");
        assert_eq!(k1.node_depart(victim, false), 0);

        let mut faulted = 0usize;
        for r in 1..=dir.len() {
            let replicated = dir.query_cheapest(0, r);
            let bare = k1.query_cheapest(0, r);
            assert!(replicated.quote.is_some(), "rank {r}: a replica must answer");
            assert!(!dir.take_fault());
            if bare.quote.is_none() {
                assert!(k1.take_fault(), "rank {r}: missing answers must flag a fault");
                faulted += 1;
                assert_eq!(
                    replicated.messages,
                    bare.messages + 1,
                    "rank {r}: a replica detour costs one successor hop"
                );
            } else {
                assert_eq!(replicated.quote, bare.quote, "rank {r}");
                assert_eq!(replicated.messages, bare.messages, "rank {r}");
            }
        }
        assert!(faulted > 0, "the crashed node stored survivor entries");
        assert!(dir.serves_only_live() && k1.serves_only_live());

        // Stabilization evicts the ghost, hands its entries to the inheriting
        // owner and re-repairs the replica set; lookups recover on both.
        for d in [&mut dir, &mut k1] {
            assert!(d.stabilize() > 0);
            assert_eq!(d.membership_epoch(), 2);
            for r in 1..=d.len() {
                assert!(d.query_cheapest(0, r).quote.is_some(), "rank {r}");
                assert!(!d.take_fault());
            }
            assert!(d.replication_ok());
            // Rejoin restores the ring; the quote republish is the GFA's job.
            assert!(d.node_join(victim) >= 1);
            assert!(d.is_node_live(victim));
            assert_eq!(d.len(), 15);
            let _ = d.subscribe(spread_quotes(16)[victim]);
            assert_eq!(d.len(), 16);
        }
    }

    #[test]
    fn replication_is_inert_without_stabilization() {
        // Satellite guarantee: on a churn-free ring a k = 3 directory charges
        // and resolves bit-identically to a k = 1 one — copies only come into
        // existence through stabilization rounds, which static runs never
        // schedule.
        let mut k1 = MaanDirectory::new(12, 5);
        let mut k3 = MaanDirectory::new(12, 5);
        k3.set_replication(3);
        for q in spread_quotes(12) {
            assert_eq!(k1.subscribe(q), k3.subscribe(q));
        }
        for r in 1..=12 {
            let a = k1.query_cheapest(1, r);
            let b = k3.query_cheapest(1, r);
            assert_eq!(a.quote, b.quote, "rank {r}");
            assert_eq!(a.messages, b.messages, "rank {r}");
        }
        assert_eq!(k1.update_price(3, 7.7), k3.update_price(3, 7.7));
        assert_eq!(k1.unsubscribe(5), k3.unsubscribe(5));
        assert_eq!(k1.publish_messages_total(), k3.publish_messages_total());
        assert_eq!(k1.epoch(), k3.epoch());
        assert_eq!(k3.membership_epoch(), 0);
        assert!(k3.replication_ok());
        // A churn-free stabilization round of an unreplicated directory is
        // free and leaves every observable unchanged.
        let e = k1.epoch();
        assert_eq!(k1.stabilize(), 0);
        assert_eq!(k1.epoch(), e);
    }
}
