//! # grid-directory — the shared federation directory
//!
//! The Grid-Federation paper *assumes* the existence of a decentralised,
//! P2P-style directory with efficient updates and range queries: every GFA
//! publishes a quote (its resource description `R_i` and access price `c_i`)
//! and can ask for the *r*-th cheapest or *r*-th fastest cluster, at a cost of
//! `O(log n)` messages per query.  The paper deliberately excludes these
//! directory messages from its message-complexity figures and only counts the
//! negotiation traffic.
//!
//! This crate supplies both the assumed abstraction and a concrete check of
//! it:
//!
//! * [`ideal::IdealDirectory`] — the model the experiments use: a consistent
//!   quote store with exact `k`-th cheapest / fastest queries whose *modelled*
//!   cost is `⌈log₂ n⌉` messages, matching the paper's assumption.
//! * [`chord::ChordOverlay`] / [`chord::ChordDirectory`] — a Chord-style
//!   structured overlay in which quotes are indexed by price-rank and
//!   speed-rank keys; lookups route through actual finger tables and report
//!   real hop counts, which the `ablation_directory` benchmark compares
//!   against the idealised `⌈log₂ n⌉` model.
//! * [`maan::MaanDirectory`] — the MAAN-style multi-attribute range index:
//!   quotes are **stored at the ring nodes owning their
//!   locality-preserving-hashed keys** ([`keys`]), rank queries walk the
//!   distributed range (boundary-crossing advances cost extra hops) and
//!   `subscribe` / `unsubscribe` / `update_price` are routed
//!   put/remove/move operations charged as publish-side traffic.
//! * [`backend::DirectoryBackend`] / [`backend::AnyDirectory`] — the
//!   configuration enum and monomorphic enum-dispatch wrapper that let the
//!   federation pick its backend at run time; traced queries
//!   ([`quote::TracedQuote`]) report the message cost the federation accounts
//!   as a separate `directory` traffic class.
//! * [`cursor::RankCursor`] / [`cursor::QuoteCache`] — the streaming rank
//!   cursor (one routed open, O(1) advances — the execution profile matching
//!   the `O(log n + k)` message model) and the per-GFA, epoch-keyed quote
//!   memo layered on top.  The query-per-rank methods remain as the
//!   differential oracle the cursor path is tested against.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod chord;
pub mod cursor;
pub mod ideal;
pub mod keys;
pub mod maan;
pub mod quote;

pub use backend::{AnyDirectory, DirectoryBackend};
pub use chord::{ChordDirectory, ChordOverlay};
pub use cursor::{CacheStats, QuoteCache, RankCursor};
pub use ideal::IdealDirectory;
pub use maan::MaanDirectory;
pub use quote::{FederationDirectory, Quote, RankOrder, TracedQuote};
