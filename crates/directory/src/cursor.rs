//! Streaming rank cursors and the per-GFA quote cache.
//!
//! The paper's message model for a directory query is `O(log n + k)` —
//! MAAN-style DHT range queries route **once** to the head of a range index
//! and then stream results, one cursor-advance message per rank.  Before
//! this module the federation *charged* that model but *executed* a fresh
//! ranked query per rank (re-routing through Chord, re-pricing the ideal
//! model on every rank-1 probe).  [`RankCursor`] makes the execution cost
//! match the charged cost: one routed lookup opens the cursor, every
//! [`FederationDirectory::cursor_next`] is O(1).
//!
//! [`QuoteCache`] layers per-GFA memoisation on top: quotes already streamed
//! this *epoch* (see [`FederationDirectory::epoch`]) are replayed without
//! touching the backend's resolution machinery at all, while the directory's
//! telemetry (queries served, routed lookups, hop totals) is kept
//! bit-identical through [`FederationDirectory::note_replayed_query`].  Any
//! mutation — `subscribe`, `unsubscribe`, `update_price` — bumps the epoch
//! and lazily invalidates both cursors and caches.

use crate::quote::{FederationDirectory, RankOrder, TracedQuote};

/// A streaming cursor over one ranking of the federation directory.
///
/// Obtained from [`FederationDirectory::open_cursor`] (one routed lookup);
/// advanced with [`FederationDirectory::cursor_next`] (one message, O(1)
/// work per rank).  The cursor is a plain value — it holds no borrow of the
/// directory, so a GFA can keep one per in-flight job while the directory
/// lives in shared state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an opened cursor carries a pre-paid route charge that must be yielded"]
pub struct RankCursor {
    pub(crate) origin: usize,
    pub(crate) order: RankOrder,
    /// Ranks already yielded; the next yield is rank `yielded + 1`.
    pub(crate) yielded: usize,
    /// Directory epoch the cursor's route was established at.
    pub(crate) epoch: u64,
    /// Messages the routed open cost (charged when rank 1 is yielded).
    pub(crate) route_messages: u64,
}

impl RankCursor {
    /// Builds a cursor positioned before rank 1 with a pre-paid route cost.
    /// Backends construct these in `open_cursor`.
    pub(crate) fn opened(origin: usize, order: RankOrder, epoch: u64, route_messages: u64) -> Self {
        RankCursor {
            origin,
            order,
            yielded: 0,
            epoch,
            route_messages,
        }
    }

    /// Builds a cursor resuming mid-stream so its next yield is rank
    /// `next_rank` (≥ 2): used by [`QuoteCache`] when the head of a ranking
    /// was served from cache and the stream continues past the cached
    /// prefix.  A resumed cursor never yields rank 1, so it carries no route
    /// cost.
    ///
    /// # Panics
    /// Panics if `next_rank < 2` — resuming *at* the head must go through a
    /// routed [`FederationDirectory::open_cursor`] instead.
    pub fn resume(origin: usize, order: RankOrder, epoch: u64, next_rank: usize) -> Self {
        assert!(next_rank >= 2, "resuming at rank {next_rank}: the head needs a routed open");
        RankCursor {
            origin,
            order,
            yielded: next_rank - 1,
            epoch,
            route_messages: 0,
        }
    }

    /// GFA the cursor routes and charges on behalf of.
    #[must_use]
    #[inline]
    pub fn origin(&self) -> usize {
        self.origin
    }

    /// Ranking this cursor streams.
    #[must_use]
    #[inline]
    pub fn order(&self) -> RankOrder {
        self.order
    }

    /// The rank the next [`FederationDirectory::cursor_next`] will yield.
    #[must_use]
    #[inline]
    pub fn next_rank(&self) -> usize {
        self.yielded + 1
    }

    /// Repositions the cursor so its next yield is rank `next_rank` (≥ 2).
    /// O(1): cursors address ranks positionally, so seeking is free — only
    /// the head of a ranking ever needs a routed open.
    ///
    /// # Panics
    /// Panics if `next_rank < 2`.
    #[inline]
    pub fn seek(&mut self, next_rank: usize) {
        assert!(next_rank >= 2, "seeking to rank {next_rank}: the head needs a routed open");
        self.yielded = next_rank - 1;
    }
}

/// Hit/miss counters of a [`QuoteCache`], aggregated into the federation
/// report for observability (they never feed the rendered tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache (replayed telemetry, no resolution).
    pub hits: u64,
    /// Probes that had to stream a fresh rank from the directory.
    pub misses: u64,
}

impl CacheStats {
    /// Component-wise sum, for aggregating per-GFA caches into one report.
    #[must_use]
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// One ranking's cached prefix.
#[derive(Debug, Clone, Default)]
struct OrderCache {
    /// `ranks[r - 1]`: `None` = not yet resolved this epoch;
    /// `Some(traced)` = resolved — the quote (whose inner `None` means
    /// "past the end of the directory") **and** the message charge the live
    /// stream paid for that rank.  The charge is cached per rank because it
    /// is not a constant: rank 1 carries the routed open, and MAAN range
    /// walks charge extra messages on advances that cross node boundaries.
    ranks: Vec<Option<TracedQuote>>,
}

/// A per-GFA memo of quotes streamed from the directory, keyed by
/// `(ordering, epoch)`.
///
/// The DBC loop of *every* job probes the same ranking from rank 1, so
/// consecutive jobs of one GFA mostly re-read quotes the GFA already fetched.
/// The cache replays those probes locally — same quote, same message charge,
/// same directory telemetry (via
/// [`FederationDirectory::note_replayed_query`]) — and only streams fresh
/// ranks through the job's [`RankCursor`] on a miss.  The first probe after
/// any directory mutation observes a new [`FederationDirectory::epoch`] and
/// drops the whole memo, so cached answers are never stale.
#[derive(Debug, Clone, Default)]
pub struct QuoteCache {
    /// Epoch the cached prefixes were streamed at (`None` = cold).
    epoch: Option<u64>,
    orders: [OrderCache; 2],
    stats: CacheStats,
}

impl QuoteCache {
    /// Creates an empty (cold) cache.
    #[must_use]
    pub fn new() -> Self {
        QuoteCache::default()
    }

    /// Hit/miss counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Serves the `r`-th quote (1-based) in `order` on behalf of GFA
    /// `origin`, replaying from the cache when the directory epoch still
    /// matches and streaming through `cursor` otherwise.  `cursor` is the
    /// probing job's cursor slot: it is opened (routed) on a rank-1 miss,
    /// resumed mid-stream on a deeper miss, and left untouched by hits.
    ///
    /// The returned [`TracedQuote`] — quote *and* message charge — is
    /// bit-identical to what [`FederationDirectory::query_ranked`] would
    /// answer for the same directory state, which is what the differential
    /// proptests assert.
    ///
    /// # Panics
    /// Panics if `r == 0`; rank 0 is answered locally for free and never
    /// reaches the cache.
    pub fn probe<D: FederationDirectory + ?Sized>(
        &mut self,
        dir: &D,
        origin: usize,
        order: RankOrder,
        r: usize,
        cursor: &mut Option<RankCursor>,
    ) -> TracedQuote {
        assert!(r >= 1, "rank 0 never reaches the quote cache");
        let epoch = dir.epoch();
        if self.epoch != Some(epoch) {
            // The directory mutated since the prefixes were streamed: drop
            // them.  Stale cursors revalidate themselves lazily inside
            // `cursor_next`, so they are left in place.
            self.epoch = Some(epoch);
            for oc in &mut self.orders {
                oc.ranks.clear();
            }
        }

        let oc = &mut self.orders[order.index()];
        if let Some(answer) = oc.ranks.get(r - 1).copied().flatten() {
            // Replay the exact charge the live stream paid for this rank at
            // this epoch (charges are deterministic per epoch, so the memo
            // cannot go stale without the epoch moving first).
            dir.note_replayed_query(origin, order, r, answer.messages);
            self.stats.hits += 1;
            return answer;
        }

        // Miss: stream the rank through the job's cursor.
        self.stats.misses += 1;
        let cur = match cursor {
            Some(c) if c.order() == order && c.origin() == origin && r > 1 => {
                c.seek(r);
                c
            }
            // A live cursor never rewinds to the head (jobs probe strictly
            // increasing ranks); a rank-1 miss with a cursor in hand means
            // the epoch moved — re-open (routed).  `Option::insert` hands
            // back the freshly stored cursor without an unwrap on the hot
            // path.
            _ => cursor.insert(if r == 1 {
                dir.open_cursor(origin, order)
            } else {
                RankCursor::resume(origin, order, epoch, r)
            }),
        };
        let traced = dir.cursor_next(cur);
        if dir.peek_fault() {
            // The route died at a crashed node and no replica answered: the
            // charge is real but the `None` answer is not rank data.  Leave
            // the memo empty — a retry must probe the live (possibly
            // repaired) directory — and discard the cursor so the retry
            // re-opens a fresh route instead of advancing a dead one.
            *cursor = None;
            return traced;
        }
        if oc.ranks.len() < r {
            oc.ranks.resize(r, None);
        }
        oc.ranks[r - 1] = Some(traced);
        traced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DirectoryBackend;
    use crate::quote::Quote;

    fn quote(gfa: usize, mips: f64, price: f64) -> Quote {
        Quote {
            gfa,
            processors: 64,
            mips,
            bandwidth: 1.0,
            price,
        }
    }

    fn populated(backend: DirectoryBackend, n: usize) -> crate::backend::AnyDirectory {
        let mut dir = backend.build(n, 77);
        for i in 0..n {
            let _ = dir.subscribe(quote(i, 400.0 + 13.0 * ((i * 7) % n) as f64, 1.0 + 0.3 * ((i * 3) % n) as f64));
        }
        dir
    }

    #[test]
    fn cursor_streams_the_whole_ranking() {
        for backend in DirectoryBackend::ALL {
            let dir = populated(backend, 9);
            for order in RankOrder::ALL {
                let mut cursor = dir.open_cursor(4, order);
                assert_eq!(cursor.next_rank(), 1);
                for r in 1..=10 {
                    let streamed = dir.cursor_next(&mut cursor);
                    let fresh = dir.query_ranked(4, order, r);
                    assert_eq!(streamed.quote, fresh.quote, "{backend:?} {order:?} rank {r}");
                    assert_eq!(
                        streamed.messages, fresh.messages,
                        "{backend:?} {order:?} rank {r}: cursor charges must equal the oracle's"
                    );
                    assert!(streamed.messages >= 1);
                    assert_eq!(cursor.next_rank(), r + 1);
                }
                // Rank 10 of a 9-GFA directory is past the end.
                assert_eq!(cursor.order(), order);
                assert_eq!(cursor.origin(), 4);
            }
        }
    }

    #[test]
    fn cursor_revalidates_after_mutations() {
        for backend in DirectoryBackend::ALL {
            let mut dir = populated(backend, 6);
            let mut cursor = dir.open_cursor(0, RankOrder::Cheapest);
            let head = dir.cursor_next(&mut cursor);
            // Reprice the current head out of first place: the stale cursor
            // must resolve rank 2 of the *new* ranking.
            let old_head = head.quote.unwrap().gfa;
            let _ = dir.update_price(old_head, 1_000.0);
            let next = dir.cursor_next(&mut cursor);
            let fresh = dir.query_ranked(0, RankOrder::Cheapest, 2);
            assert_eq!(next.quote, fresh.quote, "{backend:?}");
            assert_eq!(
                next.messages, fresh.messages,
                "{backend:?}: lazy revalidation is not a paid re-route — it charges the \
                 same advance the oracle charges"
            );
        }
    }

    #[test]
    fn pre_head_cursor_reprices_its_route_at_the_current_size() {
        // Ideal backend: the modelled route cost is ⌈log₂ n⌉ at yield time,
        // exactly like the query-per-rank oracle.
        let mut dir = populated(DirectoryBackend::Ideal, 32);
        let mut cursor = dir.open_cursor(0, RankOrder::Fastest);
        for gfa in 16..32 {
            let _ = dir.unsubscribe(gfa);
        }
        let head = dir.cursor_next(&mut cursor);
        assert_eq!(head.messages, 4, "⌈log₂ 16⌉, not the stale ⌈log₂ 32⌉");
    }

    #[test]
    fn seek_and_resume_reject_the_head() {
        let dir = populated(DirectoryBackend::Ideal, 4);
        let mut cursor = dir.open_cursor(0, RankOrder::Cheapest);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cursor.seek(1))).is_err());
        assert!(std::panic::catch_unwind(|| RankCursor::resume(0, RankOrder::Cheapest, 0, 1)).is_err());
        let resumed = RankCursor::resume(2, RankOrder::Fastest, dir.epoch(), 3);
        assert_eq!(resumed.next_rank(), 3);
    }

    #[test]
    fn cache_replays_hits_with_identical_charges_and_telemetry() {
        for backend in DirectoryBackend::ALL {
            // Two identical directories: one probed through the cache, one
            // through the query-per-rank oracle.
            let cached_dir = populated(backend, 8);
            let oracle_dir = populated(backend, 8);
            let mut cache = QuoteCache::new();
            let mut cursor = None;
            // Job 1 probes ranks 1..=5, job 2 re-probes 1..=3 (hits), job 3
            // goes deeper (6..=8 stream past the cached prefix).
            let probes: Vec<usize> = (1..=5).chain(1..=3).chain(1..=8).collect();
            for (i, r) in probes.iter().copied().enumerate() {
                if r == 1 {
                    cursor = None; // a new job starts a fresh cursor
                }
                let got = cache.probe(&cached_dir, 3, RankOrder::Cheapest, r, &mut cursor);
                let want = oracle_dir.query_ranked(3, RankOrder::Cheapest, r);
                assert_eq!(got, want, "{backend:?} probe {i} (rank {r})");
            }
            let stats = cache.stats();
            assert_eq!(stats.hits + stats.misses, probes.len() as u64);
            assert_eq!(stats.misses, 8, "each rank streams exactly once per epoch");
            // Replayed telemetry keeps the directories indistinguishable.
            assert_eq!(cached_dir.queries_served(), oracle_dir.queries_served(), "{backend:?}");
            assert_eq!(
                cached_dir.average_route_messages().to_bits(),
                oracle_dir.average_route_messages().to_bits(),
                "{backend:?}: route telemetry must replay bit-identically"
            );
        }
    }

    #[test]
    fn cache_invalidates_on_every_mutation_kind() {
        for backend in DirectoryBackend::ALL {
            let mut cached_dir = populated(backend, 8);
            let mut oracle_dir = populated(backend, 8);
            let mut cache = QuoteCache::new();
            let mutate: [&dyn Fn(&mut crate::backend::AnyDirectory); 3] = [
                &|d| {
                    let _ = d.update_price(2, 0.05);
                },
                &|d| {
                    let _ = d.unsubscribe(5);
                },
                &|d| {
                    let _ = d.subscribe(Quote { gfa: 5, processors: 8, mips: 9_000.0, bandwidth: 1.0, price: 9.0 });
                },
            ];
            for (step, m) in mutate.iter().enumerate() {
                let mut cursor = None;
                for r in 1..=4 {
                    let got = cache.probe(&cached_dir, 1, RankOrder::Fastest, r, &mut cursor);
                    let want = oracle_dir.query_ranked(1, RankOrder::Fastest, r);
                    assert_eq!(got, want, "{backend:?} step {step} rank {r}");
                }
                m(&mut cached_dir);
                m(&mut oracle_dir);
            }
            // Every mutation starts a fresh epoch, so all 3 × 4 probes
            // streamed (no stale hits survived an invalidation).
            assert_eq!(cache.stats().misses, 12, "probes after a mutation must re-stream");
            assert_eq!(cache.stats().hits, 0);
        }
    }

    #[test]
    fn cache_stats_merge() {
        let a = CacheStats { hits: 3, misses: 2 };
        let b = CacheStats { hits: 1, misses: 5 };
        assert_eq!(a.merged(b), CacheStats { hits: 4, misses: 7 });
        assert_eq!(CacheStats::default().merged(a), a);
    }

    #[test]
    #[should_panic(expected = "rank 0 never reaches the quote cache")]
    fn cache_rejects_rank_zero() {
        let dir = populated(DirectoryBackend::Ideal, 4);
        let mut cache = QuoteCache::new();
        let mut cursor = None;
        let _ = cache.probe(&dir, 0, RankOrder::Cheapest, 0, &mut cursor);
    }
}
