//! A Chord-style structured overlay used to validate the paper's `O(log n)`
//! directory assumption.
//!
//! The paper assumes an efficient P2P directory (it cites MAAN-style
//! multi-attribute DHTs) and models each ranking query as `O(log n)`
//! messages.  [`ChordOverlay`] implements real Chord routing state — node
//! identifiers on a 2⁶⁴ ring and per-node finger tables — and counts the hops
//! taken by greedy closest-preceding-finger routing.  [`ChordDirectory`]
//! layers the federation-directory interface on top: every ranking query is
//! routed through the overlay from a rotating origin node so that the *hop
//! count is measured*, while the query result itself is resolved exactly
//! (rank data placement is idealised — the point of this module is to check
//! the message-cost model, not to re-implement MAAN's range trees).

use crate::ideal::IdealDirectory;
use crate::quote::{FederationDirectory, Quote};

/// SplitMix64 hash used to place nodes and keys on the ring.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Is `x` in the half-open ring interval `(from, to]`?
fn in_interval(x: u64, from: u64, to: u64) -> bool {
    if from < to {
        x > from && x <= to
    } else if from > to {
        x > from || x <= to
    } else {
        // from == to: the interval covers the whole ring.
        true
    }
}

/// One overlay node: its ring identifier and finger table.
#[derive(Debug, Clone)]
struct ChordNode {
    /// Index of the GFA this node represents.
    gfa: usize,
    /// Ring identifier.
    id: u64,
    /// `fingers[j]` = index (into the overlay's node vector) of the successor
    /// of `id + 2^j`.
    fingers: Vec<usize>,
}

/// A Chord ring over the federation's GFAs.
#[derive(Debug, Clone)]
pub struct ChordOverlay {
    nodes: Vec<ChordNode>,
    /// Node vector indices sorted by ring id, for successor lookups.
    ring_order: Vec<usize>,
}

impl ChordOverlay {
    /// Number of finger-table entries (bits of the identifier space).
    pub const ID_BITS: usize = 64;

    /// Builds an overlay of `n` nodes (GFA indices `0..n`), placing each node
    /// at `hash64(seed ⊕ gfa)` on the ring.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "an overlay needs at least one node");
        let mut nodes: Vec<ChordNode> = (0..n)
            .map(|gfa| ChordNode {
                gfa,
                id: hash64(seed ^ (gfa as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)),
                fingers: Vec::new(),
            })
            .collect();
        let mut ring_order: Vec<usize> = (0..n).collect();
        ring_order.sort_by_key(|&i| nodes[i].id);

        // Successor of an arbitrary key, as an index into `nodes`.
        let successor_of = |key: u64, nodes: &[ChordNode], ring: &[usize]| -> usize {
            match ring.binary_search_by(|&i| nodes[i].id.cmp(&key)) {
                Ok(pos) => ring[pos],
                Err(pos) => ring[pos % ring.len()],
            }
        };

        for i in 0..n {
            let id = nodes[i].id;
            let fingers: Vec<usize> = (0..Self::ID_BITS)
                .map(|j| {
                    let target = id.wrapping_add(1u64.wrapping_shl(j as u32));
                    successor_of(target, &nodes, &ring_order)
                })
                .collect();
            nodes[i].fingers = fingers;
        }
        ChordOverlay { nodes, ring_order }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the overlay is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The GFA index owning `key` (its successor on the ring).
    #[must_use]
    pub fn owner_of(&self, key: u64) -> usize {
        let idx = match self
            .ring_order
            .binary_search_by(|&i| self.nodes[i].id.cmp(&key))
        {
            Ok(pos) => self.ring_order[pos],
            Err(pos) => self.ring_order[pos % self.ring_order.len()],
        };
        self.nodes[idx].gfa
    }

    /// Routes from the node representing `from_gfa` towards `key` using
    /// closest-preceding-finger forwarding.  Returns `(owner_gfa, hops)`
    /// where `hops` is the number of overlay messages used.
    ///
    /// # Panics
    /// Panics if `from_gfa` is not part of the overlay.
    #[must_use]
    pub fn lookup(&self, from_gfa: usize, key: u64) -> (usize, u32) {
        let mut current = self
            .nodes
            .iter()
            .position(|n| n.gfa == from_gfa)
            .unwrap_or_else(|| panic!("GFA {from_gfa} is not in the overlay"));
        let mut hops = 0u32;
        // Hard bound to guarantee termination even if the finger tables were
        // corrupted; 4·bits is far beyond any legitimate route length.
        let max_hops = (Self::ID_BITS as u32) * 4;
        loop {
            let node = &self.nodes[current];
            let successor = node.fingers[0];
            if in_interval(key, node.id, self.nodes[successor].id) {
                return (self.nodes[successor].gfa, hops + 1);
            }
            // Closest preceding finger.
            let mut next = successor;
            for &f in node.fingers.iter().rev() {
                if in_interval(self.nodes[f].id, node.id, key.wrapping_sub(1)) {
                    next = f;
                    break;
                }
            }
            if next == current {
                return (node.gfa, hops);
            }
            current = next;
            hops += 1;
            if hops >= max_hops {
                return (self.nodes[current].gfa, hops);
            }
        }
    }

    /// Average hops over a deterministic sample of `samples` random lookups,
    /// used by tests and the directory ablation bench.
    #[must_use]
    pub fn average_lookup_hops(&self, samples: usize, seed: u64) -> f64 {
        if samples == 0 {
            return 0.0;
        }
        let mut total = 0u64;
        for s in 0..samples {
            let key = hash64(seed ^ (s as u64).wrapping_mul(0x9E37_79B9));
            let from = (hash64(seed.wrapping_add(s as u64)) % self.nodes.len() as u64) as usize;
            let (_, hops) = self.lookup(from, key);
            total += u64::from(hops);
        }
        total as f64 / samples as f64
    }
}

/// A federation directory whose ranking queries are routed through a
/// [`ChordOverlay`], so that each query's message cost is a *measured* hop
/// count rather than the idealised `⌈log₂ n⌉`.
#[derive(Debug)]
pub struct ChordDirectory {
    overlay: ChordOverlay,
    exact: IdealDirectory,
    /// Rotates the query origin so hops are averaged over all entry points.
    next_origin: std::cell::Cell<usize>,
    hops_total: std::cell::Cell<u64>,
    seed: u64,
}

impl ChordDirectory {
    /// Builds the directory for `n` GFAs.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        ChordDirectory {
            overlay: ChordOverlay::new(n, seed),
            exact: IdealDirectory::new(),
            next_origin: std::cell::Cell::new(0),
            hops_total: std::cell::Cell::new(0),
            seed,
        }
    }

    /// The underlying overlay (for inspection in benches and tests).
    #[must_use]
    pub fn overlay(&self) -> &ChordOverlay {
        &self.overlay
    }

    /// Total overlay hops spent on ranking queries so far.
    #[must_use]
    pub fn hops_total(&self) -> u64 {
        self.hops_total.get()
    }

    /// Average hops per ranking query served so far.
    #[must_use]
    pub fn average_hops_per_query(&self) -> f64 {
        let served = self.exact.queries_served();
        if served == 0 {
            0.0
        } else {
            self.hops_total.get() as f64 / served as f64
        }
    }

    fn route_query(&self, dimension: u64, rank: usize) {
        let key = hash64(self.seed ^ dimension.wrapping_mul(31) ^ (rank as u64).wrapping_mul(0x517C_C1B7));
        let origin = self.next_origin.get() % self.overlay.len();
        self.next_origin.set(origin + 1);
        let (_, hops) = self.overlay.lookup(origin, key);
        self.hops_total.set(self.hops_total.get() + u64::from(hops));
    }
}

impl FederationDirectory for ChordDirectory {
    fn subscribe(&mut self, quote: Quote) {
        self.exact.subscribe(quote);
    }
    fn unsubscribe(&mut self, gfa: usize) {
        self.exact.unsubscribe(gfa);
    }
    fn update_price(&mut self, gfa: usize, price: f64) {
        self.exact.update_price(gfa, price);
    }
    fn kth_cheapest(&self, r: usize) -> Option<Quote> {
        if r == 0 {
            return None;
        }
        self.route_query(1, r);
        self.exact.kth_cheapest(r)
    }
    fn kth_fastest(&self, r: usize) -> Option<Quote> {
        if r == 0 {
            return None;
        }
        self.route_query(2, r);
        self.exact.kth_fastest(r)
    }
    fn len(&self) -> usize {
        self.exact.len()
    }
    fn query_message_cost(&self) -> u64 {
        // Report the measured average, falling back to the model before any
        // query has been served.
        let avg = self.average_hops_per_query();
        if avg > 0.0 {
            avg.round() as u64
        } else {
            self.exact.query_message_cost()
        }
    }
    fn queries_served(&self) -> u64 {
        self.exact.queries_served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_cluster::paper_resources;

    #[test]
    fn ring_interval_logic() {
        assert!(in_interval(5, 3, 8));
        assert!(!in_interval(9, 3, 8));
        assert!(in_interval(8, 3, 8));
        assert!(!in_interval(3, 3, 8));
        // Wrapping interval (from > to).
        assert!(in_interval(1, 60, 5));
        assert!(in_interval(62, 60, 5));
        assert!(!in_interval(30, 60, 5));
        // Degenerate single-node ring.
        assert!(in_interval(42, 7, 7));
    }

    #[test]
    fn lookup_agrees_with_ring_successor() {
        let overlay = ChordOverlay::new(32, 99);
        for probe in 0..200u64 {
            let key = hash64(probe.wrapping_mul(0xABCD_EF12_3456));
            let expected = overlay.owner_of(key);
            for from in [0usize, 7, 15, 31] {
                let (owner, hops) = overlay.lookup(from, key);
                assert_eq!(owner, expected, "key {key} from {from}");
                assert!(hops >= 1);
            }
        }
    }

    #[test]
    fn lookups_terminate_in_logarithmic_hops() {
        for &n in &[8usize, 16, 32, 64, 128] {
            let overlay = ChordOverlay::new(n, 7);
            let bound = 2.0 * (n as f64).log2() + 4.0;
            let avg = overlay.average_lookup_hops(500, 123);
            assert!(
                avg <= bound,
                "n = {n}: average hops {avg} exceeds 2·log2(n)+4 = {bound}"
            );
            assert!(avg >= 1.0);
        }
    }

    #[test]
    fn bigger_rings_need_more_hops_on_average() {
        let small = ChordOverlay::new(8, 5).average_lookup_hops(800, 9);
        let large = ChordOverlay::new(256, 5).average_lookup_hops(800, 9);
        assert!(
            large > small,
            "expected more hops on the larger ring ({large} vs {small})"
        );
    }

    #[test]
    fn chord_directory_returns_exact_results_with_measured_cost() {
        let mut dir = ChordDirectory::new(8, 11);
        for (i, r) in paper_resources().iter().enumerate() {
            dir.subscribe(Quote::from_spec(i, &r.spec));
        }
        assert_eq!(dir.len(), 8);
        assert_eq!(dir.kth_cheapest(1).unwrap().gfa, 3); // LANL Origin
        assert_eq!(dir.kth_fastest(1).unwrap().gfa, 4); // NASA iPSC
        assert!(dir.kth_cheapest(0).is_none());
        assert!(dir.kth_fastest(100).is_none());
        assert!(dir.queries_served() >= 3);
        assert!(dir.hops_total() >= 1);
        assert!(dir.average_hops_per_query() >= 1.0);
        assert!(dir.query_message_cost() >= 1);
        assert!(!dir.overlay().is_empty());
    }

    #[test]
    fn single_node_overlay_works() {
        let overlay = ChordOverlay::new(1, 0);
        let (owner, hops) = overlay.lookup(0, 12345);
        assert_eq!(owner, 0);
        assert!(hops <= 1);
    }
}
