//! A Chord-style structured overlay used to validate the paper's `O(log n)`
//! directory assumption.
//!
//! The paper assumes an efficient P2P directory (it cites MAAN-style
//! multi-attribute DHTs) and models each ranking query as `O(log n)`
//! messages.  [`ChordOverlay`] implements real Chord routing state — node
//! identifiers on a 2⁶⁴ ring and per-node finger tables — and counts the hops
//! taken by greedy closest-preceding-finger routing.  [`ChordDirectory`]
//! layers the federation-directory interface on top: rank-1 queries are
//! routed through the overlay from the *querying GFA's own node* so that the
//! hop count is measured, higher ranks advance a range cursor one hop each
//! (the `O(log n + k)` complexity of DHT range queries), while the query
//! result itself is resolved exactly (rank data placement is idealised — the
//! point of this module is to check the message-cost model, not to
//! re-implement MAAN's range trees).

use crate::cursor::RankCursor;
use crate::ideal::IdealDirectory;
use crate::quote::{FederationDirectory, Quote, RankOrder, TracedQuote};

/// SplitMix64 hash used to place nodes and keys on the ring.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Is `x` in the half-open ring interval `(from, to]`?
fn in_interval(x: u64, from: u64, to: u64) -> bool {
    if from < to {
        x > from && x <= to
    } else if from > to {
        x > from || x <= to
    } else {
        // from == to: the interval covers the whole ring.
        true
    }
}

/// Is `x` in the open ring interval `(from, to)`?
///
/// Used by the closest-preceding-finger test, which must *exclude* the key
/// itself.  The earlier formulation `in_interval(x, from, to.wrapping_sub(1))`
/// flipped to the whole ring whenever `to == from + 1` (wrapping to
/// `from` makes the half-open helper treat the interval as full), i.e. for
/// `key == node.id + 1` every finger — including ones *past* the key — would
/// have qualified as "preceding".  The hazard was masked because the
/// successor check always catches `key == node.id + 1` first, but this helper
/// makes the interval arithmetic correct on its own: `from == to` here means
/// the key *is* the current node's id, for which every other ring position
/// precedes the key (one full wrap), matching Chord's convention.
fn in_open_interval(x: u64, from: u64, to: u64) -> bool {
    if from < to {
        x > from && x < to
    } else if from > to {
        x > from || x < to
    } else {
        x != from
    }
}

/// One overlay node: its ring identifier and finger table.
#[derive(Debug, Clone)]
struct ChordNode {
    /// Index of the GFA this node represents.
    gfa: usize,
    /// Ring identifier.
    id: u64,
    /// `fingers[j]` = index (into the overlay's node vector) of the successor
    /// of `id + 2^j`.
    fingers: Vec<usize>,
    /// Whether the node is currently part of the live ring.  Departed nodes
    /// keep their slot (and finger table, rebuilt over the live ring) so
    /// lookups *originating* at them still terminate, but they own no keys
    /// and no walk arcs.
    alive: bool,
}

/// A Chord ring over the federation's GFAs.
#[derive(Debug, Clone)]
pub struct ChordOverlay {
    nodes: Vec<ChordNode>,
    /// Node vector indices sorted by ring id, for successor lookups.
    ring_order: Vec<usize>,
}

impl ChordOverlay {
    /// Number of finger-table entries (bits of the identifier space).
    pub const ID_BITS: usize = 64;

    /// Builds an overlay of `n` nodes (GFA indices `0..n`), placing each node
    /// at `hash64(seed ⊕ gfa)` on the ring.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "an overlay needs at least one node");
        let nodes: Vec<ChordNode> = (0..n)
            .map(|gfa| ChordNode {
                gfa,
                id: hash64(seed ^ (gfa as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)),
                fingers: Vec::new(),
                alive: true,
            })
            .collect();
        let mut overlay = ChordOverlay {
            nodes,
            ring_order: Vec::new(),
        };
        overlay.rebuild_routing();
        overlay
    }

    /// Successor of an arbitrary key on the live ring, as an index into
    /// `nodes`.
    fn successor_index_of(&self, key: u64) -> usize {
        match self
            .ring_order
            .binary_search_by(|&i| self.nodes[i].id.cmp(&key))
        {
            Ok(pos) => self.ring_order[pos],
            Err(pos) => self.ring_order[pos % self.ring_order.len()],
        }
    }

    /// Rebuilds the ring order and every node's finger table over the
    /// current live membership.  Dead nodes get fingers too — a lookup
    /// *originating* at a departed node must still route onto the live ring.
    fn rebuild_routing(&mut self) {
        let mut ring_order: Vec<usize> =
            (0..self.nodes.len()).filter(|&i| self.nodes[i].alive).collect();
        ring_order.sort_by_key(|&i| self.nodes[i].id);
        self.ring_order = ring_order;
        for i in 0..self.nodes.len() {
            let id = self.nodes[i].id;
            let fingers: Vec<usize> = (0..Self::ID_BITS)
                .map(|j| {
                    let target = id.wrapping_add(1u64.wrapping_shl(j as u32));
                    self.successor_index_of(target)
                })
                .collect();
            self.nodes[i].fingers = fingers;
        }
    }

    /// Number of nodes the overlay was built for (live or departed) — the
    /// federation's GFA count, which origin indices are reduced modulo.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of currently live ring nodes.
    #[must_use]
    pub fn live_len(&self) -> usize {
        self.ring_order.len()
    }

    /// Whether GFA `gfa`'s node is currently part of the live ring.
    #[must_use]
    pub fn is_alive(&self, gfa: usize) -> bool {
        self.nodes.get(gfa).is_some_and(|n| n.alive)
    }

    /// Removes GFA `gfa`'s node from the live ring, rebuilding the routing
    /// state.  Returns whether the membership changed; the last live node is
    /// never removed (the ring is the routing substrate — an empty ring
    /// would strand every subsequent lookup), and removing an unknown or
    /// already-dead node is a no-op.
    pub fn remove_node(&mut self, gfa: usize) -> bool {
        if !self.is_alive(gfa) || self.ring_order.len() <= 1 {
            return false;
        }
        self.nodes[gfa].alive = false;
        self.rebuild_routing();
        true
    }

    /// Re-admits a previously removed node to the live ring, rebuilding the
    /// routing state.  Returns whether the membership changed.
    pub fn insert_node(&mut self, gfa: usize) -> bool {
        if gfa >= self.nodes.len() || self.nodes[gfa].alive {
            return false;
        }
        self.nodes[gfa].alive = true;
        self.rebuild_routing();
        true
    }

    /// The GFA indices of the `count` live ring nodes succeeding `gfa`'s
    /// node (clockwise, excluding `gfa` itself) — the successor list used
    /// for replica placement.  Shorter than `count` on small rings; empty
    /// when `gfa` is not live.
    #[must_use]
    pub fn successors(&self, gfa: usize, count: usize) -> Vec<usize> {
        let n = self.ring_order.len();
        let Some(pos) = self
            .ring_order
            .iter()
            .position(|&i| self.nodes[i].gfa == gfa)
        else {
            return Vec::new();
        };
        (1..=count.min(n.saturating_sub(1)))
            .map(|step| self.nodes[self.ring_order[(pos + step) % n]].gfa)
            .collect()
    }

    /// Whether the overlay is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The GFA index owning `key` (its successor on the live ring).
    #[must_use]
    pub fn owner_of(&self, key: u64) -> usize {
        self.nodes[self.successor_index_of(key)].gfa
    }

    /// Routes from the node representing `from_gfa` towards `key` using
    /// closest-preceding-finger forwarding.  Returns `(owner_gfa, hops)`
    /// where `hops` is the number of overlay messages used.
    ///
    /// # Panics
    /// Panics if `from_gfa` is not part of the overlay.
    #[must_use]
    pub fn lookup(&self, from_gfa: usize, key: u64) -> (usize, u32) {
        let mut current = self
            .nodes
            .iter()
            .position(|n| n.gfa == from_gfa)
            .unwrap_or_else(|| panic!("GFA {from_gfa} is not in the overlay"));
        let mut hops = 0u32;
        // Hard bound to guarantee termination even if the finger tables were
        // corrupted; 4·bits is far beyond any legitimate route length.
        let max_hops = (Self::ID_BITS as u32) * 4;
        loop {
            let node = &self.nodes[current];
            let successor = node.fingers[0];
            if in_interval(key, node.id, self.nodes[successor].id) {
                return (self.nodes[successor].gfa, hops + 1);
            }
            // Closest preceding finger: the furthest finger that lies
            // strictly between this node and the key.
            let mut next = successor;
            for &f in node.fingers.iter().rev() {
                if in_open_interval(self.nodes[f].id, node.id, key) {
                    next = f;
                    break;
                }
            }
            if next == current {
                return (node.gfa, hops);
            }
            current = next;
            hops += 1;
            if hops >= max_hops {
                return (self.nodes[current].gfa, hops);
            }
        }
    }

    /// Number of *walk arcs*: the ring's ownership sub-ranges enumerated in
    /// ascending key order.  Arc `0` is `[0, id₀]` (owned by the first ring
    /// node), arc `j` is `(id_{j-1}, id_j]`, and arc `n` is the wrap range
    /// `(id_{n-1}, u64::MAX]` — owned by the first ring node again, which is
    /// why there is one more arc than nodes.  Range walks (MAAN-style
    /// successor traversals) step through arcs; the arc distance between two
    /// keys is the number of successor hops between their owners.  Only
    /// *live* nodes own arcs, so the arc count shrinks and grows with churn.
    #[must_use]
    pub fn walk_arcs(&self) -> usize {
        self.ring_order.len() + 1
    }

    /// The walk-arc index of `key` (monotone in `key`; see
    /// [`Self::walk_arcs`]).
    #[must_use]
    pub fn walk_arc_of(&self, key: u64) -> usize {
        self.ring_order.partition_point(|&i| self.nodes[i].id < key)
    }

    /// The GFA owning walk arc `arc`.
    #[must_use]
    pub fn walk_arc_owner(&self, arc: usize) -> usize {
        self.nodes[self.ring_order[arc % self.ring_order.len()]].gfa
    }

    /// Average hops over a deterministic sample of `samples` random lookups,
    /// used by tests and the directory ablation bench.
    #[must_use]
    pub fn average_lookup_hops(&self, samples: usize, seed: u64) -> f64 {
        if samples == 0 {
            return 0.0;
        }
        let mut total = 0u64;
        for s in 0..samples {
            let key = hash64(seed ^ (s as u64).wrapping_mul(0x9E37_79B9));
            let from = (hash64(seed.wrapping_add(s as u64)) % self.nodes.len() as u64) as usize;
            let (_, hops) = self.lookup(from, key);
            total += u64::from(hops);
        }
        total as f64 / samples as f64
    }
}

/// A federation directory whose ranking queries are routed through a
/// [`ChordOverlay`], so that each query's message cost is *measured* rather
/// than the idealised `⌈log₂ n⌉`.
///
/// Costs follow the DHT range-query model (`O(log n + k)`, as in MAAN-style
/// multi-attribute overlays): a rank-1 query routes from the querying GFA's
/// own overlay node to the head of the requested ranking (measured
/// closest-preceding-finger hops), and each higher rank advances the range
/// cursor one overlay hop.  Quote resolution itself is exact (rank data
/// placement is idealised — the point of this type is to check the
/// message-cost model, not to re-implement MAAN's range trees), so job
/// outcomes are identical across backends.
#[derive(Debug)]
pub struct ChordDirectory {
    overlay: ChordOverlay,
    exact: IdealDirectory,
    /// All directory messages spent (routed lookups + cursor advances).
    hops_total: std::cell::Cell<u64>,
    /// Routed (rank-1) lookups served, and the hops they took — the
    /// measured counterpart of the paper's `O(log n)` per-query model.
    routes: std::cell::Cell<u64>,
    route_hops: std::cell::Cell<u64>,
    seed: u64,
    /// Replication factor `k` (degradation model only — the rank data is
    /// central, so replication here governs whether a rank-1 route whose
    /// head owner has crashed can detour or must fault).
    replication: usize,
    /// Per-GFA departed flag (graceful leave or crash).
    down: Vec<bool>,
    /// Crashed nodes still occupying their ring position until the next
    /// stabilization round evicts them.
    pending_dead: Vec<usize>,
    /// Bumped on every live-membership change (see
    /// [`FederationDirectory::membership_epoch`]).
    membership_epoch: u64,
    /// Fault flag of the most recent query/cursor operation (see
    /// [`FederationDirectory::take_fault`]).
    fault: std::cell::Cell<bool>,
    /// The crashed node the most recent faulted route terminated at —
    /// the target of a reactive [`FederationDirectory::repair_faulted`].
    last_fault: std::cell::Cell<Option<usize>>,
}

/// `⌈log₂ n⌉`, clamped to at least one message — the modelled cost of one
/// routed maintenance operation (join, per-node eviction repair).  Shared
/// with the MAAN backend, whose joins and evictions route the same way.
pub(crate) fn ceil_log2(n: u64) -> u64 {
    if n <= 1 {
        1
    } else {
        u64::from((n - 1).ilog2()) + 1
    }
}

impl ChordDirectory {
    /// Builds the directory for `n` GFAs.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        ChordDirectory {
            overlay: ChordOverlay::new(n, seed),
            exact: IdealDirectory::new(),
            hops_total: std::cell::Cell::new(0),
            routes: std::cell::Cell::new(0),
            route_hops: std::cell::Cell::new(0),
            seed,
            replication: 1,
            down: vec![false; n],
            pending_dead: Vec::new(),
            membership_epoch: 0,
            fault: std::cell::Cell::new(false),
            last_fault: std::cell::Cell::new(None),
        }
    }

    /// The underlying overlay (for inspection in benches and tests).
    #[must_use]
    pub fn overlay(&self) -> &ChordOverlay {
        &self.overlay
    }

    /// Corrupting test double: rewinds the content epoch (held by the exact
    /// store this backend wraps) to zero.  Only exists so the invariant
    /// tests can prove the epoch monotonicity check fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_epoch_rewind(&mut self) {
        self.exact.corrupt_epoch_rewind();
    }

    /// Corrupting test double: marks the GFA of the first stored quote as
    /// departed *without* withdrawing its quote, so ranking queries keep
    /// serving a dead node's offer.  Only exists so the invariant tests can
    /// prove the `serves_only_live` check fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_serve_departed(&mut self) {
        let gfa = self
            .exact
            .quotes()
            .first()
            .expect("corrupting a directory requires at least one quote")
            .gfa;
        self.down[gfa] = true;
    }

    /// Corrupting test double: rewinds the membership epoch to zero.  Only
    /// exists so the invariant tests can prove the membership-monotonicity
    /// check fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_membership_rewind(&mut self) {
        self.membership_epoch = 0;
    }

    /// Total directory messages spent on ranking queries so far (routed
    /// lookups plus cursor advances).
    #[must_use]
    pub fn hops_total(&self) -> u64 {
        self.hops_total.get()
    }

    /// Average directory messages per ranking query served so far.
    #[must_use]
    pub fn average_hops_per_query(&self) -> f64 {
        let served = self.exact.queries_served();
        if served == 0 {
            0.0
        } else {
            self.hops_total.get() as f64 / served as f64
        }
    }

    /// Average hops of one *routed* lookup (rank-1 cursor establishment) —
    /// the measured quantity the paper models as `O(log n)`.
    #[must_use]
    pub fn average_route_hops(&self) -> f64 {
        let routes = self.routes.get();
        if routes == 0 {
            0.0
        } else {
            self.route_hops.get() as f64 / routes as f64
        }
    }

    /// Walks the overlay from `origin`'s node to the head of the `order`
    /// ranking and returns the measured hop count — the expensive part of a
    /// routed lookup, shared by the query-per-rank path and `open_cursor`.
    fn route_to_head(&self, origin: usize, order: RankOrder) -> u64 {
        let (_, hops) = self
            .overlay
            .lookup(origin % self.overlay.len(), Self::head_key(self.seed, order));
        u64::from(hops)
    }

    /// The ring key a ranking's head cursor lives at.
    fn head_key(seed: u64, order: RankOrder) -> u64 {
        hash64(seed ^ Self::dimension(order).wrapping_mul(31))
    }

    /// Availability of a rank-1 routed lookup under the current churn state:
    /// `(extra_messages, faulted)`.  The route terminates at the node owning
    /// the ranking's head key; if that node has crashed and has not been
    /// evicted yet, a replicated deployment (`k ≥ 2`) detours to the
    /// successor replica for one extra message, while an unreplicated one
    /// faults — the route is wasted and the query answers `None`.
    #[inline]
    fn rank1_availability(&self, order: RankOrder) -> (u64, bool) {
        if self.pending_dead.is_empty() {
            return (0, false);
        }
        let owner = self.overlay.owner_of(Self::head_key(self.seed, order));
        if !self.down[owner] {
            return (0, false);
        }
        if self.replication >= 2 {
            (1, false)
        } else {
            self.last_fault.set(Some(owner));
            (0, true)
        }
    }

    /// Cold tail of [`FederationDirectory::cursor_next`]: lazy revalidation
    /// after an epoch move.  The quote store mutated under the cursor; the
    /// positional read resolves against the current store, and a cursor that
    /// has not yielded yet re-prices its pending route — membership churn
    /// can have changed the ring (and therefore the measured hop count)
    /// since the open.
    #[cold]
    #[inline(never)]
    fn revalidate_cursor(&self, cursor: &mut RankCursor) {
        if cursor.yielded == 0 {
            cursor.route_messages = self.route_to_head(cursor.origin, cursor.order);
        }
        cursor.epoch = self.epoch();
    }

    /// Cold tail of [`FederationDirectory::cursor_next`] for a rank-1 yield
    /// while a crashed node squats on the ring: detours to the successor
    /// replica for one extra message, or reports a fault while still
    /// charging the wasted route.
    #[cold]
    #[inline(never)]
    fn cursor_head_degraded(&self, cursor: &mut RankCursor) -> TracedQuote {
        let (extra, fault) = self.rank1_availability(cursor.order);
        let messages = self.charge_ranked(1, || cursor.route_messages + extra);
        if fault {
            self.fault.set(true);
            return TracedQuote { quote: None, messages };
        }
        let quote = self.exact.resolve_ranked(cursor.order, 1);
        TracedQuote { quote, messages }
    }

    /// The ranking's key-space dimension (1 = price, 2 = speed).
    fn dimension(order: RankOrder) -> u64 {
        match order {
            RankOrder::Cheapest => 1,
            RankOrder::Fastest => 2,
        }
    }

    /// The single place rank-dependent charges are applied, so the oracle
    /// path, the cursor path and cache replays cannot drift apart: rank 1
    /// charges `route_hops()` (lazily — live queries walk the overlay,
    /// cursors and replays reuse a measured walk) and records the routed
    /// lookup; every higher rank is one cursor-advance hop.  All messages
    /// accumulate into `hops_total`.  Rank 0 must be short-circuited by
    /// callers.
    #[inline]
    fn charge_ranked(&self, r: usize, route_hops: impl FnOnce() -> u64) -> u64 {
        debug_assert!(r >= 1, "rank 0 is answered locally and never charged");
        let messages = if r == 1 {
            let hops = route_hops();
            self.routes.set(self.routes.get() + 1);
            self.route_hops.set(self.route_hops.get() + hops);
            hops
        } else {
            1
        };
        self.hops_total.set(self.hops_total.get() + messages);
        messages
    }

}

impl FederationDirectory for ChordDirectory {
    // Like the ideal backend, the quote store is central (only query routing
    // is measured), so mutations charge no publish-side messages.

    fn subscribe(&mut self, quote: Quote) -> u64 {
        self.exact.subscribe(quote)
    }
    fn unsubscribe(&mut self, gfa: usize) -> u64 {
        self.exact.unsubscribe(gfa)
    }
    fn update_price(&mut self, gfa: usize, price: f64) -> u64 {
        self.exact.update_price(gfa, price)
    }
    fn query_cheapest(&self, origin: usize, r: usize) -> TracedQuote {
        if r == 0 {
            return TracedQuote { quote: None, messages: 0 };
        }
        self.fault.set(false);
        let (extra, fault) = if r == 1 {
            self.rank1_availability(RankOrder::Cheapest)
        } else {
            (0, false)
        };
        let messages =
            self.charge_ranked(r, || self.route_to_head(origin, RankOrder::Cheapest) + extra);
        if fault {
            self.fault.set(true);
            return TracedQuote { quote: None, messages };
        }
        TracedQuote {
            quote: self.exact.kth_cheapest(r),
            messages,
        }
    }
    fn query_fastest(&self, origin: usize, r: usize) -> TracedQuote {
        if r == 0 {
            return TracedQuote { quote: None, messages: 0 };
        }
        self.fault.set(false);
        let (extra, fault) = if r == 1 {
            self.rank1_availability(RankOrder::Fastest)
        } else {
            (0, false)
        };
        let messages =
            self.charge_ranked(r, || self.route_to_head(origin, RankOrder::Fastest) + extra);
        if fault {
            self.fault.set(true);
            return TracedQuote { quote: None, messages };
        }
        TracedQuote {
            quote: self.exact.kth_fastest(r),
            messages,
        }
    }
    fn len(&self) -> usize {
        self.exact.len()
    }
    fn query_message_cost(&self) -> u64 {
        // Report the measured average, falling back to the model before any
        // query has been served.
        let avg = self.average_hops_per_query();
        if avg > 0.0 {
            avg.round() as u64
        } else {
            self.exact.query_message_cost()
        }
    }
    fn queries_served(&self) -> u64 {
        self.exact.queries_served()
    }

    fn epoch(&self) -> u64 {
        // The quote store lives in `exact`; the overlay ring is a static
        // routing substrate, so its (never-changing) topology contributes
        // nothing to the epoch.
        self.exact.epoch()
    }

    fn open_cursor(&self, origin: usize, order: RankOrder) -> RankCursor {
        // The one genuinely expensive step: walk the finger tables from the
        // origin's node to the head of the ranking.  Everything after this
        // is O(1) per rank.
        RankCursor::opened(origin, order, self.epoch(), self.route_to_head(origin, order))
    }

    #[inline]
    fn cursor_next(&self, cursor: &mut RankCursor) -> TracedQuote {
        self.fault.set(false);
        if cursor.epoch != self.epoch() {
            self.revalidate_cursor(cursor);
        }
        cursor.yielded += 1;
        let r = cursor.yielded;
        // Out-of-line churn handling keeps the static-ring advance compact
        // enough to stay fully inlined through the enum dispatch (the gated
        // advance_ns metric); only a rank-1 route can terminate at a crashed
        // head node, and only while one awaits stabilization.
        if r == 1 && !self.pending_dead.is_empty() {
            return self.cursor_head_degraded(cursor);
        }
        let messages = self.charge_ranked(r, || cursor.route_messages);
        let quote = self.exact.resolve_ranked(cursor.order, r);
        TracedQuote { quote, messages }
    }

    #[inline]
    fn note_replayed_query(&self, _origin: usize, _order: RankOrder, r: usize, route_messages: u64) {
        if r == 0 {
            return;
        }
        self.exact.count_replayed_query();
        let _ = self.charge_ranked(r, || route_messages);
    }

    fn membership_epoch(&self) -> u64 {
        self.membership_epoch
    }

    fn node_depart(&mut self, gfa: usize, graceful: bool) -> u64 {
        if gfa >= self.down.len() || self.down[gfa] {
            return 0;
        }
        self.down[gfa] = true;
        // The rank data is central, so the departing quote is withdrawn
        // synchronously either way; the withdrawal itself routes nothing
        // under this backend.
        let _ = self.exact.unsubscribe(gfa);
        if graceful {
            // A graceful leave unlinks from the ring immediately — its
            // successor inherits the key range at no modelled message cost
            // (there are no stored entries to move).
            let _ = self.overlay.remove_node(gfa);
        } else {
            // A crash leaves a dead node squatting on its ring position
            // until the next stabilization round evicts it; routes that
            // terminate there degrade in the meantime.
            self.pending_dead.push(gfa);
        }
        self.membership_epoch += 1;
        0
    }

    fn node_join(&mut self, gfa: usize) -> u64 {
        if gfa >= self.down.len() || !self.down[gfa] {
            return 0;
        }
        self.down[gfa] = false;
        self.pending_dead.retain(|&g| g != gfa);
        let _ = self.overlay.insert_node(gfa);
        self.membership_epoch += 1;
        // Joining routes one lookup to locate the successor, `⌈log₂ n⌉`
        // messages on the post-join ring.
        ceil_log2(self.overlay.live_len() as u64)
    }

    fn stabilize(&mut self) -> u64 {
        if self.pending_dead.is_empty() {
            return 0;
        }
        let mut evicted = 0u64;
        for gfa in std::mem::take(&mut self.pending_dead) {
            if self.overlay.remove_node(gfa) {
                evicted += 1;
            }
        }
        if evicted == 0 {
            return 0;
        }
        self.membership_epoch += 1;
        // Ring repair invalidates measured routes and cached charge replays:
        // bump the content epoch so cursors and GFA caches revalidate.
        self.exact.bump_epoch();
        // Per evicted node: the successor-list repair plus finger refresh,
        // modelled at one routed lookup each.
        evicted * ceil_log2(self.overlay.live_len().max(1) as u64)
    }

    fn set_replication(&mut self, k: usize) {
        self.replication = k.max(1);
    }

    fn repair_faulted(&mut self) -> u64 {
        let Some(gfa) = self.last_fault.take() else {
            return 0;
        };
        if !self.pending_dead.contains(&gfa) {
            // Rejoined or already evicted by a stabilization round since the
            // fault was recorded — nothing left to repair.
            return 0;
        }
        self.pending_dead.retain(|&g| g != gfa);
        if !self.overlay.remove_node(gfa) {
            return 0;
        }
        self.membership_epoch += 1;
        // Like a stabilization eviction, the targeted repair invalidates
        // measured routes and cached charge replays.
        self.exact.bump_epoch();
        ceil_log2(self.overlay.live_len().max(1) as u64)
    }

    fn is_node_live(&self, gfa: usize) -> bool {
        !self.down.get(gfa).copied().unwrap_or(false)
    }

    fn peek_fault(&self) -> bool {
        self.fault.get()
    }

    fn take_fault(&self) -> bool {
        self.fault.replace(false)
    }

    fn serves_only_live(&self) -> bool {
        self.exact.quotes().iter().all(|q| !self.down[q.gfa])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_cluster::paper_resources;

    #[test]
    fn ring_interval_logic() {
        assert!(in_interval(5, 3, 8));
        assert!(!in_interval(9, 3, 8));
        assert!(in_interval(8, 3, 8));
        assert!(!in_interval(3, 3, 8));
        // Wrapping interval (from > to).
        assert!(in_interval(1, 60, 5));
        assert!(in_interval(62, 60, 5));
        assert!(!in_interval(30, 60, 5));
        // Degenerate single-node ring.
        assert!(in_interval(42, 7, 7));
    }

    #[test]
    fn open_interval_logic() {
        assert!(in_open_interval(5, 3, 8));
        assert!(!in_open_interval(8, 3, 8)); // endpoint excluded
        assert!(!in_open_interval(3, 3, 8));
        // Wrapping interval.
        assert!(in_open_interval(1, 60, 5));
        assert!(!in_open_interval(5, 60, 5));
        assert!(in_open_interval(u64::MAX, 60, 5));
        // The audited edge: `to == from + 1` must be EMPTY, not the whole
        // ring (the old `to.wrapping_sub(1)` formulation got this wrong).
        assert!(!in_open_interval(7, 6, 7));
        assert!(!in_open_interval(6, 6, 7));
        assert!(!in_open_interval(100, 6, 7));
        assert!(!in_open_interval(0, u64::MAX, 0));
        assert!(!in_open_interval(u64::MAX, u64::MAX, 0));
        // `from == to`: the key is the node's own id — everything except the
        // node itself precedes the key (one full wrap).
        assert!(in_open_interval(42, 7, 7));
        assert!(!in_open_interval(7, 7, 7));
    }

    #[test]
    fn exhaustive_small_rings_route_to_the_true_successor() {
        // Regression suite for the wraparound audit: on small rings, every
        // (origin, key) pair — with keys probing each node id and its ±1
        // wrapping neighbours plus the ring extremes — must reach the exact
        // successor without ever tripping the `max_hops` bail-out.
        let max_route = ChordOverlay::ID_BITS as u32 * 4;
        for n in 1..=12usize {
            for seed in [0u64, 1, 42, 0xBEEF] {
                let overlay = ChordOverlay::new(n, seed);
                let mut keys = vec![0u64, 1, u64::MAX, u64::MAX - 1, u64::MAX / 2];
                for node in &overlay.nodes {
                    keys.push(node.id);
                    keys.push(node.id.wrapping_add(1));
                    keys.push(node.id.wrapping_sub(1));
                }
                for origin in 0..n {
                    for &key in &keys {
                        let expected = overlay.owner_of(key);
                        let (owner, hops) = overlay.lookup(origin, key);
                        assert_eq!(
                            owner, expected,
                            "n={n} seed={seed}: key {key} from {origin} routed to {owner}, true successor is {expected}"
                        );
                        assert!(
                            hops < max_route,
                            "n={n} seed={seed}: key {key} from {origin} hit the max-hops bail-out"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lookup_agrees_with_ring_successor() {
        let overlay = ChordOverlay::new(32, 99);
        for probe in 0..200u64 {
            let key = hash64(probe.wrapping_mul(0xABCD_EF12_3456));
            let expected = overlay.owner_of(key);
            for from in [0usize, 7, 15, 31] {
                let (owner, hops) = overlay.lookup(from, key);
                assert_eq!(owner, expected, "key {key} from {from}");
                assert!(hops >= 1);
            }
        }
    }

    #[test]
    fn lookups_terminate_in_logarithmic_hops() {
        for &n in &[8usize, 16, 32, 64, 128] {
            let overlay = ChordOverlay::new(n, 7);
            let bound = 2.0 * (n as f64).log2() + 4.0;
            let avg = overlay.average_lookup_hops(500, 123);
            assert!(
                avg <= bound,
                "n = {n}: average hops {avg} exceeds 2·log2(n)+4 = {bound}"
            );
            assert!(avg >= 1.0);
        }
    }

    #[test]
    fn bigger_rings_need_more_hops_on_average() {
        let small = ChordOverlay::new(8, 5).average_lookup_hops(800, 9);
        let large = ChordOverlay::new(256, 5).average_lookup_hops(800, 9);
        assert!(
            large > small,
            "expected more hops on the larger ring ({large} vs {small})"
        );
    }

    #[test]
    fn chord_directory_returns_exact_results_with_measured_cost() {
        let mut dir = ChordDirectory::new(8, 11);
        for (i, r) in paper_resources().iter().enumerate() {
            let _ = dir.subscribe(Quote::from_spec(i, &r.spec));
        }
        assert_eq!(dir.len(), 8);
        assert_eq!(dir.kth_cheapest(1).unwrap().gfa, 3); // LANL Origin
        assert_eq!(dir.kth_fastest(1).unwrap().gfa, 4); // NASA iPSC
        assert!(dir.kth_cheapest(0).is_none());
        assert!(dir.kth_fastest(100).is_none());
        assert!(dir.queries_served() >= 3);
        assert!(dir.hops_total() >= 1);
        assert!(dir.average_hops_per_query() >= 1.0);
        assert!(dir.query_message_cost() >= 1);
        assert!(!dir.overlay().is_empty());
    }

    #[test]
    fn walk_arcs_agree_with_ownership() {
        for n in [1usize, 2, 5, 16] {
            let overlay = ChordOverlay::new(n, 77);
            assert_eq!(overlay.walk_arcs(), n + 1);
            let mut last_arc = 0usize;
            for probe in 0..400u64 {
                let key = (u64::MAX / 400) * probe;
                let arc = overlay.walk_arc_of(key);
                assert!(arc >= last_arc || probe == 0, "arcs must be monotone in the key");
                last_arc = arc;
                assert!(arc <= n, "n={n}: arc {arc} out of range");
                assert_eq!(
                    overlay.walk_arc_owner(arc),
                    overlay.owner_of(key),
                    "n={n}: arc owner disagrees with the ring successor for key {key}"
                );
            }
            // The wrap arc belongs to the first ring node.
            assert_eq!(overlay.walk_arc_owner(n), overlay.walk_arc_owner(0));
            assert_eq!(overlay.walk_arc_of(0), 0);
        }
    }

    #[test]
    fn single_node_overlay_works() {
        let overlay = ChordOverlay::new(1, 0);
        let (owner, hops) = overlay.lookup(0, 12345);
        assert_eq!(owner, 0);
        assert!(hops <= 1);
    }

    #[test]
    fn range_cursor_model_charges_log_plus_k() {
        let mut dir = ChordDirectory::new(8, 11);
        for (i, r) in paper_resources().iter().enumerate() {
            let _ = dir.subscribe(Quote::from_spec(i, &r.spec));
        }
        // Rank 1 establishes the cursor: a routed lookup of ≥ 1 hop.
        let head = dir.query_cheapest(2, 1);
        assert!(head.messages >= 1);
        assert_eq!(dir.routes.get(), 1);
        assert_eq!(dir.route_hops.get(), head.messages);
        // Every higher rank advances the cursor exactly one hop.
        for r in 2..=8 {
            assert_eq!(dir.query_cheapest(2, r).messages, 1, "rank {r}");
        }
        assert_eq!(dir.routes.get(), 1, "cursor advances are not routed lookups");
        assert_eq!(dir.hops_total(), head.messages + 7);
        assert!(dir.average_route_hops() >= 1.0);
        // A fresh ranking dimension routes again.
        let fast = dir.query_fastest(5, 1);
        assert!(fast.messages >= 1);
        assert_eq!(dir.routes.get(), 2);
    }

    #[test]
    fn traced_queries_route_from_the_given_origin() {
        let mut dir = ChordDirectory::new(8, 11);
        for (i, r) in paper_resources().iter().enumerate() {
            let _ = dir.subscribe(Quote::from_spec(i, &r.spec));
        }
        // The same (dimension, rank) key from different origins resolves the
        // same quote; only the measured hop count may differ.
        let mut costs = Vec::new();
        for origin in 0..8 {
            let traced = dir.query_cheapest(origin, 1);
            assert_eq!(traced.quote.unwrap().gfa, 3); // LANL Origin
            assert!(traced.messages >= 1);
            costs.push(traced.messages);
        }
        assert!(
            costs.iter().any(|c| *c != costs[0]) || costs.len() == 1,
            "hop counts should depend on the query origin (got {costs:?})"
        );
        // Rank 0 is answered locally and costs nothing.
        let invalid = dir.query_fastest(0, 0);
        assert_eq!(invalid.quote, None);
        assert_eq!(invalid.messages, 0);
        // Out-of-overlay origins (e.g. benches) wrap around instead of
        // panicking.
        assert!(dir.query_fastest(8_000, 2).quote.is_some());
    }

    #[test]
    fn successor_lists_follow_the_live_ring() {
        let overlay = ChordOverlay::new(8, 7);
        for gfa in 0..8 {
            let succ = overlay.successors(gfa, 3);
            assert_eq!(succ.len(), 3);
            assert!(!succ.contains(&gfa), "a node is not its own successor");
        }
        let mut overlay = ChordOverlay::new(4, 7);
        assert_eq!(overlay.successors(0, 10).len(), 3, "capped at n - 1");
        assert!(overlay.remove_node(1));
        assert!(!overlay.remove_node(1), "already-dead removal is a no-op");
        assert_eq!(overlay.live_len(), 3);
        assert!(!overlay.is_alive(1));
        assert!(
            overlay.successors(1, 2).is_empty(),
            "dead nodes have no successor list"
        );
        for gfa in [0usize, 2, 3] {
            assert!(!overlay.successors(gfa, 3).contains(&1));
        }
        assert!(overlay.insert_node(1));
        assert!(!overlay.insert_node(1), "already-live insertion is a no-op");
        assert_eq!(overlay.live_len(), 4);
        // The last live node is never removed: the ring is the routing
        // substrate and an empty one would strand every lookup.
        for gfa in 0..4 {
            let _ = overlay.remove_node(gfa);
        }
        assert_eq!(overlay.live_len(), 1);
    }

    #[test]
    fn graceful_departures_withdraw_immediately() {
        let mut dir = ChordDirectory::new(8, 11);
        for (i, r) in paper_resources().iter().enumerate() {
            let _ = dir.subscribe(Quote::from_spec(i, &r.spec));
        }
        let e = dir.epoch();
        let cost = dir.node_depart(2, true);
        assert_eq!(cost, 0, "central rank data: nothing to hand off");
        assert_eq!(dir.len(), 7);
        assert!(dir.epoch() > e, "the withdrawal revalidates cursors");
        assert!(!dir.is_node_live(2));
        assert!(dir.serves_only_live());
        assert_eq!(dir.overlay().live_len(), 7);
        assert_eq!(dir.node_depart(2, true), 0, "departing twice is a no-op");
        assert_eq!(dir.membership_epoch(), 1);
        // Join cost is the modelled ⌈log₂ n⌉ on the post-join ring.
        assert_eq!(dir.node_join(2), 3);
        assert_eq!(dir.overlay().live_len(), 8);
        assert_eq!(dir.node_join(2), 0, "joining while live is a no-op");
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn crashes_fault_unreplicated_heads_until_stabilization() {
        let mut dir = ChordDirectory::new(8, 11);
        for (i, r) in paper_resources().iter().enumerate() {
            let _ = dir.subscribe(Quote::from_spec(i, &r.spec));
        }
        let head_owner = dir
            .overlay
            .owner_of(ChordDirectory::head_key(dir.seed, RankOrder::Cheapest));
        assert_eq!(dir.membership_epoch(), 0);
        let _ = dir.node_depart(head_owner, false);
        assert_eq!(dir.membership_epoch(), 1);
        assert!(!dir.is_node_live(head_owner));
        assert!(dir.serves_only_live(), "the crashed GFA's quote is withdrawn");
        assert_eq!(
            dir.overlay().live_len(),
            8,
            "a crashed node squats on the ring until stabilization"
        );
        // k = 1: the routed lookup terminates at the crashed head and faults.
        let faulted = dir.query_cheapest(0, 1);
        assert!(faulted.quote.is_none());
        assert!(faulted.messages >= 1, "the wasted route is still charged");
        assert!(dir.take_fault());
        assert!(!dir.take_fault(), "take_fault is one-shot");
        // Deeper ranks advance along the range without touching the head.
        assert!(dir.query_cheapest(0, 2).quote.is_some());
        assert!(!dir.take_fault());
        // k = 2: the successor replica answers for one extra message.
        dir.set_replication(2);
        let detoured = dir.query_cheapest(0, 1);
        assert!(detoured.quote.is_some());
        assert!(!dir.peek_fault());
        assert_eq!(detoured.messages, faulted.messages + 1);
        // Stabilization evicts the ghost and restores clean routing.
        let epoch_before = dir.epoch();
        let repair = dir.stabilize();
        assert!(repair >= 1);
        assert!(dir.epoch() > epoch_before, "ring repair revalidates caches");
        assert_eq!(dir.membership_epoch(), 2);
        assert_eq!(dir.overlay().live_len(), 7);
        assert!(dir.query_cheapest(0, 1).quote.is_some());
        assert!(!dir.take_fault());
        assert_eq!(dir.stabilize(), 0, "a stable ring has nothing to repair");
        // The crashed GFA rejoins (its quote republish is the GFA's job).
        assert!(dir.node_join(head_owner) >= 1);
        assert!(dir.is_node_live(head_owner));
        assert_eq!(dir.membership_epoch(), 3);
        assert!(dir.replication_ok());
    }
}
