//! The idealised federation directory used by the experiments.
//!
//! Quotes are kept in two rank orders (by price and by speed) that are
//! rebuilt lazily after mutations.  Queries are exact and deterministic; the
//! *modelled* message cost of a query is `⌈log₂ n⌉`, matching the paper's
//! assumption of an efficient P2P directory ("we assume the query process is
//! optimal, i.e. that it takes O(log n) messages to query the directory").

use std::cell::Cell;

use crate::cursor::RankCursor;
use crate::quote::{FederationDirectory, Quote, RankOrder, TracedQuote};

/// Exact, centrally-computed directory with an `O(log n)` message-cost model.
#[derive(Debug, Default)]
pub struct IdealDirectory {
    quotes: Vec<Quote>,
    by_price: Vec<usize>,
    by_speed: Vec<usize>,
    dirty: bool,
    /// Content epoch: bumped by every mutation so open cursors and GFA-side
    /// quote caches can detect staleness (see [`FederationDirectory::epoch`]).
    epoch: u64,
    queries: Cell<u64>,
    /// Routed (rank-1) lookups served and the messages actually charged for
    /// them — the modelled cost can change mid-run when (un)subscriptions
    /// resize the directory, so the average must track what was charged.
    routes: Cell<u64>,
    route_messages: Cell<u64>,
}

impl IdealDirectory {
    /// Creates an empty directory.
    #[must_use]
    pub fn new() -> Self {
        IdealDirectory::default()
    }

    /// Creates a directory pre-populated with quotes.
    #[must_use]
    pub fn with_quotes(quotes: impl IntoIterator<Item = Quote>) -> Self {
        let mut dir = IdealDirectory::new();
        for q in quotes {
            let _ = dir.subscribe(q);
        }
        dir
    }

    /// Corrupting test double: rewinds the content epoch to zero without
    /// touching the quote store, emulating a backend that forgets
    /// mutations.  Only exists so the invariant tests can prove the epoch
    /// monotonicity check fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_epoch_rewind(&mut self) {
        self.epoch = 0;
    }

    fn rebuild_if_dirty(&mut self) {
        if !self.dirty {
            return;
        }
        self.by_price = (0..self.quotes.len()).collect();
        self.by_price.sort_by(|&a, &b| {
            self.quotes[a]
                .price
                .total_cmp(&self.quotes[b].price)
                .then_with(|| self.quotes[a].gfa.cmp(&self.quotes[b].gfa))
        });
        self.by_speed = (0..self.quotes.len()).collect();
        self.by_speed.sort_by(|&a, &b| {
            self.quotes[b]
                .mips
                .total_cmp(&self.quotes[a].mips)
                .then_with(|| self.quotes[a].gfa.cmp(&self.quotes[b].gfa))
        });
        self.dirty = false;
    }

    /// Immutable variant of the rank lookup.  The index vectors are rebuilt
    /// eagerly on mutation, so by the time queries arrive the directory is
    /// clean; the debug assertion documents that invariant without taxing
    /// the cursor hot path.
    #[inline]
    fn ranked(&self, order: &[usize], r: usize) -> Option<Quote> {
        debug_assert!(!self.dirty, "directory indices must be rebuilt before querying");
        if r == 0 {
            return None;
        }
        self.queries.set(self.queries.get() + 1);
        order.get(r - 1).map(|&i| self.quotes[i])
    }

    /// All quotes currently subscribed, in subscription order.
    #[must_use]
    pub fn quotes(&self) -> &[Quote] {
        &self.quotes
    }

    /// Resolves the `r`-th quote of `order`, counting the served query.
    /// O(1): both rank orders are maintained across mutations.  Also used by
    /// the Chord backend, whose cursor advances resolve rank data here while
    /// charging overlay hops of their own.
    #[inline]
    pub(crate) fn resolve_ranked(&self, order: RankOrder, r: usize) -> Option<Quote> {
        let index = match order {
            RankOrder::Cheapest => &self.by_price,
            RankOrder::Fastest => &self.by_speed,
        };
        self.ranked(index, r)
    }

    /// Counts one served query without resolving anything — the Chord
    /// backend's share of a replayed (GFA-cached) query.
    #[inline]
    pub(crate) fn count_replayed_query(&self) {
        self.queries.set(self.queries.get() + 1);
    }

    /// Advances the content epoch without touching the quote store — the
    /// Chord backend's way to invalidate cursors and GFA caches after a
    /// *ring* repair changed its measured route costs while the (centrally
    /// held) rank data stayed put.
    #[inline]
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The single place rank-dependent charges are applied, so the oracle
    /// path, the cursor path and cache replays cannot drift apart: rank 1
    /// charges `route_messages()` (lazily, so cheap advances never price a
    /// route) and records the routed lookup; every higher rank is one
    /// cursor-advance message.  Rank 0 must be short-circuited by callers.
    #[inline]
    fn charge_ranked(&self, r: usize, route_messages: impl FnOnce() -> u64) -> u64 {
        debug_assert!(r >= 1, "rank 0 is answered locally and never charged");
        if r == 1 {
            let cost = route_messages();
            self.routes.set(self.routes.get() + 1);
            self.route_messages.set(self.route_messages.get() + cost);
            cost
        } else {
            1
        }
    }

    /// Charges one query under the modelled range-query costs: rank 1 routes
    /// (`⌈log₂ n⌉` at the directory's *current* size), higher ranks advance
    /// the cursor one message, rank 0 is answered locally for free.
    fn charge_query(&self, r: usize) -> u64 {
        if r == 0 {
            0
        } else {
            self.charge_ranked(r, || self.query_message_cost())
        }
    }

    /// Average messages charged per *routed* (rank-1) lookup so far.  Equals
    /// `⌈log₂ n⌉` while the directory size is stable, and the charge-weighted
    /// average when (un)subscriptions resized it mid-run.
    #[must_use]
    pub fn average_route_messages(&self) -> f64 {
        let routes = self.routes.get();
        if routes == 0 {
            0.0
        } else {
            self.route_messages.get() as f64 / routes as f64
        }
    }
}

impl FederationDirectory for IdealDirectory {
    // The mutators return the publish-side message cost; the ideal model
    // keeps the quote store central, so every mutation is free (0).

    fn subscribe(&mut self, quote: Quote) -> u64 {
        if let Some(existing) = self.quotes.iter_mut().find(|q| q.gfa == quote.gfa) {
            *existing = quote;
        } else {
            self.quotes.push(quote);
        }
        self.dirty = true;
        self.rebuild_if_dirty();
        self.epoch += 1;
        0
    }

    fn unsubscribe(&mut self, gfa: usize) -> u64 {
        let before = self.quotes.len();
        self.quotes.retain(|q| q.gfa != gfa);
        if self.quotes.len() == before {
            return 0; // unknown GFA: nothing changed, keep caches valid
        }
        self.dirty = true;
        self.rebuild_if_dirty();
        self.epoch += 1;
        0
    }

    fn update_price(&mut self, gfa: usize, price: f64) -> u64 {
        let Some(qi) = self.quotes.iter().position(|q| q.gfa == gfa) else {
            return 0;
        };
        debug_assert!(!self.dirty, "rank orders are maintained eagerly across mutations");
        let old_price = self.quotes[qi].price;
        if old_price.to_bits() == price.to_bits() {
            // Repricing to the identical price changes nothing observable:
            // skip the reposition *and* the epoch bump, so open cursors and
            // GFA quote caches across the whole federation stay valid.
            return 0;
        }
        // Single reposition in the price order — the speed order does not
        // depend on the price and is left untouched.  Locate the entry under
        // its old (price, gfa) key, then re-insert under the new one; since
        // keys are unique the result is exactly what a full re-sort gives.
        let pos = self
            .by_price
            .binary_search_by(|&i| {
                self.quotes[i]
                    .price
                    .total_cmp(&old_price)
                    .then_with(|| self.quotes[i].gfa.cmp(&gfa))
            })
            .expect("a subscribed quote is present in the price order");
        debug_assert_eq!(self.by_price[pos], qi);
        self.quotes[qi].price = price;
        self.by_price.remove(pos);
        let insert_at = self
            .by_price
            .binary_search_by(|&i| {
                self.quotes[i]
                    .price
                    .total_cmp(&price)
                    .then_with(|| self.quotes[i].gfa.cmp(&gfa))
            })
            .unwrap_or_else(|pos| pos);
        self.by_price.insert(insert_at, qi);
        self.epoch += 1;
        0
    }

    fn query_cheapest(&self, _origin: usize, r: usize) -> TracedQuote {
        TracedQuote {
            quote: self.ranked(&self.by_price, r),
            messages: self.charge_query(r),
        }
    }

    fn query_fastest(&self, _origin: usize, r: usize) -> TracedQuote {
        TracedQuote {
            quote: self.ranked(&self.by_speed, r),
            messages: self.charge_query(r),
        }
    }

    fn len(&self) -> usize {
        self.quotes.len()
    }

    fn query_message_cost(&self) -> u64 {
        let n = self.quotes.len().max(1) as f64;
        n.log2().ceil().max(1.0) as u64
    }

    fn queries_served(&self) -> u64 {
        self.queries.get()
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn open_cursor(&self, origin: usize, order: RankOrder) -> RankCursor {
        // Under the ideal model the routed lookup is pure bookkeeping: the
        // cursor captures the `⌈log₂ n⌉` charge of reaching the head of the
        // range index at the current size.
        RankCursor::opened(origin, order, self.epoch, self.query_message_cost())
    }

    #[inline]
    fn cursor_next(&self, cursor: &mut RankCursor) -> TracedQuote {
        if cursor.epoch != self.epoch {
            // Lazy revalidation: positional reads below already see the
            // rebuilt ranking; a cursor that has not yielded its head yet
            // re-prices the pending route at the current directory size,
            // exactly like a fresh rank-1 query would be charged.
            if cursor.yielded == 0 {
                cursor.route_messages = self.query_message_cost();
            }
            cursor.epoch = self.epoch;
        }
        cursor.yielded += 1;
        let r = cursor.yielded;
        let quote = self.resolve_ranked(cursor.order, r);
        let messages = self.charge_ranked(r, || cursor.route_messages);
        TracedQuote { quote, messages }
    }

    #[inline]
    fn note_replayed_query(&self, _origin: usize, _order: RankOrder, r: usize, route_messages: u64) {
        if r == 0 {
            return;
        }
        self.queries.set(self.queries.get() + 1);
        let _ = self.charge_ranked(r, || route_messages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_cluster::paper_resources;

    fn paper_directory() -> IdealDirectory {
        IdealDirectory::with_quotes(
            paper_resources()
                .iter()
                .enumerate()
                .map(|(i, r)| Quote::from_spec(i, &r.spec)),
        )
    }

    #[test]
    fn cheapest_and_fastest_rankings_match_table1() {
        let dir = paper_directory();
        assert_eq!(dir.len(), 8);
        assert!(!dir.is_empty());
        // Cheapest: LANL Origin (3.59), then LANL CM5 (3.98).
        assert_eq!(dir.kth_cheapest(1).unwrap().gfa, 3);
        assert_eq!(dir.kth_cheapest(2).unwrap().gfa, 2);
        // Fastest: NASA iPSC (930), then SDSC SP2 (920), then KTH SP2 (900).
        assert_eq!(dir.kth_fastest(1).unwrap().gfa, 4);
        assert_eq!(dir.kth_fastest(2).unwrap().gfa, 7);
        assert_eq!(dir.kth_fastest(3).unwrap().gfa, 1);
        // Rank past the end → None; rank 0 is invalid → None.
        assert!(dir.kth_cheapest(9).is_none());
        assert!(dir.kth_cheapest(0).is_none());
    }

    #[test]
    fn rankings_agree_with_a_sorted_oracle() {
        let dir = paper_directory();
        let mut prices: Vec<f64> = dir.quotes().iter().map(|q| q.price).collect();
        prices.sort_by(f64::total_cmp);
        for (i, price) in prices.iter().enumerate() {
            assert_eq!(dir.kth_cheapest(i + 1).unwrap().price, *price);
        }
        let mut speeds: Vec<f64> = dir.quotes().iter().map(|q| q.mips).collect();
        speeds.sort_by(|a, b| b.total_cmp(a));
        for (i, mips) in speeds.iter().enumerate() {
            assert_eq!(dir.kth_fastest(i + 1).unwrap().mips, *mips);
        }
    }

    #[test]
    fn resubscription_overwrites_and_unsubscribe_removes() {
        let mut dir = paper_directory();
        // Make GFA 0 the cheapest by republishing with a lower price.
        let mut q = *dir.quotes().iter().find(|q| q.gfa == 0).unwrap();
        q.price = 1.0;
        let _ = dir.subscribe(q);
        assert_eq!(dir.len(), 8);
        assert_eq!(dir.kth_cheapest(1).unwrap().gfa, 0);
        let _ = dir.unsubscribe(0);
        assert_eq!(dir.len(), 7);
        assert_ne!(dir.kth_cheapest(1).unwrap().gfa, 0);
    }

    #[test]
    fn update_price_rebuilds_ranking() {
        let mut dir = paper_directory();
        let _ = dir.update_price(1, 0.5);
        assert_eq!(dir.kth_cheapest(1).unwrap().gfa, 1);
        // Updating an unknown GFA is a no-op.
        let _ = dir.update_price(99, 0.1);
        assert_eq!(dir.len(), 8);
    }

    #[test]
    fn incremental_reposition_agrees_with_a_sorted_oracle() {
        // `update_price` repositions a single entry instead of re-sorting;
        // drive it through a deterministic storm of repricings (including
        // ties, extremes and no-op prices) and assert the streamed ranking
        // always equals a freshly sorted oracle.
        let mut dir = paper_directory();
        for step in 0..200usize {
            let gfa = (step * 5) % 8;
            let price = match step % 5 {
                0 => 0.01 + step as f64 * 0.003,       // migrate to the front
                1 => 50.0 - step as f64 * 0.1,         // migrate to the back
                2 => 3.59,                             // collide with LANL Origin
                3 => dir.quotes()[gfa.min(dir.len() - 1)].price, // no-op reprice
                _ => 2.0 + ((step * 7) % 11) as f64 * 0.25,
            };
            let _ = dir.update_price(gfa, price);
            let mut oracle: Vec<(f64, usize)> =
                dir.quotes().iter().map(|q| (q.price, q.gfa)).collect();
            oracle.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for (i, (price, gfa)) in oracle.iter().enumerate() {
                let got = dir.kth_cheapest(i + 1).unwrap();
                assert_eq!(
                    (got.price.to_bits(), got.gfa),
                    (price.to_bits(), *gfa),
                    "step {step}: rank {} diverged from the sorted oracle",
                    i + 1
                );
            }
            // The speed ranking is untouched by repricings.
            assert_eq!(dir.kth_fastest(1).unwrap().gfa, 4);
        }
    }

    #[test]
    fn epoch_tracks_content_mutations_only() {
        let mut dir = paper_directory();
        let e0 = dir.epoch();
        // Queries do not move the epoch.
        let _ = dir.kth_cheapest(3);
        assert_eq!(dir.epoch(), e0);
        // Mutations do.
        let _ = dir.update_price(2, 9.9);
        assert_eq!(dir.epoch(), e0 + 1);
        let _ = dir.unsubscribe(2);
        assert_eq!(dir.epoch(), e0 + 2);
        let _ = dir.subscribe(Quote { gfa: 2, processors: 8, mips: 500.0, bandwidth: 1.0, price: 2.0 });
        assert_eq!(dir.epoch(), e0 + 3);
        // No-op mutations (unknown GFA, unchanged price) leave caches valid.
        let _ = dir.unsubscribe(99);
        let _ = dir.update_price(99, 1.0);
        let current = dir.kth_cheapest(4).unwrap();
        let _ = dir.update_price(current.gfa, current.price);
        assert_eq!(dir.epoch(), e0 + 3);
        assert_eq!(dir.kth_cheapest(4).unwrap().gfa, current.gfa);
    }

    #[test]
    fn query_cost_is_log2_of_size() {
        let dir = paper_directory();
        assert_eq!(dir.query_message_cost(), 3); // ceil(log2(8))
        let mut small = IdealDirectory::new();
        let _ = small.subscribe(Quote {
            gfa: 0,
            processors: 1,
            mips: 1.0,
            bandwidth: 1.0,
            price: 1.0,
        });
        assert_eq!(small.query_message_cost(), 1);
        let big = IdealDirectory::with_quotes((0..50).map(|i| Quote {
            gfa: i,
            processors: 1,
            mips: 1.0 + i as f64,
            bandwidth: 1.0,
            price: 1.0 + i as f64,
        }));
        assert_eq!(big.query_message_cost(), 6); // ceil(log2(50))
    }

    #[test]
    fn route_average_tracks_charges_across_resizes() {
        let dir = paper_directory();
        assert_eq!(dir.average_route_messages(), 0.0); // nothing routed yet
        let head = dir.query_cheapest(0, 1);
        assert_eq!(head.messages, 3); // ⌈log₂ 8⌉
        assert_eq!(dir.query_cheapest(0, 2).messages, 1); // cursor advance
        assert_eq!(dir.query_cheapest(0, 0).messages, 0);
        assert_eq!(dir.average_route_messages(), 3.0);
        // Shrinking the directory mid-run changes the cost of *future*
        // routes; the average reflects what was actually charged.
        let mut dir = dir;
        for gfa in 4..8 {
            let _ = dir.unsubscribe(gfa);
        }
        assert_eq!(dir.query_message_cost(), 2); // ⌈log₂ 4⌉
        assert_eq!(dir.query_fastest(0, 1).messages, 2);
        assert!((dir.average_route_messages() - 2.5).abs() < 1e-12); // (3+2)/2
    }

    #[test]
    fn queries_are_counted() {
        let dir = paper_directory();
        assert_eq!(dir.queries_served(), 0);
        let _ = dir.kth_cheapest(1);
        let _ = dir.kth_fastest(2);
        let _ = dir.kth_fastest(0); // invalid rank: not counted
        assert_eq!(dir.queries_served(), 2);
    }

    #[test]
    fn ties_are_broken_by_gfa_index() {
        let dir = IdealDirectory::with_quotes((0..4).map(|i| Quote {
            gfa: 3 - i, // subscribe in reverse order
            processors: 8,
            mips: 500.0,
            bandwidth: 1.0,
            price: 2.5,
        }));
        let order: Vec<usize> = (1..=4).map(|r| dir.kth_cheapest(r).unwrap().gfa).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        let order: Vec<usize> = (1..=4).map(|r| dir.kth_fastest(r).unwrap().gfa).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
