//! Quotes and the directory interface.

use grid_cluster::ResourceSpec;

use crate::cursor::RankCursor;

/// Which ranking a directory query (or cursor) walks.
///
/// The paper's DBC loop asks for the *r*-th cheapest cluster under OFC and
/// the *r*-th fastest under OFT; these are the two range indexes a MAAN-style
/// directory maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankOrder {
    /// Ascending access price (ties broken by GFA index).
    Cheapest,
    /// Descending per-processor MIPS (ties broken by GFA index).
    Fastest,
}

impl RankOrder {
    /// Both orders, in a stable order (useful for caches and table headers).
    pub const ALL: [RankOrder; 2] = [RankOrder::Cheapest, RankOrder::Fastest];

    /// Dense index of this order (`Cheapest` = 0, `Fastest` = 1), used by
    /// per-order caches.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            RankOrder::Cheapest => 0,
            RankOrder::Fastest => 1,
        }
    }
}

/// A quote published into the federation directory by a GFA: the resource
/// description `R_i` plus the access price `c_i` configured by the owner.
///
/// Quotes are small `Copy` values so that query results can be handed around
/// without allocation; the human-readable resource name stays with the GFA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quote {
    /// Index of the GFA (and therefore the cluster) that published the quote.
    pub gfa: usize,
    /// Number of processors `p_i`.
    pub processors: u32,
    /// Per-processor speed `µ_i` in MIPS.
    pub mips: f64,
    /// Interconnect bandwidth `γ_i` in Gb/s.
    pub bandwidth: f64,
    /// Access price `c_i` in Grid Dollars.
    pub price: f64,
}

impl Quote {
    /// Builds a quote from a GFA index and its resource description.
    #[must_use]
    pub fn from_spec(gfa: usize, spec: &ResourceSpec) -> Self {
        Quote {
            gfa,
            processors: spec.processors,
            mips: spec.mips,
            bandwidth: spec.bandwidth,
            price: spec.price,
        }
    }

    /// Reconstructs a [`ResourceSpec`] (with a synthetic name) from the quote,
    /// for callers that want to reuse the cost-model functions directly.
    #[must_use]
    pub fn to_spec(&self) -> ResourceSpec {
        ResourceSpec::new(
            &format!("gfa-{}", self.gfa),
            self.processors,
            self.mips,
            self.bandwidth,
            self.price,
        )
    }
}

/// The answer to one traced ranking query: the quote at the requested rank
/// (if it exists) plus the number of directory messages the query cost.
///
/// The message count is what the federation's accounting charges as
/// *directory traffic* — kept separate from the four negotiation message
/// types so the paper's Fig. 10/11 panels stay comparable across backends.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "a TracedQuote carries a message charge that must be accounted"]
pub struct TracedQuote {
    /// The quote at the requested rank, or `None` for rank 0 or a rank past
    /// the end of the directory.
    pub quote: Option<Quote>,
    /// Directory messages the query cost.  Zero for rank 0, which every
    /// implementation answers locally without touching the overlay.
    pub messages: u64,
}

/// The interface every federation-directory implementation provides.
///
/// The ranking queries use 1-based ranks to match the paper's description of
/// the algorithm ("query the federation directory for the r-th fastest
/// cluster", r = 1, 2, …).
pub trait FederationDirectory {
    /// Publishes (or republishes) a quote, returning the **publish-side
    /// message cost**: the routed overlay messages the operation took.  The
    /// modelled backends (`Ideal`, `Chord`) keep the quote store central and
    /// charge `0`; the MAAN backend routes one put per attribute key (plus
    /// routed removes for relocated stale entries on a republish).  The
    /// federation accounts these as a separate *publish* traffic class.
    /// A GFA republishing overwrites its previous quote.
    #[must_use = "the publish-side message cost must be charged into the ledger or explicitly dropped"]
    fn subscribe(&mut self, quote: Quote) -> u64;

    /// Removes a GFA's quote from the directory, returning the publish-side
    /// message cost (see [`Self::subscribe`]; a no-op on an unknown GFA
    /// costs 0).
    #[must_use = "the publish-side message cost must be charged into the ledger or explicitly dropped"]
    fn unsubscribe(&mut self, gfa: usize) -> u64;

    /// Updates just the price of an existing quote (the paper's
    /// "quote" primitive), returning the publish-side message cost — under
    /// MAAN a routed *move* of the price entry between its old and new key
    /// owners.  Does nothing (and costs 0) if the GFA is not subscribed or
    /// the price is bit-identical.
    #[must_use = "the publish-side message cost must be charged into the ledger or explicitly dropped"]
    fn update_price(&mut self, gfa: usize, price: f64) -> u64;

    /// The `r`-th cheapest quote (1-based), queried from GFA `origin`,
    /// together with the number of directory messages the query cost.  Ties
    /// are broken by GFA index so that results are deterministic.
    ///
    /// Message costs follow the DHT range-query model (MAAN-style,
    /// `O(log n + k)`): a rank-1 query *routes* through the overlay to
    /// establish the ranking cursor (`O(log n)` messages — the paper's
    /// assumption), and every higher rank advances the cursor one overlay
    /// hop (1 message), since consecutive ranks are adjacent in the range
    /// index.  The DBC loop probes ranks sequentially, so a job examining
    /// `k` candidates pays `O(log n) + (k − 1)` directory messages.
    ///
    /// Every backend must resolve the *same* quote for the same directory
    /// contents — backends may only differ in the message cost (and therefore
    /// the simulated lookup latency) they report.
    fn query_cheapest(&self, origin: usize, r: usize) -> TracedQuote;

    /// The `r`-th fastest quote (1-based, by per-processor MIPS), queried
    /// from GFA `origin`, with the query's message cost.
    fn query_fastest(&self, origin: usize, r: usize) -> TracedQuote;

    /// The `r`-th quote in `order`, dispatching to [`Self::query_cheapest`]
    /// or [`Self::query_fastest`].  This is the *query-per-rank* path the
    /// paper's Fig. 10/11 cost model describes; it is retained as the
    /// differential oracle for the cursor primitive below.
    fn query_ranked(&self, origin: usize, order: RankOrder, r: usize) -> TracedQuote {
        match order {
            RankOrder::Cheapest => self.query_cheapest(origin, r),
            RankOrder::Fastest => self.query_fastest(origin, r),
        }
    }

    /// The directory's *epoch*: a counter bumped by every content mutation
    /// (`subscribe`, `unsubscribe`, `update_price`).  Open cursors and
    /// GFA-side quote caches compare epochs to detect that their view of the
    /// rank data went stale and must be revalidated.
    #[must_use]
    fn epoch(&self) -> u64;

    /// Opens a streaming rank cursor at the head of `order` for GFA
    /// `origin`: **one routed lookup** through the overlay (the `O(log n)`
    /// establishment the paper charges per query) whose cost is captured in
    /// the cursor and charged when rank 1 is yielded.  Subsequent
    /// [`Self::cursor_next`] calls advance one rank for one cursor-advance
    /// message and O(1) work — the `O(log n + k)` execution profile of
    /// MAAN-style DHT range queries, which the query-per-rank path only
    /// *models*.
    fn open_cursor(&self, origin: usize, order: RankOrder) -> RankCursor;

    /// Yields the next rank of an open cursor (rank 1 on the first call
    /// after [`Self::open_cursor`]).  The first yield charges the routed
    /// open's messages; every further yield is one cursor-advance message.
    ///
    /// If the directory epoch moved since the cursor last touched it, the
    /// cursor is **revalidated lazily**: the yield re-resolves its rank
    /// against the current quote store (so streamed results always equal
    /// what [`Self::query_ranked`] would answer), and a cursor that has not
    /// yet yielded rank 1 re-prices its pending route at the current
    /// directory size.  Only a change of the overlay *ring* itself would
    /// force a paid re-open, and ring membership is fixed for a run (churn
    /// is future work) — so cursor advances charge exactly what the
    /// query-per-rank model charges, keeping ledger accounting bit-identical.
    fn cursor_next(&self, cursor: &mut RankCursor) -> TracedQuote;

    /// Records a ranking query that was answered from a GFA-side cache
    /// ([`crate::cursor::QuoteCache`]) without touching the rank data: bumps
    /// the same internal statistics — queries served, routed lookups, route
    /// messages, hop totals — that a live query at rank `r` would have, so
    /// cached runs report bit-identical directory telemetry.
    /// `route_messages` is the message charge the cache replayed for this
    /// rank (the routed-open cost for `r == 1`, the cursor-advance cost —
    /// which MAAN's boundary crossings can make exceed 1 — for deeper
    /// ranks).
    fn note_replayed_query(&self, origin: usize, order: RankOrder, r: usize, route_messages: u64);

    /// Convenience wrapper around [`Self::query_cheapest`] that discards the
    /// message cost (for tests and benches).  The query is still *served* —
    /// backends count it in `queries_served` and their internal hop/route
    /// statistics, exactly like a traced call from origin 0.
    fn kth_cheapest(&self, r: usize) -> Option<Quote> {
        self.query_cheapest(0, r).quote
    }

    /// Convenience wrapper around [`Self::query_fastest`]; same accounting
    /// behaviour as [`Self::kth_cheapest`].
    fn kth_fastest(&self, r: usize) -> Option<Quote> {
        self.query_fastest(0, r).quote
    }

    /// Number of subscribed GFAs.
    #[must_use]
    fn len(&self) -> usize;

    /// Whether the directory is empty.
    #[must_use]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of messages one *routed* ranking lookup (rank-1 cursor
    /// establishment) is modelled to cost in this directory implementation
    /// (the paper assumes `O(log n)`).  Traced queries report their actual
    /// cost, which for measured backends may differ per query.
    #[must_use]
    fn query_message_cost(&self) -> u64;

    /// Total ranking queries served since construction.
    #[must_use]
    fn queries_served(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_roundtrips_through_spec() {
        let spec = ResourceSpec::new("CTC SP2", 512, 850.0, 2.0, 4.84);
        let q = Quote::from_spec(3, &spec);
        assert_eq!(q.gfa, 3);
        assert_eq!(q.processors, 512);
        assert_eq!(q.mips, 850.0);
        let back = q.to_spec();
        assert_eq!(back.processors, spec.processors);
        assert_eq!(back.mips, spec.mips);
        assert_eq!(back.bandwidth, spec.bandwidth);
        assert_eq!(back.price, spec.price);
        assert_eq!(back.name, "gfa-3");
    }
}
