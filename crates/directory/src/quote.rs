//! Quotes and the directory interface.

use grid_cluster::ResourceSpec;

/// A quote published into the federation directory by a GFA: the resource
/// description `R_i` plus the access price `c_i` configured by the owner.
///
/// Quotes are small `Copy` values so that query results can be handed around
/// without allocation; the human-readable resource name stays with the GFA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quote {
    /// Index of the GFA (and therefore the cluster) that published the quote.
    pub gfa: usize,
    /// Number of processors `p_i`.
    pub processors: u32,
    /// Per-processor speed `µ_i` in MIPS.
    pub mips: f64,
    /// Interconnect bandwidth `γ_i` in Gb/s.
    pub bandwidth: f64,
    /// Access price `c_i` in Grid Dollars.
    pub price: f64,
}

impl Quote {
    /// Builds a quote from a GFA index and its resource description.
    #[must_use]
    pub fn from_spec(gfa: usize, spec: &ResourceSpec) -> Self {
        Quote {
            gfa,
            processors: spec.processors,
            mips: spec.mips,
            bandwidth: spec.bandwidth,
            price: spec.price,
        }
    }

    /// Reconstructs a [`ResourceSpec`] (with a synthetic name) from the quote,
    /// for callers that want to reuse the cost-model functions directly.
    #[must_use]
    pub fn to_spec(&self) -> ResourceSpec {
        ResourceSpec::new(
            &format!("gfa-{}", self.gfa),
            self.processors,
            self.mips,
            self.bandwidth,
            self.price,
        )
    }
}

/// The answer to one traced ranking query: the quote at the requested rank
/// (if it exists) plus the number of directory messages the query cost.
///
/// The message count is what the federation's accounting charges as
/// *directory traffic* — kept separate from the four negotiation message
/// types so the paper's Fig. 10/11 panels stay comparable across backends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracedQuote {
    /// The quote at the requested rank, or `None` for rank 0 or a rank past
    /// the end of the directory.
    pub quote: Option<Quote>,
    /// Directory messages the query cost.  Zero for rank 0, which every
    /// implementation answers locally without touching the overlay.
    pub messages: u64,
}

/// The interface every federation-directory implementation provides.
///
/// The ranking queries use 1-based ranks to match the paper's description of
/// the algorithm ("query the federation directory for the r-th fastest
/// cluster", r = 1, 2, …).
pub trait FederationDirectory {
    /// Publishes (or republishes) a quote.  A GFA republishing overwrites its
    /// previous quote.
    fn subscribe(&mut self, quote: Quote);

    /// Removes a GFA's quote from the directory.
    fn unsubscribe(&mut self, gfa: usize);

    /// Updates just the price of an existing quote (the paper's
    /// "quote" primitive).  Does nothing if the GFA is not subscribed.
    fn update_price(&mut self, gfa: usize, price: f64);

    /// The `r`-th cheapest quote (1-based), queried from GFA `origin`,
    /// together with the number of directory messages the query cost.  Ties
    /// are broken by GFA index so that results are deterministic.
    ///
    /// Message costs follow the DHT range-query model (MAAN-style,
    /// `O(log n + k)`): a rank-1 query *routes* through the overlay to
    /// establish the ranking cursor (`O(log n)` messages — the paper's
    /// assumption), and every higher rank advances the cursor one overlay
    /// hop (1 message), since consecutive ranks are adjacent in the range
    /// index.  The DBC loop probes ranks sequentially, so a job examining
    /// `k` candidates pays `O(log n) + (k − 1)` directory messages.
    ///
    /// Every backend must resolve the *same* quote for the same directory
    /// contents — backends may only differ in the message cost (and therefore
    /// the simulated lookup latency) they report.
    fn query_cheapest(&self, origin: usize, r: usize) -> TracedQuote;

    /// The `r`-th fastest quote (1-based, by per-processor MIPS), queried
    /// from GFA `origin`, with the query's message cost.
    fn query_fastest(&self, origin: usize, r: usize) -> TracedQuote;

    /// Convenience wrapper around [`Self::query_cheapest`] that discards the
    /// message cost (for tests and benches).  The query is still *served* —
    /// backends count it in `queries_served` and their internal hop/route
    /// statistics, exactly like a traced call from origin 0.
    fn kth_cheapest(&self, r: usize) -> Option<Quote> {
        self.query_cheapest(0, r).quote
    }

    /// Convenience wrapper around [`Self::query_fastest`]; same accounting
    /// behaviour as [`Self::kth_cheapest`].
    fn kth_fastest(&self, r: usize) -> Option<Quote> {
        self.query_fastest(0, r).quote
    }

    /// Number of subscribed GFAs.
    fn len(&self) -> usize;

    /// Whether the directory is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of messages one *routed* ranking lookup (rank-1 cursor
    /// establishment) is modelled to cost in this directory implementation
    /// (the paper assumes `O(log n)`).  Traced queries report their actual
    /// cost, which for measured backends may differ per query.
    fn query_message_cost(&self) -> u64;

    /// Total ranking queries served since construction.
    fn queries_served(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_roundtrips_through_spec() {
        let spec = ResourceSpec::new("CTC SP2", 512, 850.0, 2.0, 4.84);
        let q = Quote::from_spec(3, &spec);
        assert_eq!(q.gfa, 3);
        assert_eq!(q.processors, 512);
        assert_eq!(q.mips, 850.0);
        let back = q.to_spec();
        assert_eq!(back.processors, spec.processors);
        assert_eq!(back.mips, spec.mips);
        assert_eq!(back.bandwidth, spec.bandwidth);
        assert_eq!(back.price, spec.price);
        assert_eq!(back.name, "gfa-3");
    }
}
