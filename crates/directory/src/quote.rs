//! Quotes and the directory interface.

use grid_cluster::ResourceSpec;

use crate::cursor::RankCursor;

/// Which ranking a directory query (or cursor) walks.
///
/// The paper's DBC loop asks for the *r*-th cheapest cluster under OFC and
/// the *r*-th fastest under OFT; these are the two range indexes a MAAN-style
/// directory maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankOrder {
    /// Ascending access price (ties broken by GFA index).
    Cheapest,
    /// Descending per-processor MIPS (ties broken by GFA index).
    Fastest,
}

impl RankOrder {
    /// Both orders, in a stable order (useful for caches and table headers).
    pub const ALL: [RankOrder; 2] = [RankOrder::Cheapest, RankOrder::Fastest];

    /// Dense index of this order (`Cheapest` = 0, `Fastest` = 1), used by
    /// per-order caches.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            RankOrder::Cheapest => 0,
            RankOrder::Fastest => 1,
        }
    }
}

/// A quote published into the federation directory by a GFA: the resource
/// description `R_i` plus the access price `c_i` configured by the owner.
///
/// Quotes are small `Copy` values so that query results can be handed around
/// without allocation; the human-readable resource name stays with the GFA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quote {
    /// Index of the GFA (and therefore the cluster) that published the quote.
    pub gfa: usize,
    /// Number of processors `p_i`.
    pub processors: u32,
    /// Per-processor speed `µ_i` in MIPS.
    pub mips: f64,
    /// Interconnect bandwidth `γ_i` in Gb/s.
    pub bandwidth: f64,
    /// Access price `c_i` in Grid Dollars.
    pub price: f64,
}

impl Quote {
    /// Builds a quote from a GFA index and its resource description.
    #[must_use]
    pub fn from_spec(gfa: usize, spec: &ResourceSpec) -> Self {
        Quote {
            gfa,
            processors: spec.processors,
            mips: spec.mips,
            bandwidth: spec.bandwidth,
            price: spec.price,
        }
    }

    /// Reconstructs a [`ResourceSpec`] (with a synthetic name) from the quote,
    /// for callers that want to reuse the cost-model functions directly.
    #[must_use]
    pub fn to_spec(&self) -> ResourceSpec {
        ResourceSpec::new(
            &format!("gfa-{}", self.gfa),
            self.processors,
            self.mips,
            self.bandwidth,
            self.price,
        )
    }
}

/// The answer to one traced ranking query: the quote at the requested rank
/// (if it exists) plus the number of directory messages the query cost.
///
/// The message count is what the federation's accounting charges as
/// *directory traffic* — kept separate from the four negotiation message
/// types so the paper's Fig. 10/11 panels stay comparable across backends.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "a TracedQuote carries a message charge that must be accounted"]
pub struct TracedQuote {
    /// The quote at the requested rank, or `None` for rank 0 or a rank past
    /// the end of the directory.
    pub quote: Option<Quote>,
    /// Directory messages the query cost.  Zero for rank 0, which every
    /// implementation answers locally without touching the overlay.
    pub messages: u64,
}

/// The interface every federation-directory implementation provides.
///
/// The ranking queries use 1-based ranks to match the paper's description of
/// the algorithm ("query the federation directory for the r-th fastest
/// cluster", r = 1, 2, …).
pub trait FederationDirectory {
    /// Publishes (or republishes) a quote, returning the **publish-side
    /// message cost**: the routed overlay messages the operation took.  The
    /// modelled backends (`Ideal`, `Chord`) keep the quote store central and
    /// charge `0`; the MAAN backend routes one put per attribute key (plus
    /// routed removes for relocated stale entries on a republish).  The
    /// federation accounts these as a separate *publish* traffic class.
    /// A GFA republishing overwrites its previous quote.
    #[must_use = "the publish-side message cost must be charged into the ledger or explicitly dropped"]
    fn subscribe(&mut self, quote: Quote) -> u64;

    /// Removes a GFA's quote from the directory, returning the publish-side
    /// message cost (see [`Self::subscribe`]; a no-op on an unknown GFA
    /// costs 0).
    #[must_use = "the publish-side message cost must be charged into the ledger or explicitly dropped"]
    fn unsubscribe(&mut self, gfa: usize) -> u64;

    /// Updates just the price of an existing quote (the paper's
    /// "quote" primitive), returning the publish-side message cost — under
    /// MAAN a routed *move* of the price entry between its old and new key
    /// owners.  Does nothing (and costs 0) if the GFA is not subscribed or
    /// the price is bit-identical.
    #[must_use = "the publish-side message cost must be charged into the ledger or explicitly dropped"]
    fn update_price(&mut self, gfa: usize, price: f64) -> u64;

    /// The `r`-th cheapest quote (1-based), queried from GFA `origin`,
    /// together with the number of directory messages the query cost.  Ties
    /// are broken by GFA index so that results are deterministic.
    ///
    /// Message costs follow the DHT range-query model (MAAN-style,
    /// `O(log n + k)`): a rank-1 query *routes* through the overlay to
    /// establish the ranking cursor (`O(log n)` messages — the paper's
    /// assumption), and every higher rank advances the cursor one overlay
    /// hop (1 message), since consecutive ranks are adjacent in the range
    /// index.  The DBC loop probes ranks sequentially, so a job examining
    /// `k` candidates pays `O(log n) + (k − 1)` directory messages.
    ///
    /// Every backend must resolve the *same* quote for the same directory
    /// contents — backends may only differ in the message cost (and therefore
    /// the simulated lookup latency) they report.
    fn query_cheapest(&self, origin: usize, r: usize) -> TracedQuote;

    /// The `r`-th fastest quote (1-based, by per-processor MIPS), queried
    /// from GFA `origin`, with the query's message cost.
    fn query_fastest(&self, origin: usize, r: usize) -> TracedQuote;

    /// The `r`-th quote in `order`, dispatching to [`Self::query_cheapest`]
    /// or [`Self::query_fastest`].  This is the *query-per-rank* path the
    /// paper's Fig. 10/11 cost model describes; it is retained as the
    /// differential oracle for the cursor primitive below.
    fn query_ranked(&self, origin: usize, order: RankOrder, r: usize) -> TracedQuote {
        match order {
            RankOrder::Cheapest => self.query_cheapest(origin, r),
            RankOrder::Fastest => self.query_fastest(origin, r),
        }
    }

    /// The directory's *epoch*: a counter bumped by every content mutation
    /// (`subscribe`, `unsubscribe`, `update_price`).  Open cursors and
    /// GFA-side quote caches compare epochs to detect that their view of the
    /// rank data went stale and must be revalidated.
    #[must_use]
    fn epoch(&self) -> u64;

    /// Opens a streaming rank cursor at the head of `order` for GFA
    /// `origin`: **one routed lookup** through the overlay (the `O(log n)`
    /// establishment the paper charges per query) whose cost is captured in
    /// the cursor and charged when rank 1 is yielded.  Subsequent
    /// [`Self::cursor_next`] calls advance one rank for one cursor-advance
    /// message and O(1) work — the `O(log n + k)` execution profile of
    /// MAAN-style DHT range queries, which the query-per-rank path only
    /// *models*.
    fn open_cursor(&self, origin: usize, order: RankOrder) -> RankCursor;

    /// Yields the next rank of an open cursor (rank 1 on the first call
    /// after [`Self::open_cursor`]).  The first yield charges the routed
    /// open's messages; every further yield is one cursor-advance message.
    ///
    /// If the directory epoch moved since the cursor last touched it, the
    /// cursor is **revalidated lazily**: the yield re-resolves its rank
    /// against the current quote store (so streamed results always equal
    /// what [`Self::query_ranked`] would answer), and a cursor that has not
    /// yet yielded rank 1 re-prices its pending route at the current
    /// directory size.  Under churn the overlay *ring* itself can change
    /// ([`Self::membership_epoch`]); a not-yet-started cursor likewise
    /// re-prices its route lazily, and a resolved rank whose storing node
    /// has crashed detours to a replica (one extra message) or — with no
    /// live replica — reports a **fault** ([`Self::take_fault`]) while still
    /// charging the wasted route.  Absent churn, cursor advances charge
    /// exactly what the query-per-rank model charges, keeping ledger
    /// accounting bit-identical.
    fn cursor_next(&self, cursor: &mut RankCursor) -> TracedQuote;

    /// Records a ranking query that was answered from a GFA-side cache
    /// ([`crate::cursor::QuoteCache`]) without touching the rank data: bumps
    /// the same internal statistics — queries served, routed lookups, route
    /// messages, hop totals — that a live query at rank `r` would have, so
    /// cached runs report bit-identical directory telemetry.
    /// `route_messages` is the message charge the cache replayed for this
    /// rank (the routed-open cost for `r == 1`, the cursor-advance cost —
    /// which MAAN's boundary crossings can make exceed 1 — for deeper
    /// ranks).
    fn note_replayed_query(&self, origin: usize, order: RankOrder, r: usize, route_messages: u64);

    /// Convenience wrapper around [`Self::query_cheapest`] that discards the
    /// message cost (for tests and benches).  The query is still *served* —
    /// backends count it in `queries_served` and their internal hop/route
    /// statistics, exactly like a traced call from origin 0.
    fn kth_cheapest(&self, r: usize) -> Option<Quote> {
        self.query_cheapest(0, r).quote
    }

    /// Convenience wrapper around [`Self::query_fastest`]; same accounting
    /// behaviour as [`Self::kth_cheapest`].
    fn kth_fastest(&self, r: usize) -> Option<Quote> {
        self.query_fastest(0, r).quote
    }

    /// Number of subscribed GFAs.
    #[must_use]
    fn len(&self) -> usize;

    /// Whether the directory is empty.
    #[must_use]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of messages one *routed* ranking lookup (rank-1 cursor
    /// establishment) is modelled to cost in this directory implementation
    /// (the paper assumes `O(log n)`).  Traced queries report their actual
    /// cost, which for measured backends may differ per query.
    #[must_use]
    fn query_message_cost(&self) -> u64;

    /// Total ranking queries served since construction.
    #[must_use]
    fn queries_served(&self) -> u64;

    // --- Churn: membership change, replication and self-healing. ---------
    //
    // Every method below has a default that models a churn-oblivious
    // directory (the paper's static-ring assumption), so the centrally
    // stored `Ideal` backend — which has no ring to heal — works unchanged.
    // Overlay backends override them; all message costs are charged into
    // the existing *publish* traffic class by the federation.

    /// The overlay's *membership epoch*: bumped whenever the set of live
    /// ring nodes changes (join, leave, crash, or a stabilization round
    /// evicting crashed nodes).  Distinct from the content [`Self::epoch`]:
    /// content mutations do not move it, and GFA-side cursors use it to
    /// decide when a paid re-open (rather than a lazy revalidation) is due.
    /// Centrally-stored backends have no ring and always answer 0.
    #[must_use]
    fn membership_epoch(&self) -> u64 {
        0
    }

    /// Removes GFA `gfa` from the overlay ring, returning the publish-side
    /// message cost.  `graceful` departures hand the node's stored entries
    /// to their new owners (one routed message each) before leaving;
    /// crashes (`graceful = false`) drop the node with **zero** messages —
    /// its stored entries are unreachable until a stabilization round
    /// repairs them from replicas.  Either way the departing GFA's own
    /// published quote stops being served.  The default unsubscribes the
    /// quote (free for a graceful departure that already unsubscribed) —
    /// correct for a central store, where there is nothing else to hand off.
    #[must_use = "the publish-side message cost must be charged into the ledger or explicitly dropped"]
    fn node_depart(&mut self, gfa: usize, graceful: bool) -> u64 {
        let _ = graceful;
        let _ = self.unsubscribe(gfa);
        0
    }

    /// Re-admits a previously departed GFA to the overlay ring, returning
    /// the publish-side message cost of the join protocol.  The node comes
    /// back *empty*: re-publishing its quote is a separate
    /// [`Self::subscribe`].  A no-op (cost 0) on a central store.
    #[must_use = "the publish-side message cost must be charged into the ledger or explicitly dropped"]
    fn node_join(&mut self, gfa: usize) -> u64 {
        let _ = gfa;
        0
    }

    /// Runs one periodic stabilization round: evicts crashed nodes from the
    /// routing structures, rebuilds successor/finger state, and repairs
    /// entry replication back up to the configured factor.  Returns the
    /// round's message cost.  A no-op (cost 0) on a central store.
    #[must_use = "the publish-side message cost must be charged into the ledger or explicitly dropped"]
    fn stabilize(&mut self) -> u64 {
        0
    }

    /// Sets the replication factor `k ≥ 1` for stored entries (MAAN
    /// attribute entries keep `k − 1` successor copies, repaired lazily by
    /// [`Self::stabilize`]).  Ignored by backends that keep the store
    /// central — a central store is trivially `k = n` durable.
    fn set_replication(&mut self, k: usize) {
        let _ = k;
    }

    /// Whether GFA `gfa`'s ring node is currently live (present and not
    /// crashed).  Always `true` for a central store.
    #[must_use]
    fn is_node_live(&self, gfa: usize) -> bool {
        let _ = gfa;
        true
    }

    /// Whether the most recent query/cursor operation **faulted**: routed
    /// to a crashed node and found no live replica, answering `None` while
    /// still charging the wasted route.  Reading does not clear the flag
    /// (see [`Self::take_fault`]).  Never set by a churn-free backend.
    #[must_use]
    fn peek_fault(&self) -> bool {
        false
    }

    /// Consumes and returns the fault flag set by the most recent
    /// query/cursor operation (see [`Self::peek_fault`]).
    #[must_use]
    fn take_fault(&self) -> bool {
        false
    }

    /// **Reactive ring repair**: immediately evicts the crashed node the
    /// most recent *faulted* lookup routed to (recorded at fault time),
    /// reconciles its displaced entries and repairs replication, returning
    /// the repair's message cost — the targeted, lookup-time alternative to
    /// waiting a periodic [`Self::stabilize`] round out.  Returns 0 when
    /// there is nothing to repair (no recorded fault, or the culprit was
    /// already evicted).  A no-op on a central store, which cannot fault.
    #[must_use = "the publish-side message cost must be charged into the ledger or explicitly dropped"]
    fn repair_faulted(&mut self) -> u64 {
        0
    }

    /// Invariant probe: no stored entry has more copies than the configured
    /// replication factor.  Trivially `true` for a central store.
    #[must_use]
    fn replication_ok(&self) -> bool {
        true
    }

    /// Invariant probe: no departed (left or crashed) GFA's quote is still
    /// being served by ranking queries.  Trivially `true` for a central
    /// store, where `node_depart` removes the quote synchronously.
    #[must_use]
    fn serves_only_live(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_roundtrips_through_spec() {
        let spec = ResourceSpec::new("CTC SP2", 512, 850.0, 2.0, 4.84);
        let q = Quote::from_spec(3, &spec);
        assert_eq!(q.gfa, 3);
        assert_eq!(q.processors, 512);
        assert_eq!(q.mips, 850.0);
        let back = q.to_spec();
        assert_eq!(back.processors, spec.processors);
        assert_eq!(back.mips, spec.mips);
        assert_eq!(back.bandwidth, spec.bandwidth);
        assert_eq!(back.price, spec.price);
        assert_eq!(back.name, "gfa-3");
    }
}
