//! Pluggable directory backends.
//!
//! The federation is generic over where its ranking queries are answered:
//! [`DirectoryBackend`] is the configuration knob (which implementation to
//! build), [`AnyDirectory`] is the enum-dispatch wrapper the federation's
//! shared state holds.  Enum dispatch keeps the hot ranking path monomorphic
//! — every call is a two-arm `match` on a discriminant rather than a vtable
//! indirection — while still letting experiments swap backends at run time.

use crate::chord::ChordDirectory;
use crate::cursor::RankCursor;
use crate::ideal::IdealDirectory;
use crate::maan::MaanDirectory;
use crate::quote::{FederationDirectory, Quote, RankOrder, TracedQuote};

/// Which directory implementation a federation run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DirectoryBackend {
    /// The idealised directory: exact rankings with a *modelled* message
    /// cost of `⌈log₂ n⌉` per query (the paper's assumption).
    #[default]
    Ideal,
    /// The Chord overlay: exact rankings whose message cost is the *measured*
    /// hop count of routing the query through real finger tables (the rank
    /// data itself stays central).
    Chord,
    /// The MAAN-style multi-attribute range index: quotes are **stored at
    /// the ring nodes owning their locality-preserving-hashed price and
    /// speed keys**, queries walk the distributed range (so cursor advances
    /// that cross node boundaries cost extra hops) and mutations are routed
    /// put/remove/move operations charged as publish-side traffic.
    Maan,
}

impl DirectoryBackend {
    /// Every backend, in a stable order (useful for sweeps and table
    /// headers).
    pub const ALL: [DirectoryBackend; 3] = [
        DirectoryBackend::Ideal,
        DirectoryBackend::Chord,
        DirectoryBackend::Maan,
    ];

    /// Short lowercase label used in file names and table headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DirectoryBackend::Ideal => "ideal",
            DirectoryBackend::Chord => "chord",
            DirectoryBackend::Maan => "maan",
        }
    }

    /// Builds an empty directory of this backend for a federation of `n`
    /// GFAs.  `seed` places the overlay's nodes on the ring; the ideal
    /// backend ignores both parameters.
    #[must_use]
    pub fn build(self, n: usize, seed: u64) -> AnyDirectory {
        match self {
            DirectoryBackend::Ideal => AnyDirectory::Ideal(IdealDirectory::new()),
            DirectoryBackend::Chord => AnyDirectory::Chord(ChordDirectory::new(n.max(1), seed)),
            DirectoryBackend::Maan => AnyDirectory::Maan(MaanDirectory::new(n.max(1), seed)),
        }
    }
}

impl std::str::FromStr for DirectoryBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ideal" => Ok(DirectoryBackend::Ideal),
            "chord" => Ok(DirectoryBackend::Chord),
            "maan" => Ok(DirectoryBackend::Maan),
            other => Err(format!(
                "unknown directory backend '{other}' (expected 'ideal', 'chord' or 'maan')"
            )),
        }
    }
}

impl std::fmt::Display for DirectoryBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A directory of any backend, dispatching every [`FederationDirectory`]
/// operation with a monomorphic `match`.
#[derive(Debug)]
pub enum AnyDirectory {
    /// An [`IdealDirectory`].
    Ideal(IdealDirectory),
    /// A [`ChordDirectory`].
    Chord(ChordDirectory),
    /// A [`MaanDirectory`].
    Maan(MaanDirectory),
}

macro_rules! dispatch {
    ($self:ident, $d:ident => $e:expr) => {
        match $self {
            AnyDirectory::Ideal($d) => $e,
            AnyDirectory::Chord($d) => $e,
            AnyDirectory::Maan($d) => $e,
        }
    };
}

impl AnyDirectory {
    /// Which backend this directory is.
    #[must_use]
    pub fn backend(&self) -> DirectoryBackend {
        match self {
            AnyDirectory::Ideal(_) => DirectoryBackend::Ideal,
            AnyDirectory::Chord(_) => DirectoryBackend::Chord,
            AnyDirectory::Maan(_) => DirectoryBackend::Maan,
        }
    }

    /// Average messages of one *routed* ranking lookup (rank-1 cursor
    /// establishment) — the quantity the paper models as `O(log n)`: the
    /// charged `⌈log₂ n⌉` average for the ideal backend, the measured hop
    /// average for the overlay backends.  Zero when no lookup was routed
    /// (nothing was measured, so nothing is reported).
    #[must_use]
    pub fn average_route_messages(&self) -> f64 {
        match self {
            AnyDirectory::Ideal(d) => d.average_route_messages(),
            AnyDirectory::Chord(d) => d.average_route_hops(),
            AnyDirectory::Maan(d) => d.average_route_hops(),
        }
    }

    /// Corrupting test double: rewinds the content epoch to zero, whatever
    /// the backend.  Only exists so the invariant tests can prove the epoch
    /// monotonicity check fires.
    #[cfg(feature = "invariants")]
    pub fn corrupt_epoch_rewind(&mut self) {
        dispatch!(self, d => d.corrupt_epoch_rewind())
    }

    /// Corrupting test double: marks the GFA of the first stored quote as
    /// departed without withdrawing it, so the directory keeps serving a
    /// dead node's offer.  Only exists so the invariant tests can prove the
    /// `serves_only_live` check fires; the ideal backend has no membership
    /// state to corrupt.
    ///
    /// # Panics
    /// Panics on the ideal backend.
    #[cfg(feature = "invariants")]
    pub fn corrupt_serve_departed(&mut self) {
        match self {
            AnyDirectory::Ideal(_) => {
                panic!("the ideal backend has no membership state to corrupt")
            }
            AnyDirectory::Chord(d) => d.corrupt_serve_departed(),
            AnyDirectory::Maan(d) => d.corrupt_serve_departed(),
        }
    }

    /// Corrupting test double: records more replica copies than the
    /// replication factor allows.  Only exists so the invariant tests can
    /// prove the `replication_ok` check fires; only the MAAN backend keeps
    /// replica records.
    ///
    /// # Panics
    /// Panics on the ideal and Chord backends.
    #[cfg(feature = "invariants")]
    pub fn corrupt_overreplicate(&mut self) {
        match self {
            AnyDirectory::Maan(d) => d.corrupt_overreplicate(),
            _ => panic!("only the MAAN backend keeps replica records to corrupt"),
        }
    }

    /// Corrupting test double: rewinds the membership epoch to zero.  Only
    /// exists so the invariant tests can prove the membership-monotonicity
    /// check fires; the ideal backend has no membership state to corrupt.
    ///
    /// # Panics
    /// Panics on the ideal backend.
    #[cfg(feature = "invariants")]
    pub fn corrupt_membership_rewind(&mut self) {
        match self {
            AnyDirectory::Ideal(_) => {
                panic!("the ideal backend has no membership state to corrupt")
            }
            AnyDirectory::Chord(d) => d.corrupt_membership_rewind(),
            AnyDirectory::Maan(d) => d.corrupt_membership_rewind(),
        }
    }

    /// Total routed publish-side messages charged by mutations so far: zero
    /// for the centrally-stored backends, the measured put/remove/move
    /// routing cost for MAAN.
    #[must_use]
    pub fn publish_messages_total(&self) -> u64 {
        match self {
            AnyDirectory::Ideal(_) | AnyDirectory::Chord(_) => 0,
            AnyDirectory::Maan(d) => d.publish_messages_total(),
        }
    }
}

impl FederationDirectory for AnyDirectory {
    fn subscribe(&mut self, quote: Quote) -> u64 {
        dispatch!(self, d => d.subscribe(quote))
    }
    fn unsubscribe(&mut self, gfa: usize) -> u64 {
        dispatch!(self, d => d.unsubscribe(gfa))
    }
    fn update_price(&mut self, gfa: usize, price: f64) -> u64 {
        dispatch!(self, d => d.update_price(gfa, price))
    }
    fn query_cheapest(&self, origin: usize, r: usize) -> TracedQuote {
        dispatch!(self, d => d.query_cheapest(origin, r))
    }
    fn query_fastest(&self, origin: usize, r: usize) -> TracedQuote {
        dispatch!(self, d => d.query_fastest(origin, r))
    }
    fn len(&self) -> usize {
        dispatch!(self, d => d.len())
    }
    fn query_message_cost(&self) -> u64 {
        dispatch!(self, d => d.query_message_cost())
    }
    fn queries_served(&self) -> u64 {
        dispatch!(self, d => d.queries_served())
    }
    #[inline]
    fn epoch(&self) -> u64 {
        dispatch!(self, d => d.epoch())
    }
    fn open_cursor(&self, origin: usize, order: RankOrder) -> RankCursor {
        dispatch!(self, d => d.open_cursor(origin, order))
    }
    // `inline(always)`: with three backend bodies inlined into the match,
    // the wrapper exceeds the inliner's default threshold and the ~2 ns
    // steady-state advance turns into an outlined call (measured 2× on the
    // gated advance_ns metric when the MAAN arm was added).  The DBC loop
    // calls this once per candidate examined, so the dispatch must stay
    // flat.
    #[inline(always)]
    fn cursor_next(&self, cursor: &mut RankCursor) -> TracedQuote {
        dispatch!(self, d => d.cursor_next(cursor))
    }
    #[inline]
    fn note_replayed_query(&self, origin: usize, order: RankOrder, r: usize, route_messages: u64) {
        dispatch!(self, d => d.note_replayed_query(origin, order, r, route_messages));
    }
    #[inline]
    fn membership_epoch(&self) -> u64 {
        dispatch!(self, d => d.membership_epoch())
    }
    fn node_depart(&mut self, gfa: usize, graceful: bool) -> u64 {
        dispatch!(self, d => d.node_depart(gfa, graceful))
    }
    fn node_join(&mut self, gfa: usize) -> u64 {
        dispatch!(self, d => d.node_join(gfa))
    }
    fn stabilize(&mut self) -> u64 {
        dispatch!(self, d => d.stabilize())
    }
    fn set_replication(&mut self, k: usize) {
        dispatch!(self, d => d.set_replication(k));
    }
    fn repair_faulted(&mut self) -> u64 {
        dispatch!(self, d => d.repair_faulted())
    }
    fn is_node_live(&self, gfa: usize) -> bool {
        dispatch!(self, d => d.is_node_live(gfa))
    }
    #[inline]
    fn peek_fault(&self) -> bool {
        dispatch!(self, d => d.peek_fault())
    }
    #[inline]
    fn take_fault(&self) -> bool {
        dispatch!(self, d => d.take_fault())
    }
    fn replication_ok(&self) -> bool {
        dispatch!(self, d => d.replication_ok())
    }
    fn serves_only_live(&self) -> bool {
        dispatch!(self, d => d.serves_only_live())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quote(gfa: usize, mips: f64, price: f64) -> Quote {
        Quote {
            gfa,
            processors: 64,
            mips,
            bandwidth: 1.0,
            price,
        }
    }

    #[test]
    fn build_and_label_roundtrip() {
        for backend in DirectoryBackend::ALL {
            let dir = backend.build(8, 7);
            assert_eq!(dir.backend(), backend);
            assert_eq!(backend.label().parse::<DirectoryBackend>().unwrap(), backend);
            assert_eq!(format!("{backend}"), backend.label());
            assert!(dir.is_empty());
        }
        assert!("pastry".parse::<DirectoryBackend>().is_err());
        assert_eq!(DirectoryBackend::default(), DirectoryBackend::Ideal);
        assert_eq!(DirectoryBackend::ALL.len(), 3);
    }

    #[test]
    fn dispatch_preserves_ranking_semantics() {
        for backend in DirectoryBackend::ALL {
            let mut dir = backend.build(4, 9);
            for (i, (mips, price)) in [(500.0, 4.0), (900.0, 2.0), (700.0, 3.0), (600.0, 1.0)]
                .iter()
                .enumerate()
            {
                let _ = dir.subscribe(quote(i, *mips, *price));
            }
            assert_eq!(dir.len(), 4);
            assert_eq!(dir.kth_cheapest(1).unwrap().gfa, 3);
            assert_eq!(dir.kth_fastest(1).unwrap().gfa, 1);
            let traced = dir.query_cheapest(2, 1);
            assert_eq!(traced.quote.unwrap().gfa, 3);
            assert!(traced.messages >= 1);
            assert!(dir.queries_served() >= 3);
            assert!(dir.average_route_messages() >= 1.0);
            let _ = dir.unsubscribe(3);
            assert_eq!(dir.kth_cheapest(1).unwrap().gfa, 1);
            let _ = dir.update_price(0, 0.1);
            assert_eq!(dir.kth_cheapest(1).unwrap().gfa, 0);
        }
    }

    #[test]
    fn overlay_builds_survive_zero_sizing() {
        // `build` clamps to one overlay node so stray callers can't panic the
        // overlay constructor; the federation itself always has n ≥ 1.
        for backend in [DirectoryBackend::Chord, DirectoryBackend::Maan] {
            let dir = backend.build(0, 3);
            assert_eq!(dir.len(), 0);
        }
    }

    #[test]
    fn publish_traffic_is_charged_by_maan_only() {
        for backend in DirectoryBackend::ALL {
            let mut dir = backend.build(4, 9);
            let m = dir.subscribe(quote(0, 500.0, 3.0));
            if backend == DirectoryBackend::Maan {
                assert!(m >= 2, "{backend:?}: a MAAN publish routes one put per attribute");
                assert!(dir.publish_messages_total() >= m);
            } else {
                assert_eq!(m, 0, "{backend:?}: central stores publish for free");
                assert_eq!(dir.publish_messages_total(), 0);
            }
        }
    }
}
