//! Locality-preserving key partitioning for the MAAN-style directory.
//!
//! MAAN (Cai et al., *MAAN: A Multi-Attribute Addressable Network for Grid
//! Information Services*) stores each attribute value under a
//! **locality-preserving hash**: a monotone map from the attribute's domain
//! onto the DHT's identifier ring, so that a range query can route once to
//! the start of the range and then walk successor nodes in key order.  This
//! module provides that map for the federation directory's two rank
//! attributes:
//!
//! * **price** (`c_i`, ranked ascending) occupies the lower half of the
//!   64-bit ring, `[0, 2^63)`;
//! * **speed** (`µ_i`, ranked *descending*) occupies the upper half,
//!   `[2^63, 2^64)`, with the map inverted so that faster clusters get
//!   *smaller* keys — walking the upper half-ring in key order yields the
//!   fastest-first ranking.
//!
//! Like MAAN itself, the hash is calibrated to an expected attribute domain
//! ([`PRICE_DOMAIN_MAX`], [`MIPS_DOMAIN_MAX`]); values outside the domain
//! clamp to the boundary bucket.  Clamping keeps the map monotone
//! (`v₁ < v₂ ⟹ K(v₁) ≤ K(v₂)`), which is all range-walking needs: equal
//! keys land on the same owner node, where the node-local store orders them
//! by the true attribute comparator.

use crate::quote::RankOrder;

/// Half of the 64-bit identifier space: the boundary between the price
/// partition (below) and the speed partition (above).
const HALF_RING: u64 = 1 << 63;

/// Upper calibration bound of the price domain (Grid Dollars).  The paper's
/// Table 1 prices fall in roughly `[3.5, 7.5]`; spreading `[0, 10]` over the
/// half-ring makes realistic populations span many ring nodes, so range
/// walks genuinely cross node boundaries.
pub const PRICE_DOMAIN_MAX: f64 = 10.0;

/// Upper calibration bound of the speed domain (per-processor MIPS; Table 1
/// spans 300–930).
pub const MIPS_DOMAIN_MAX: f64 = 2_000.0;

/// Monotone map of `v` (clamped to `[0, domain_max]`) onto `[0, 2^63)`.
fn scale_to_half_ring(v: f64, domain_max: f64) -> u64 {
    let t = (v / domain_max).clamp(0.0, 1.0);
    // `t * 2^63` is monotone in `t`; the `min` guards the `t == 1.0` case
    // from rounding up into the other attribute's partition.
    ((t * HALF_RING as f64) as u64).min(HALF_RING - 1)
}

/// Ring key of a price value: ascending price → ascending key, lower
/// half-ring.
#[must_use]
pub fn price_key(price: f64) -> u64 {
    scale_to_half_ring(price, PRICE_DOMAIN_MAX)
}

/// Ring key of a speed value: *descending* MIPS → ascending key, upper
/// half-ring (the fastest cluster owns the start of the walk).
#[must_use]
pub fn speed_key(mips: f64) -> u64 {
    HALF_RING + (HALF_RING - 1 - scale_to_half_ring(mips, MIPS_DOMAIN_MAX))
}

/// The ring key a quote publishes its `order` attribute under.
#[must_use]
pub fn attribute_key(order: RankOrder, price: f64, mips: f64) -> u64 {
    match order {
        RankOrder::Cheapest => price_key(price),
        RankOrder::Fastest => speed_key(mips),
    }
}

/// Where a range walk of `order` starts: the smallest key of the attribute's
/// partition.  A rank query routes here first, then walks successor
/// sub-ranges in key order.
#[must_use]
pub fn range_start_key(order: RankOrder) -> u64 {
    match order {
        RankOrder::Cheapest => 0,
        RankOrder::Fastest => HALF_RING,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_keys_are_monotone_and_stay_in_the_lower_half() {
        let mut last = 0u64;
        for i in 0..=1_000 {
            let price = i as f64 * 0.012; // 0 .. 12, past the domain max
            let key = price_key(price);
            assert!(key >= last, "price map must be monotone");
            assert!(key < HALF_RING, "price keys live in the lower half-ring");
            last = key;
        }
        // Out-of-domain values clamp to the boundary bucket.
        assert_eq!(price_key(PRICE_DOMAIN_MAX), price_key(40.0));
        assert_eq!(price_key(-3.0), price_key(0.0));
    }

    #[test]
    fn speed_keys_are_antitone_and_stay_in_the_upper_half() {
        let mut last = u64::MAX;
        for i in 0..=1_000 {
            let mips = i as f64 * 2.5; // 0 .. 2500, past the domain max
            let key = speed_key(mips);
            assert!(key <= last, "faster clusters must get smaller keys");
            assert!(key >= HALF_RING, "speed keys live in the upper half-ring");
            last = key;
        }
        assert_eq!(speed_key(MIPS_DOMAIN_MAX), speed_key(9_000.0));
    }

    #[test]
    fn partitions_do_not_overlap_and_walks_start_at_their_partition() {
        assert!(price_key(f64::MAX) < speed_key(f64::MAX));
        assert_eq!(range_start_key(RankOrder::Cheapest), 0);
        assert_eq!(range_start_key(RankOrder::Fastest), HALF_RING);
        assert!(attribute_key(RankOrder::Cheapest, 3.0, 500.0) >= range_start_key(RankOrder::Cheapest));
        assert!(attribute_key(RankOrder::Fastest, 3.0, 500.0) >= range_start_key(RankOrder::Fastest));
    }

    #[test]
    fn realistic_populations_spread_over_the_partition() {
        // The point of calibration: Table 1-like prices must not collapse
        // into one bucket (which would make every range walk single-node).
        let keys: Vec<u64> = [2.9, 3.6, 4.0, 4.8, 5.4, 6.1, 7.4]
            .iter()
            .map(|&p| price_key(p))
            .collect();
        for pair in keys.windows(2) {
            assert!(pair[1] > pair[0], "distinct prices must get distinct keys");
        }
        let span = keys[keys.len() - 1] - keys[0];
        assert!(
            span > HALF_RING / 4,
            "a realistic price population should span a sizeable arc of the partition"
        );
    }
}
