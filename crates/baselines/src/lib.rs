//! # grid-baselines — related-work superscheduling baselines
//!
//! The paper's related-work section describes, in enough detail to rebuild,
//! the superscheduling mechanisms it positions Grid-Federation against.  This
//! crate implements the two quantitative ones so the ablation benchmarks can
//! compare message complexity and acceptance against the federation:
//!
//! * [`broadcast`] — the NASA superscheduler of Shan et al.: autonomous grid
//!   schedulers that keep jobs local while the expected wait is below a
//!   threshold φ and otherwise run a **one-to-all broadcast** job-migration
//!   protocol, in its sender-initiated (S-I), receiver-initiated (R-I) and
//!   symmetrically-initiated (Sy-I) variants.
//! * [`flock`] — a Condor-Flock-style scheduler in which every pool only
//!   knows the partial set of pools in its P2P routing table and can only
//!   migrate jobs to those.
//! * [`comparison`] — the qualitative comparison of superscheduling systems
//!   reproduced from Table 4.
//!
//! Both baselines reuse the same cluster substrate (`grid-cluster`) and the
//! same cost model as the federation, so differences in the results come from
//! the coordination mechanism alone.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod broadcast;
pub mod comparison;
pub mod driver;
pub mod flock;

pub use broadcast::{run_broadcast, BroadcastConfig, MigrationPolicy};
pub use comparison::{table4, SuperschedulerRow};
pub use driver::{BaselineOutcome, BaselineResourceStats};
pub use flock::{run_flock, FlockConfig};
