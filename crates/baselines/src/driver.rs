//! A compact event loop shared by the baseline superschedulers.
//!
//! The baselines make *immediate* placement decisions (the paper's broadcast
//! protocols gather AWT/ERT estimates and decide on the spot), so they do not
//! need the full message-passing engine: a time-ordered loop over job
//! arrivals and completions driving the per-cluster LRMS state machines is an
//! exact simulation of their behaviour.  Placement policy is injected as a
//! closure so the S-I/R-I/Sy-I and flock variants share all bookkeeping.

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;

use grid_cluster::{completion_time, ClusterJob, LocalScheduler, ResourceSpec, SpaceSharedFcfs};
use grid_workload::{Job, JobId};

/// Per-resource statistics produced by a baseline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineResourceStats {
    /// Jobs submitted by this resource's local users.
    pub total_local_jobs: usize,
    /// Local jobs accepted anywhere.
    pub accepted: usize,
    /// Local jobs rejected.
    pub rejected: usize,
    /// Local jobs executed on this resource.
    pub processed_locally: usize,
    /// Local jobs executed elsewhere.
    pub migrated: usize,
    /// Jobs from other origins executed here.
    pub remote_jobs_processed: usize,
    /// Utilization over the run, in `[0, 1]`.
    pub utilization: f64,
}

/// The outcome of one baseline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineOutcome {
    /// Per-resource statistics.
    pub resources: Vec<BaselineResourceStats>,
    /// Total control messages exchanged (queries, replies, volunteer
    /// announcements, job transfers, completions).
    pub total_messages: u64,
    /// Mean response time of accepted jobs, in seconds.
    pub mean_response_time: f64,
    /// Number of accepted jobs across the whole system.
    pub total_accepted: usize,
    /// Number of rejected jobs across the whole system.
    pub total_rejected: usize,
}

impl BaselineOutcome {
    /// Mean acceptance rate across resources, in percent.
    #[must_use]
    pub fn mean_acceptance_rate(&self) -> f64 {
        if self.resources.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .resources
            .iter()
            .map(|r| {
                if r.total_local_jobs == 0 {
                    100.0
                } else {
                    100.0 * r.accepted as f64 / r.total_local_jobs as f64
                }
            })
            .sum();
        sum / self.resources.len() as f64
    }
}

/// Context handed to a placement policy for one arriving job.
pub struct PlacementContext<'a> {
    /// Current simulation time (the job's submit time).
    pub now: f64,
    /// The participating resources.
    pub resources: &'a [ResourceSpec],
    /// The per-resource LRMS state machines (read-only; use the estimators).
    pub lrms: &'a [SpaceSharedFcfs],
    /// Message counter the policy must update with its own control traffic.
    pub messages: &'a mut u64,
}

/// Decision returned by a placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Execute on the given resource index.
    On(usize),
    /// Drop the job.
    Reject,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QueuedEvent {
    time: f64,
    seq: u64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival { origin: usize, index: usize },
    Completion { resource: usize, job: JobId },
}

impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Runs a baseline: `place` decides, for each arriving job, where it runs.
///
/// The driver charges two messages (job transfer + completion notification)
/// for every migrated job on top of whatever control traffic the policy
/// already recorded.
///
/// # Panics
/// Panics if `workloads.len() != resources.len()`.
#[must_use]
pub fn drive<F>(
    resources: &[ResourceSpec],
    workloads: &[Vec<Job>],
    mut place: F,
) -> BaselineOutcome
where
    F: FnMut(&Job, &mut PlacementContext<'_>) -> Placement,
{
    assert_eq!(
        resources.len(),
        workloads.len(),
        "need exactly one workload per resource"
    );
    let n = resources.len();
    let mut lrms: Vec<SpaceSharedFcfs> = resources
        .iter()
        .map(|r| SpaceSharedFcfs::new(r.processors))
        .collect();
    let mut stats = vec![BaselineResourceStats::default(); n];
    for (i, w) in workloads.iter().enumerate() {
        stats[i].total_local_jobs = w.len();
    }

    let mut heap: BinaryHeap<Reverse<QueuedEvent>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (origin, jobs) in workloads.iter().enumerate() {
        for (index, job) in jobs.iter().enumerate() {
            heap.push(Reverse(QueuedEvent {
                time: job.submit,
                seq,
                kind: EventKind::Arrival { origin, index },
            }));
            seq += 1;
        }
    }

    let mut messages = 0u64;
    let mut response_sum = 0.0;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    // Executing job → (origin, submit time).  Ordered map: the simulation
    // crates keep hash collections out so no state ever depends on a
    // nondeterministic iteration order (fedlint `hash-iteration`).
    let mut executing: BTreeMap<JobId, (usize, f64)> = BTreeMap::new();
    let mut last_time = 0.0f64;
    // Reused for LRMS start notifications so the loop never allocates.
    let mut started: Vec<grid_cluster::StartedJob> = Vec::new();

    while let Some(Reverse(ev)) = heap.pop() {
        last_time = ev.time;
        match ev.kind {
            EventKind::Arrival { origin, index } => {
                let job = &workloads[origin][index];
                let mut ctx = PlacementContext {
                    now: ev.time,
                    resources,
                    lrms: &lrms,
                    messages: &mut messages,
                };
                match place(job, &mut ctx) {
                    Placement::Reject => {
                        rejected += 1;
                        stats[origin].rejected += 1;
                    }
                    Placement::On(target) => {
                        accepted += 1;
                        stats[origin].accepted += 1;
                        if target == origin {
                            stats[origin].processed_locally += 1;
                        } else {
                            stats[origin].migrated += 1;
                            stats[target].remote_jobs_processed += 1;
                            // Job transfer + completion notification.
                            messages += 2;
                        }
                        let service = completion_time(job, &resources[target], &resources[origin]);
                        executing.insert(job.id, (origin, job.submit));
                        started.clear();
                        lrms[target].submit_into(
                            ClusterJob {
                                id: job.id,
                                processors: job.processors.min(resources[target].processors),
                                service_time: service,
                            },
                            ev.time,
                            &mut started,
                        );
                        for s in &started {
                            heap.push(Reverse(QueuedEvent {
                                time: s.finish,
                                seq,
                                kind: EventKind::Completion {
                                    resource: target,
                                    job: s.id,
                                },
                            }));
                            seq += 1;
                        }
                    }
                }
            }
            EventKind::Completion { resource, job } => {
                started.clear();
                lrms[resource].on_finished_into(job, ev.time, &mut started);
                for s in &started {
                    heap.push(Reverse(QueuedEvent {
                        time: s.finish,
                        seq,
                        kind: EventKind::Completion {
                            resource,
                            job: s.id,
                        },
                    }));
                    seq += 1;
                }
                if let Some((_, submit)) = executing.remove(&job) {
                    response_sum += ev.time - submit;
                }
            }
        }
    }

    for (i, l) in lrms.iter().enumerate() {
        stats[i].utilization = l.utilization(last_time);
    }

    BaselineOutcome {
        resources: stats,
        total_messages: messages,
        mean_response_time: if accepted == 0 {
            0.0
        } else {
            response_sum / accepted as f64
        },
        total_accepted: accepted,
        total_rejected: rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_workload::{JobId, UserId};

    fn resources() -> Vec<ResourceSpec> {
        vec![
            ResourceSpec::new("a", 8, 500.0, 1.0, 2.0),
            ResourceSpec::new("b", 8, 1_000.0, 1.0, 4.0),
        ]
    }

    fn job(origin: usize, seq: usize, submit: f64, procs: u32, runtime: f64) -> Job {
        Job::from_runtime(
            JobId { origin, seq },
            UserId { origin, local: 0 },
            submit,
            procs,
            runtime,
            if origin == 0 { 500.0 } else { 1_000.0 },
            0.10,
        )
    }

    #[test]
    fn always_local_policy_behaves_like_independent_resources() {
        let res = resources();
        let workloads = vec![
            vec![job(0, 0, 0.0, 4, 100.0), job(0, 1, 10.0, 4, 100.0)],
            vec![job(1, 0, 5.0, 8, 50.0)],
        ];
        let out = drive(&res, &workloads, |j, _ctx| Placement::On(j.id.origin));
        assert_eq!(out.total_accepted, 3);
        assert_eq!(out.total_rejected, 0);
        assert_eq!(out.total_messages, 0);
        assert_eq!(out.resources[0].processed_locally, 2);
        assert_eq!(out.resources[1].processed_locally, 1);
        assert!(out.mean_response_time > 0.0);
        assert!((out.mean_acceptance_rate() - 100.0).abs() < 1e-9);
        assert!(out.resources.iter().all(|r| r.utilization > 0.0));
    }

    #[test]
    fn migration_charges_transfer_messages() {
        let res = resources();
        let workloads = vec![vec![job(0, 0, 0.0, 4, 100.0)], vec![]];
        let out = drive(&res, &workloads, |_j, ctx| {
            *ctx.messages += 3; // pretend the policy broadcast a query
            Placement::On(1)
        });
        assert_eq!(out.total_messages, 3 + 2);
        assert_eq!(out.resources[0].migrated, 1);
        assert_eq!(out.resources[1].remote_jobs_processed, 1);
    }

    #[test]
    fn rejecting_policy_rejects_everything() {
        let res = resources();
        let workloads = vec![vec![job(0, 0, 0.0, 4, 100.0)], vec![job(1, 0, 0.0, 4, 100.0)]];
        let out = drive(&res, &workloads, |_j, _ctx| Placement::Reject);
        assert_eq!(out.total_accepted, 0);
        assert_eq!(out.total_rejected, 2);
        assert_eq!(out.mean_response_time, 0.0);
        assert_eq!(out.mean_acceptance_rate(), 0.0);
    }
}
