//! A Condor-Flock-style partial-view superscheduler.
//!
//! In the self-organising Condor flock (Butt, Zhang & Hu) each pool only
//! knows the pools indexed by its Pastry routing table, so its scheduling
//! decision is "based on a partial set of resources and hence it inhibits the
//! system from approaching optimal load balancing".  This baseline captures
//! exactly that limitation: each resource is given a deterministic peer set
//! of configurable size, and jobs that cannot be served locally may only
//! migrate to a known peer.  Comparing its acceptance rate against the
//! Grid-Federation (which sees the complete quote set through the shared
//! directory) quantifies the value of the full view.

use grid_cluster::{completion_time, LocalScheduler, ResourceSpec};
use grid_workload::Job;

use crate::driver::{drive, BaselineOutcome, Placement, PlacementContext};

/// Configuration of the partial-view flock baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct FlockConfig {
    /// Number of peers each pool knows (routing-table size).  A value of
    /// `⌈log₂ n⌉` mimics Pastry; `n - 1` recovers a full view.
    pub peers_per_pool: usize,
    /// Seed for the deterministic peer-set construction.
    pub seed: u64,
    /// Whether deadline admission control is enforced.
    pub enforce_deadlines: bool,
}

impl Default for FlockConfig {
    fn default() -> Self {
        FlockConfig {
            peers_per_pool: 3,
            seed: 17,
            enforce_deadlines: true,
        }
    }
}

/// Deterministic peer set of pool `i` in a system of `n` pools.
#[must_use]
pub fn peer_set(i: usize, n: usize, k: usize, seed: u64) -> Vec<usize> {
    if n <= 1 {
        return Vec::new();
    }
    let k = k.min(n - 1);
    // Deterministic "hashed stride" selection: start from a seed-dependent
    // offset and take k distinct peers spread around the ring.
    let mut peers = Vec::with_capacity(k);
    let mut x = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    while peers.len() < k {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let candidate = (x >> 33) as usize % n;
        if candidate != i && !peers.contains(&candidate) {
            peers.push(candidate);
        }
    }
    peers.sort_unstable();
    peers
}

/// Runs the partial-view flock baseline.
///
/// # Panics
/// Panics if `workloads.len() != resources.len()`.
#[must_use]
pub fn run_flock(
    resources: &[ResourceSpec],
    workloads: &[Vec<Job>],
    config: &FlockConfig,
) -> BaselineOutcome {
    let n = resources.len();
    let peer_sets: Vec<Vec<usize>> = (0..n)
        .map(|i| peer_set(i, n, config.peers_per_pool, config.seed))
        .collect();

    drive(resources, workloads, |job: &Job, ctx: &mut PlacementContext<'_>| {
        let origin = job.id.origin;
        let now = ctx.now;
        let deadline = job.absolute_deadline();
        let local_service = completion_time(job, &ctx.resources[origin], &ctx.resources[origin]);
        let fits_locally = job.processors <= ctx.resources[origin].processors;
        let local_ok = fits_locally
            && (!config.enforce_deadlines
                || ctx.lrms[origin].estimate_completion(job.processors, local_service, now)
                    <= deadline + 1e-9);
        if local_ok {
            return Placement::On(origin);
        }

        // Inquire with the known peers only (one enquiry + one reply each).
        let peers = &peer_sets[origin];
        *ctx.messages += 2 * peers.len() as u64;
        let mut best: Option<(f64, usize)> = None;
        for &peer in peers {
            if job.processors > ctx.resources[peer].processors {
                continue;
            }
            let service = completion_time(job, &ctx.resources[peer], &ctx.resources[origin]);
            let estimate = ctx.lrms[peer].estimate_completion(job.processors, service, now);
            if config.enforce_deadlines && estimate > deadline + 1e-9 {
                continue;
            }
            if best.map_or(true, |(b, _)| estimate < b) {
                best = Some((estimate, peer));
            }
        }
        match best {
            Some((_, peer)) => Placement::On(peer),
            None => Placement::Reject,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_workload::{JobId, UserId};

    fn resources(n: usize) -> Vec<ResourceSpec> {
        (0..n)
            .map(|i| {
                if i == 0 {
                    ResourceSpec::new("origin", 8, 500.0, 1.0, 2.0)
                } else {
                    ResourceSpec::new(&format!("peer{i}"), 64, 900.0, 2.0, 3.6)
                }
            })
            .collect()
    }

    fn overload(origin_spec: &ResourceSpec) -> Vec<Job> {
        let mut jobs: Vec<Job> = (0..24)
            .map(|i| {
                Job::from_runtime(
                    JobId { origin: 0, seq: i },
                    UserId { origin: 0, local: i % 4 },
                    i as f64,
                    8,
                    400.0,
                    500.0,
                    0.10,
                )
            })
            .collect();
        grid_cluster::fabricate_qos_all(&mut jobs, origin_spec);
        jobs
    }

    #[test]
    fn peer_sets_are_deterministic_and_well_formed() {
        for n in [2usize, 5, 16, 33] {
            for i in 0..n {
                let p = peer_set(i, n, 4, 7);
                assert_eq!(p, peer_set(i, n, 4, 7));
                assert!(p.len() <= 4 && p.len() == 4.min(n - 1));
                assert!(p.iter().all(|&x| x != i && x < n));
                let mut dedup = p.clone();
                dedup.dedup();
                assert_eq!(dedup, p);
            }
        }
        assert!(peer_set(0, 1, 3, 7).is_empty());
    }

    #[test]
    fn partial_view_accepts_no_more_than_full_view() {
        let res = resources(12);
        let mut workloads = vec![Vec::new(); 12];
        workloads[0] = overload(&res[0]);
        let partial = run_flock(
            &res,
            &workloads,
            &FlockConfig {
                peers_per_pool: 2,
                ..FlockConfig::default()
            },
        );
        let full = run_flock(
            &res,
            &workloads,
            &FlockConfig {
                peers_per_pool: 11,
                ..FlockConfig::default()
            },
        );
        assert!(full.total_accepted >= partial.total_accepted);
        assert!(full.total_accepted > 0);
        // The full view contacts more peers per migrating job.
        assert!(full.total_messages > partial.total_messages);
    }

    #[test]
    fn idle_pools_keep_jobs_local_without_messages() {
        let res = resources(4);
        let mut workloads = vec![Vec::new(); 4];
        workloads[1] = vec![{
            let mut j = Job::from_runtime(
                JobId { origin: 1, seq: 0 },
                UserId { origin: 1, local: 0 },
                0.0,
                4,
                100.0,
                900.0,
                0.10,
            );
            grid_cluster::fabricate_qos_all(std::slice::from_mut(&mut j), &res[1]);
            j
        }];
        let out = run_flock(&res, &workloads, &FlockConfig::default());
        assert_eq!(out.total_accepted, 1);
        assert_eq!(out.total_messages, 0);
        assert_eq!(out.resources[1].processed_locally, 1);
    }
}
