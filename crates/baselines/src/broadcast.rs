//! The NASA superscheduler baseline (Shan, Oliker & Biswas) as described in
//! the paper's related-work section.
//!
//! Every resource runs a grid scheduler (GS).  An arriving job first asks the
//! local LRMS for its expected average wait time (AWT); if it is below the
//! site-policy threshold φ the job stays local.  Otherwise a distributed job
//! migration protocol runs:
//!
//! * **S-I (sender-initiated)** — the GS broadcasts a resource-demand query
//!   to *all* other GSes; each replies with its AWT, expected run time (ERT)
//!   and utilization; the GS picks the candidate with the smallest turnaround
//!   cost TC = AWT + ERT (utilization breaks ties) and migrates the job.
//! * **R-I (receiver-initiated)** — under-utilised GSes periodically
//!   broadcast volunteer announcements; a sender only queries the current
//!   volunteers.
//! * **Sy-I (symmetric)** — both mechanisms are active.
//!
//! The point of this baseline is the paper's scalability argument: the
//! broadcast query costs Θ(n) messages per migrated job, whereas the
//! Grid-Federation's directory-driven negotiation costs O(log n) + a few
//! negotiation messages.  The `ablation_baselines` bench plots the two side
//! by side.

use grid_cluster::{completion_time, LocalScheduler, ResourceSpec};
use grid_workload::Job;

use crate::driver::{drive, BaselineOutcome, Placement, PlacementContext};

/// Which job-migration variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Sender-initiated one-to-all broadcast.
    SenderInitiated,
    /// Receiver-initiated volunteering.
    ReceiverInitiated,
    /// Both (symmetric).
    SymmetricallyInitiated,
}

/// Configuration of the broadcast superscheduler baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastConfig {
    /// Site policy threshold φ on the expected wait time, in seconds.
    pub awt_threshold: f64,
    /// Utilization threshold δ below which a GS volunteers (R-I / Sy-I).
    pub volunteer_utilization: f64,
    /// Volunteer announcement period σ, in seconds (R-I / Sy-I).
    pub volunteer_period: f64,
    /// Migration variant.
    pub policy: MigrationPolicy,
    /// Whether jobs whose deadline cannot be met anywhere are dropped
    /// (matching the federation's admission control) or run late.
    pub enforce_deadlines: bool,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        BroadcastConfig {
            awt_threshold: 300.0,
            volunteer_utilization: 0.6,
            volunteer_period: 600.0,
            policy: MigrationPolicy::SenderInitiated,
            enforce_deadlines: true,
        }
    }
}

/// Runs the broadcast superscheduler over the given resources and workloads.
///
/// # Panics
/// Panics if `workloads.len() != resources.len()`.
#[must_use]
pub fn run_broadcast(
    resources: &[ResourceSpec],
    workloads: &[Vec<Job>],
    config: &BroadcastConfig,
) -> BaselineOutcome {
    let n = resources.len();
    // R-I / Sy-I: account volunteer announcements over the workload horizon.
    let mut volunteer_messages = 0u64;
    let horizon = workloads
        .iter()
        .flatten()
        .map(|j| j.submit)
        .fold(0.0f64, f64::max);
    if matches!(
        config.policy,
        MigrationPolicy::ReceiverInitiated | MigrationPolicy::SymmetricallyInitiated
    ) && config.volunteer_period > 0.0
        && n > 1
    {
        // Each volunteering GS broadcasts to the n-1 others each period.  We
        // charge the worst case (every GS volunteers every period); the exact
        // count depends on instantaneous utilization and is refined below by
        // only letting currently under-utilised GSes receive migrations.
        let periods = (horizon / config.volunteer_period).ceil() as u64;
        volunteer_messages = periods * (n as u64) * (n as u64 - 1);
    }

    let mut outcome = drive(resources, workloads, |job: &Job, ctx: &mut PlacementContext<'_>| {
        let origin = job.id.origin;
        let now = ctx.now;
        let local_service = completion_time(job, &ctx.resources[origin], &ctx.resources[origin]);
        let fits_locally = job.processors <= ctx.resources[origin].processors;
        let local_estimate = if fits_locally {
            ctx.lrms[origin].estimate_completion(job.processors, local_service, now)
        } else {
            f64::INFINITY
        };
        let local_wait = (local_estimate - now - local_service).max(0.0);
        let deadline = job.absolute_deadline();

        // Keep the job local while the expected wait is acceptable.
        if fits_locally
            && local_wait <= config.awt_threshold
            && (!config.enforce_deadlines || local_estimate <= deadline + 1e-9)
        {
            return Placement::On(origin);
        }

        // Candidate set: everyone (S-I / Sy-I) or only currently
        // under-utilised GSes (R-I).
        let candidates: Vec<usize> = (0..ctx.resources.len())
            .filter(|&i| i != origin)
            .filter(|&i| match config.policy {
                MigrationPolicy::SenderInitiated | MigrationPolicy::SymmetricallyInitiated => true,
                MigrationPolicy::ReceiverInitiated => {
                    ctx.lrms[i].utilization(now.max(1.0)) < config.volunteer_utilization
                }
            })
            .collect();

        // One query + one reply per contacted GS.
        *ctx.messages += 2 * candidates.len() as u64;

        // Pick the minimum turnaround cost TC = AWT + ERT among feasible
        // candidates, using utilization as the tie-breaker.
        let mut best: Option<(f64, f64, usize)> = None;
        for &cand in &candidates {
            if job.processors > ctx.resources[cand].processors {
                continue;
            }
            let ert = completion_time(job, &ctx.resources[cand], &ctx.resources[origin]);
            let estimate = ctx.lrms[cand].estimate_completion(job.processors, ert, now);
            if config.enforce_deadlines && estimate > deadline + 1e-9 {
                continue;
            }
            let tc = estimate - now;
            let rus = ctx.lrms[cand].utilization(now.max(1.0));
            let better = match best {
                None => true,
                Some((best_tc, best_rus, _)) => {
                    tc < best_tc - 1e-9 || ((tc - best_tc).abs() <= 1e-9 && rus < best_rus)
                }
            };
            if better {
                best = Some((tc, rus, cand));
            }
        }

        if let Some((_, _, cand)) = best {
            return Placement::On(cand);
        }
        // Fall back to the local resource if it can still meet the deadline
        // (or if deadlines are not enforced).
        if fits_locally && (!config.enforce_deadlines || local_estimate <= deadline + 1e-9) {
            return Placement::On(origin);
        }
        Placement::Reject
    });

    outcome.total_messages += volunteer_messages;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_workload::{JobId, UserId};

    fn resources() -> Vec<ResourceSpec> {
        vec![
            ResourceSpec::new("small", 8, 500.0, 1.0, 2.0),
            ResourceSpec::new("large", 64, 900.0, 2.0, 3.6),
            ResourceSpec::new("medium", 32, 700.0, 1.0, 2.8),
        ]
    }

    fn burst(origin: usize, count: usize, procs: u32, runtime: f64) -> Vec<Job> {
        (0..count)
            .map(|i| {
                Job::from_runtime(
                    JobId { origin, seq: i },
                    UserId { origin, local: i % 4 },
                    (i as f64) * 1.0,
                    procs,
                    runtime,
                    500.0,
                    0.10,
                )
            })
            .collect()
    }

    fn with_deadlines(mut jobs: Vec<Job>, origin: &ResourceSpec) -> Vec<Job> {
        grid_cluster::fabricate_qos_all(&mut jobs, origin);
        jobs
    }

    #[test]
    fn idle_system_keeps_jobs_local() {
        let res = resources();
        let workloads = vec![
            with_deadlines(burst(0, 2, 4, 100.0), &res[0]),
            vec![],
            vec![],
        ];
        let out = run_broadcast(&res, &workloads, &BroadcastConfig::default());
        assert_eq!(out.total_accepted, 2);
        assert_eq!(out.resources[0].processed_locally, 2);
        assert_eq!(out.resources[0].migrated, 0);
        assert_eq!(out.total_messages, 0);
    }

    #[test]
    fn overload_triggers_broadcast_migration() {
        let res = resources();
        // 20 simultaneous 8-processor jobs swamp the 8-processor origin.
        let workloads = vec![
            with_deadlines(burst(0, 20, 8, 400.0), &res[0]),
            vec![],
            vec![],
        ];
        let out = run_broadcast(&res, &workloads, &BroadcastConfig::default());
        assert!(out.resources[0].migrated > 0, "expected migrations");
        // Every migrated (or attempted) job broadcast to the 2 other GSes:
        // at least 4 messages per broadcasting job plus 2 transfer messages.
        assert!(out.total_messages >= 4 * out.resources[0].migrated as u64);
        assert!(out.total_accepted > 8);
        assert!(out.resources[1].remote_jobs_processed + out.resources[2].remote_jobs_processed > 0);
    }

    #[test]
    fn receiver_initiated_adds_volunteer_traffic() {
        let res = resources();
        let workloads = vec![
            with_deadlines(burst(0, 10, 8, 400.0), &res[0]),
            vec![],
            vec![],
        ];
        let si = run_broadcast(
            &res,
            &workloads,
            &BroadcastConfig {
                policy: MigrationPolicy::SenderInitiated,
                ..BroadcastConfig::default()
            },
        );
        let syi = run_broadcast(
            &res,
            &workloads,
            &BroadcastConfig {
                policy: MigrationPolicy::SymmetricallyInitiated,
                ..BroadcastConfig::default()
            },
        );
        assert!(
            syi.total_messages > si.total_messages,
            "Sy-I should add volunteer announcements ({} vs {})",
            syi.total_messages,
            si.total_messages
        );
    }

    #[test]
    fn broadcast_cost_grows_linearly_with_system_size() {
        // One overloaded origin, growing numbers of idle peers: the messages
        // per migrated job grow linearly, unlike the federation's O(log n).
        let mut per_size = Vec::new();
        for n in [4usize, 8, 16] {
            let res: Vec<ResourceSpec> = (0..n)
                .map(|i| {
                    if i == 0 {
                        ResourceSpec::new("origin", 8, 500.0, 1.0, 2.0)
                    } else {
                        ResourceSpec::new(&format!("peer{i}"), 64, 900.0, 2.0, 3.6)
                    }
                })
                .collect();
            let mut workloads = vec![Vec::new(); n];
            workloads[0] = with_deadlines(burst(0, 16, 8, 400.0), &res[0]);
            let out = run_broadcast(&res, &workloads, &BroadcastConfig::default());
            let migrated = out.resources[0].migrated.max(1) as f64;
            per_size.push(out.total_messages as f64 / migrated);
        }
        assert!(per_size[2] > per_size[1] && per_size[1] > per_size[0]);
        // Roughly linear: quadrupling the system size should far more than
        // double the per-migration message cost.
        assert!(per_size[2] / per_size[0] > 2.0);
    }
}
