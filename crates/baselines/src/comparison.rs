//! Table 4 of the paper: qualitative comparison of superscheduling systems.

use std::fmt;

/// The network-organisation model of a superscheduling system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkModel {
    /// No structured organisation (point-to-point / random).
    Random,
    /// Structured or unstructured peer-to-peer overlay.
    P2p,
    /// Peer-to-peer with a decentralised directory (the Grid-Federation).
    P2pDecentralizedDirectory,
    /// A central service (broker, auctioneer or index).
    Centralized,
    /// A hierarchy of schedulers.
    Hierarchical,
}

impl fmt::Display for NetworkModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetworkModel::Random => "Random",
            NetworkModel::P2p => "P2P",
            NetworkModel::P2pDecentralizedDirectory => "P2P (decentralized directory)",
            NetworkModel::Centralized => "Centralized",
            NetworkModel::Hierarchical => "Hierarchical",
        };
        write!(f, "{s}")
    }
}

/// Whether scheduling decisions optimise system- or user-centric objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingParameters {
    /// Throughput / utilization oriented.
    SystemCentric,
    /// QoS (budget, deadline) oriented.
    UserCentric,
}

impl fmt::Display for SchedulingParameters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingParameters::SystemCentric => write!(f, "System-centric"),
            SchedulingParameters::UserCentric => write!(f, "User-centric"),
        }
    }
}

/// How much coordination exists between the schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinationLevel {
    /// No coordination between brokers/schedulers.
    NonCoordinated,
    /// Some coordination (e.g. partial views, pairwise state exchange).
    PartiallyCoordinated,
    /// Fully coordinated scheduling decisions.
    Coordinated,
}

impl fmt::Display for CoordinationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinationLevel::NonCoordinated => write!(f, "Non-coordinated"),
            CoordinationLevel::PartiallyCoordinated => write!(f, "Partially coordinated"),
            CoordinationLevel::Coordinated => write!(f, "Coordinated"),
        }
    }
}

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperschedulerRow {
    /// System name as used in the paper.
    pub system: &'static str,
    /// Network / organisational model.
    pub network_model: NetworkModel,
    /// Scheduling objective.
    pub parameters: SchedulingParameters,
    /// Coordination mechanism.
    pub coordination: CoordinationLevel,
}

/// The ten systems compared in Table 4, in the paper's order.
#[must_use]
pub fn table4() -> Vec<SuperschedulerRow> {
    use CoordinationLevel::{Coordinated, NonCoordinated, PartiallyCoordinated};
    use NetworkModel::{Centralized, Hierarchical, P2p, P2pDecentralizedDirectory, Random};
    use SchedulingParameters::{SystemCentric, UserCentric};
    vec![
        SuperschedulerRow {
            system: "NASA-Superscheduler",
            network_model: Random,
            parameters: SystemCentric,
            coordination: PartiallyCoordinated,
        },
        SuperschedulerRow {
            system: "Condor-Flock P2P",
            network_model: P2p,
            parameters: SystemCentric,
            coordination: PartiallyCoordinated,
        },
        SuperschedulerRow {
            system: "Grid-Federation",
            network_model: P2pDecentralizedDirectory,
            parameters: UserCentric,
            coordination: Coordinated,
        },
        SuperschedulerRow {
            system: "Legion-Federation",
            network_model: Random,
            parameters: SystemCentric,
            coordination: Coordinated,
        },
        SuperschedulerRow {
            system: "Nimrod-G",
            network_model: Centralized,
            parameters: UserCentric,
            coordination: NonCoordinated,
        },
        SuperschedulerRow {
            system: "Condor-G",
            network_model: Centralized,
            parameters: SystemCentric,
            coordination: NonCoordinated,
        },
        SuperschedulerRow {
            system: "OurGrid",
            network_model: P2p,
            parameters: SystemCentric,
            coordination: Coordinated,
        },
        SuperschedulerRow {
            system: "Tycoon",
            network_model: Centralized,
            parameters: UserCentric,
            coordination: NonCoordinated,
        },
        SuperschedulerRow {
            system: "Bellagio",
            network_model: Centralized,
            parameters: UserCentric,
            coordination: Coordinated,
        },
        SuperschedulerRow {
            system: "Mosix-Grid",
            network_model: Hierarchical,
            parameters: SystemCentric,
            coordination: Coordinated,
        },
    ]
}

/// Renders Table 4 as an aligned ASCII table.
#[must_use]
pub fn table4_ascii() -> String {
    let rows = table4();
    let mut out = String::from(
        "Index | System               | Network Model                  | Scheduling Parameters | Scheduling Mechanism\n",
    );
    out.push_str(
        "------+----------------------+--------------------------------+-----------------------+----------------------\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{:>5} | {:<20} | {:<30} | {:<21} | {}\n",
            i + 1,
            r.system,
            r.network_model.to_string(),
            r.parameters.to_string(),
            r.coordination
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_the_paper() {
        let rows = table4();
        assert_eq!(rows.len(), 10);
        let gf = rows.iter().find(|r| r.system == "Grid-Federation").unwrap();
        assert_eq!(gf.parameters, SchedulingParameters::UserCentric);
        assert_eq!(gf.coordination, CoordinationLevel::Coordinated);
        assert_eq!(gf.network_model, NetworkModel::P2pDecentralizedDirectory);
        let nimrod = rows.iter().find(|r| r.system == "Nimrod-G").unwrap();
        assert_eq!(nimrod.coordination, CoordinationLevel::NonCoordinated);
        // Only Grid-Federation combines user-centric parameters, coordination
        // and a decentralized directory — the claim the table makes.
        let unique: Vec<_> = rows
            .iter()
            .filter(|r| {
                r.parameters == SchedulingParameters::UserCentric
                    && r.coordination == CoordinationLevel::Coordinated
                    && r.network_model == NetworkModel::P2pDecentralizedDirectory
            })
            .collect();
        assert_eq!(unique.len(), 1);
    }

    #[test]
    fn ascii_rendering_contains_all_systems() {
        let text = table4_ascii();
        for r in table4() {
            assert!(text.contains(r.system), "missing {}", r.system);
        }
        assert!(text.lines().count() >= 12);
    }

    #[test]
    fn display_impls_are_stable() {
        assert_eq!(NetworkModel::P2p.to_string(), "P2P");
        assert_eq!(SchedulingParameters::SystemCentric.to_string(), "System-centric");
        assert_eq!(CoordinationLevel::Coordinated.to_string(), "Coordinated");
    }
}
