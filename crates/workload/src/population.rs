//! User populations and OFC/OFT population profiles.
//!
//! Experiment 3 of the paper sweeps eleven *population profiles*: the share
//! of users that optimise for time (OFT) grows from 0 % to 100 % in steps of
//! ten, with the remainder optimising for cost (OFC).  Strategies are a
//! property of the **user**, not of the individual job: every job submitted
//! by an OFT user is scheduled with the OFT policy.

use crate::job::{Job, Strategy, UserId};
use rand::seq::SliceRandom;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A population mix: what percentage of users seek *optimise-for-time*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PopulationProfile {
    /// Percentage of users seeking OFT, in `[0, 100]`.
    pub oft_percent: u32,
}

impl PopulationProfile {
    /// Creates a profile with the given OFT percentage.
    ///
    /// # Panics
    /// Panics if `oft_percent > 100`.
    #[must_use]
    pub fn new(oft_percent: u32) -> Self {
        assert!(oft_percent <= 100, "oft_percent must be <= 100, got {oft_percent}");
        PopulationProfile { oft_percent }
    }

    /// Percentage of users seeking OFC.
    #[must_use]
    pub fn ofc_percent(&self) -> u32 {
        100 - self.oft_percent
    }

    /// The eleven profiles evaluated by the paper:
    /// OFT ∈ {0, 10, 20, …, 100}.
    #[must_use]
    pub fn paper_sweep() -> Vec<PopulationProfile> {
        (0..=10).map(|i| PopulationProfile::new(i * 10)).collect()
    }

    /// The profile the paper recommends as the sweet spot (70 % OFC / 30 % OFT).
    #[must_use]
    pub fn recommended() -> Self {
        PopulationProfile::new(30)
    }

    /// A short label such as `"OFC70/OFT30"` used in tables and CSV headers.
    #[must_use]
    pub fn label(&self) -> String {
        format!("OFC{}/OFT{}", self.ofc_percent(), self.oft_percent)
    }
}

/// Deterministic assignment of strategies to the users of one resource.
///
/// The assignment shuffles the local user indices with a seed derived from
/// the resource index, then marks the first `oft_percent`% of them as OFT.
/// This gives the exact requested proportion (up to rounding) while remaining
/// reproducible and independent of the job order.
#[derive(Debug, Clone)]
pub struct UserPopulation {
    origin: usize,
    strategies: Vec<Strategy>,
}

impl UserPopulation {
    /// Builds the population of `user_count` users local to resource
    /// `origin`, following `profile`.
    ///
    /// # Panics
    /// Panics if `user_count == 0`.
    #[must_use]
    pub fn new(origin: usize, user_count: usize, profile: PopulationProfile, seed: u64) -> Self {
        assert!(user_count > 0, "a resource needs at least one user");
        let mut order: Vec<usize> = (0..user_count).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ (origin as u64).wrapping_mul(0x9E37_79B9));
        order.shuffle(&mut rng);
        // Round to nearest so a 30 % profile over 10 users gives exactly 3.
        let oft_count = ((user_count as f64) * f64::from(profile.oft_percent) / 100.0).round() as usize;
        let mut strategies = vec![Strategy::Ofc; user_count];
        for &u in order.iter().take(oft_count) {
            strategies[u] = Strategy::Oft;
        }
        UserPopulation { origin, strategies }
    }

    /// The resource this population belongs to.
    #[must_use]
    pub fn origin(&self) -> usize {
        self.origin
    }

    /// Number of users.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strategies.len()
    }

    /// Whether the population is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strategies.is_empty()
    }

    /// Number of OFT users.
    #[must_use]
    pub fn oft_count(&self) -> usize {
        self.strategies.iter().filter(|s| **s == Strategy::Oft).count()
    }

    /// The strategy of a local user.
    ///
    /// # Panics
    /// Panics if the user does not belong to this population.
    #[must_use]
    pub fn strategy_of(&self, user: UserId) -> Strategy {
        assert_eq!(user.origin, self.origin, "user {user} does not belong to resource {}", self.origin);
        self.strategies[user.local]
    }

    /// Assigns the population's strategy to a single job in place — the
    /// per-job primitive behind both [`UserPopulation::apply`] and the
    /// streaming [`crate::source::JobSource::populated`] adapter.  Jobs
    /// belonging to other origins are left untouched.
    pub fn assign(&self, job: &mut Job) {
        if job.user.origin == self.origin {
            job.qos.strategy = self.strategies[job.user.local];
        }
    }

    /// Applies the population's strategies to a slice of jobs in place.
    /// Jobs belonging to other origins are left untouched.
    pub fn apply(&self, jobs: &mut [Job]) {
        for job in jobs.iter_mut() {
            self.assign(job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, Qos};

    #[test]
    fn profile_sweep_and_labels() {
        let sweep = PopulationProfile::paper_sweep();
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0].oft_percent, 0);
        assert_eq!(sweep[10].oft_percent, 100);
        assert_eq!(sweep[3].label(), "OFC70/OFT30");
        assert_eq!(PopulationProfile::recommended().oft_percent, 30);
        assert_eq!(PopulationProfile::new(40).ofc_percent(), 60);
    }

    #[test]
    #[should_panic(expected = "must be <= 100")]
    fn invalid_profile_panics() {
        let _ = PopulationProfile::new(101);
    }

    #[test]
    fn population_has_exact_proportion() {
        for pct in [0, 10, 30, 50, 70, 100] {
            let pop = UserPopulation::new(2, 200, PopulationProfile::new(pct), 42);
            assert_eq!(pop.oft_count(), 2 * pct as usize, "pct {pct}");
            assert_eq!(pop.len(), 200);
            assert!(!pop.is_empty());
        }
    }

    #[test]
    fn population_is_deterministic() {
        let a = UserPopulation::new(1, 50, PopulationProfile::new(40), 7);
        let b = UserPopulation::new(1, 50, PopulationProfile::new(40), 7);
        for i in 0..50 {
            let u = UserId { origin: 1, local: i };
            assert_eq!(a.strategy_of(u), b.strategy_of(u));
        }
        // Different seed should (almost surely) produce a different assignment.
        let c = UserPopulation::new(1, 50, PopulationProfile::new(40), 8);
        let same = (0..50).all(|i| {
            let u = UserId { origin: 1, local: i };
            a.strategy_of(u) == c.strategy_of(u)
        });
        assert!(!same, "different seeds should shuffle users differently");
    }

    #[test]
    fn apply_only_touches_own_origin() {
        let pop = UserPopulation::new(0, 10, PopulationProfile::new(100), 1);
        let mut jobs = vec![
            Job {
                id: JobId { origin: 0, seq: 0 },
                user: UserId { origin: 0, local: 3 },
                submit: 0.0,
                processors: 1,
                length_mi: 1.0,
                comm_overhead: 0.0,
                qos: Qos { budget: 1.0, deadline: 1.0, strategy: Strategy::Ofc },
            },
            Job {
                id: JobId { origin: 1, seq: 0 },
                user: UserId { origin: 1, local: 3 },
                submit: 0.0,
                processors: 1,
                length_mi: 1.0,
                comm_overhead: 0.0,
                qos: Qos { budget: 1.0, deadline: 1.0, strategy: Strategy::Ofc },
            },
        ];
        pop.apply(&mut jobs);
        assert_eq!(jobs[0].qos.strategy, Strategy::Oft);
        assert_eq!(jobs[1].qos.strategy, Strategy::Ofc);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn strategy_of_foreign_user_panics() {
        let pop = UserPopulation::new(0, 10, PopulationProfile::new(50), 1);
        let _ = pop.strategy_of(UserId { origin: 3, local: 0 });
    }
}
