//! Standard Workload Format (SWF) parsing and writing.
//!
//! The Parallel Workloads Archive traces used by the paper are distributed in
//! SWF: one line per job with 18 whitespace-separated integer fields, plus
//! header comments introduced by `;`.  This module provides a tolerant parser
//! (missing fields default to `-1`, as the format specifies), a writer, and a
//! converter into the workspace's [`Job`] type so that real traces can be
//! replayed through the federation unmodified.
//!
//! Field order (0-based), per the archive specification:
//! `0` job number, `1` submit time, `2` wait time, `3` run time,
//! `4` allocated processors, `5` average CPU time, `6` used memory,
//! `7` requested processors, `8` requested time, `9` requested memory,
//! `10` status, `11` user id, `12` group id, `13` executable,
//! `14` queue, `15` partition, `16` preceding job, `17` think time.

use std::fmt;
use std::io::BufRead;

use crate::job::{Job, JobId, UserId};

/// One SWF record (a single job) with the fields the simulator consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfRecord {
    /// Job number (field 0).
    pub job_number: i64,
    /// Submit time in seconds from the trace start (field 1).
    pub submit_time: f64,
    /// Wait time in seconds (field 2); `-1` when unknown.
    pub wait_time: f64,
    /// Run time in seconds (field 3); `-1` when unknown.
    pub run_time: f64,
    /// Number of allocated processors (field 4); `-1` when unknown.
    pub allocated_processors: i64,
    /// Requested processors (field 7); `-1` when unknown.
    pub requested_processors: i64,
    /// Requested (estimated) runtime in seconds (field 8); `-1` when unknown.
    pub requested_time: f64,
    /// Completion status (field 10); `1` means completed normally.
    pub status: i64,
    /// User id (field 11); `-1` when unknown.
    pub user_id: i64,
    /// Group id (field 12); `-1` when unknown.
    pub group_id: i64,
    /// Queue number (field 14); `-1` when unknown.
    pub queue: i64,
}

impl SwfRecord {
    /// The processor count to simulate with: allocated if known, otherwise
    /// requested, otherwise 1.
    #[must_use]
    pub fn effective_processors(&self) -> u32 {
        let p = if self.allocated_processors > 0 {
            self.allocated_processors
        } else if self.requested_processors > 0 {
            self.requested_processors
        } else {
            1
        };
        u32::try_from(p).unwrap_or(1)
    }

    /// The runtime to simulate with: actual if known, otherwise requested.
    /// Returns `None` when neither is known (such records are skipped).
    #[must_use]
    pub fn effective_runtime(&self) -> Option<f64> {
        if self.run_time > 0.0 {
            Some(self.run_time)
        } else if self.requested_time > 0.0 {
            Some(self.requested_time)
        } else {
            None
        }
    }

    /// Converts the record into a simulator [`Job`] with sequence number
    /// `seq`, or `None` when the record has no usable runtime.  This is the
    /// single conversion point shared by [`SwfTrace::to_jobs`] and the
    /// streaming [`SwfJobStream`], so the two paths cannot drift.
    #[must_use]
    pub fn to_job(
        &self,
        seq: usize,
        origin: usize,
        origin_mips: f64,
        max_processors: u32,
        comm_fraction: f64,
    ) -> Option<Job> {
        let runtime = self.effective_runtime()?;
        let processors = self.effective_processors().clamp(1, max_processors.max(1));
        let user_local = usize::try_from(self.user_id.max(0)).unwrap_or(0);
        Some(Job::from_runtime(
            JobId { origin, seq },
            UserId {
                origin,
                local: user_local,
            },
            self.submit_time.max(0.0),
            processors,
            runtime,
            origin_mips,
            comm_fraction,
        ))
    }
}

/// One classified SWF line: the unit both the eager parser and the
/// streaming job source are built from.
enum SwfLine {
    Blank,
    Comment(String),
    Record(SwfRecord),
}

/// Parses one raw SWF line (1-based `line_no` is for error reporting only).
fn parse_swf_line(raw_line: &str, line_no: usize) -> Result<SwfLine, SwfParseError> {
    let line = raw_line.trim();
    if line.is_empty() {
        return Ok(SwfLine::Blank);
    }
    if let Some(comment) = line.strip_prefix(';') {
        return Ok(SwfLine::Comment(comment.trim().to_string()));
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 5 {
        return Err(SwfParseError {
            line: line_no,
            message: format!("expected at least 5 fields, found {}", fields.len()),
        });
    }
    let get_i = |i: usize| -> Result<i64, SwfParseError> {
        fields.get(i).map_or(Ok(-1), |s| {
            s.parse::<i64>().map_err(|_| SwfParseError {
                line: line_no,
                message: format!("field {i} is not an integer: {s:?}"),
            })
        })
    };
    let get_f = |i: usize| -> Result<f64, SwfParseError> {
        fields.get(i).map_or(Ok(-1.0), |s| {
            s.parse::<f64>().map_err(|_| SwfParseError {
                line: line_no,
                message: format!("field {i} is not a number: {s:?}"),
            })
        })
    };
    Ok(SwfLine::Record(SwfRecord {
        job_number: get_i(0)?,
        submit_time: get_f(1)?,
        wait_time: get_f(2)?,
        run_time: get_f(3)?,
        allocated_processors: get_i(4)?,
        requested_processors: get_i(7)?,
        requested_time: get_f(8)?,
        status: get_i(10)?,
        user_id: get_i(11)?,
        group_id: get_i(12)?,
        queue: get_i(14)?,
    }))
}

/// Errors produced while parsing an SWF document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for SwfParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SWF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfParseError {}

/// A parsed SWF trace: header comments plus records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwfTrace {
    /// Header / inline comment lines, without the leading `;`.
    pub comments: Vec<String>,
    /// Parsed job records, in file order.
    pub records: Vec<SwfRecord>,
}

impl SwfTrace {
    /// Parses an SWF document from a string.
    ///
    /// Lines starting with `;` are collected as comments; blank lines are
    /// skipped; data lines must contain at least the first five fields.
    ///
    /// # Errors
    /// Returns an error naming the first malformed line.
    pub fn parse(text: &str) -> Result<SwfTrace, SwfParseError> {
        let mut trace = SwfTrace::default();
        for (idx, raw_line) in text.lines().enumerate() {
            match parse_swf_line(raw_line, idx + 1)? {
                SwfLine::Blank => {}
                SwfLine::Comment(c) => trace.comments.push(c),
                SwfLine::Record(r) => trace.records.push(r),
            }
        }
        Ok(trace)
    }

    /// Serialises the trace back to SWF text (comments first, then records
    /// with the 18 canonical fields; fields this struct does not model are
    /// written as `-1`).
    #[must_use]
    pub fn to_swf_string(&self) -> String {
        let mut out = String::new();
        for c in &self.comments {
            out.push_str("; ");
            out.push_str(c);
            out.push('\n');
        }
        for r in &self.records {
            out.push_str(&format!(
                "{} {} {} {} {} -1 -1 {} {} -1 {} {} {} -1 {} -1 -1 -1\n",
                r.job_number,
                r.submit_time,
                r.wait_time,
                r.run_time,
                r.allocated_processors,
                r.requested_processors,
                r.requested_time,
                r.status,
                r.user_id,
                r.group_id,
                r.queue,
            ));
        }
        out
    }

    /// Keeps only records whose submit time lies in `[start, end)` and
    /// rebases their submit times to `start`.  The paper simulates a two-day
    /// window of each trace; this is the helper that cuts that window.
    #[must_use]
    pub fn window(&self, start: f64, end: f64) -> SwfTrace {
        let records = self
            .records
            .iter()
            .filter(|r| r.submit_time >= start && r.submit_time < end)
            .map(|r| {
                let mut r = r.clone();
                r.submit_time -= start;
                r
            })
            .collect();
        SwfTrace {
            comments: self.comments.clone(),
            records,
        }
    }

    /// Converts the trace into simulator [`Job`]s for a resource with
    /// `origin` index, `origin_mips` per-processor speed and `max_processors`
    /// capacity.  Records without a usable runtime are skipped; processor
    /// requests are clamped to the resource size (archive traces occasionally
    /// contain requests larger than the partition).  `comm_fraction` is the
    /// share of runtime attributed to communication (0.10 in the paper).
    #[must_use]
    pub fn to_jobs(
        &self,
        origin: usize,
        origin_mips: f64,
        max_processors: u32,
        comm_fraction: f64,
    ) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.records.len());
        for (seq, rec) in self.records.iter().enumerate() {
            if let Some(job) = rec.to_job(seq, origin, origin_mips, max_processors, comm_fraction) {
                jobs.push(job);
            }
        }
        jobs
    }
}

/// Lazy, line-by-line SWF job source.
///
/// Reads one line at a time from any [`BufRead`] — a memory-mapped archive
/// trace, a file reader, or an in-memory string via
/// [`SwfJobStream::from_text`] — and yields the same [`Job`] sequence that
/// `SwfTrace::parse(..)` + [`SwfTrace::to_jobs`] would materialise, without
/// ever holding the parsed trace in memory.  Comments and blank lines are
/// skipped; records without a usable runtime are skipped but still consume
/// a sequence number, exactly as the eager path numbers them.
///
/// The iterator yields `Result` so malformed lines surface as
/// [`SwfParseError`]s at the line that fails; after an error (including
/// I/O errors, reported with the failing line number) the stream is fused.
#[derive(Debug)]
pub struct SwfJobStream<R> {
    reader: R,
    line: String,
    line_no: usize,
    seq: usize,
    origin: usize,
    origin_mips: f64,
    max_processors: u32,
    comm_fraction: f64,
    done: bool,
}

impl<'a> SwfJobStream<&'a [u8]> {
    /// Streams jobs out of in-memory SWF text.
    #[must_use]
    pub fn from_text(
        text: &'a str,
        origin: usize,
        origin_mips: f64,
        max_processors: u32,
        comm_fraction: f64,
    ) -> Self {
        SwfJobStream::new(text.as_bytes(), origin, origin_mips, max_processors, comm_fraction)
    }
}

impl<R: BufRead> SwfJobStream<R> {
    /// Streams jobs out of `reader`, with the same conversion parameters as
    /// [`SwfTrace::to_jobs`].
    #[must_use]
    pub fn new(
        reader: R,
        origin: usize,
        origin_mips: f64,
        max_processors: u32,
        comm_fraction: f64,
    ) -> Self {
        SwfJobStream {
            reader,
            line: String::new(),
            line_no: 0,
            seq: 0,
            origin,
            origin_mips,
            max_processors,
            comm_fraction,
            done: false,
        }
    }
}

impl<R: BufRead> Iterator for SwfJobStream<R> {
    type Item = Result<Job, SwfParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.done {
            self.line.clear();
            self.line_no += 1;
            match self.reader.read_line(&mut self.line) {
                Ok(0) => self.done = true,
                Ok(_) => match parse_swf_line(&self.line, self.line_no) {
                    Ok(SwfLine::Blank | SwfLine::Comment(_)) => {}
                    Ok(SwfLine::Record(rec)) => {
                        let seq = self.seq;
                        self.seq += 1;
                        if let Some(job) = rec.to_job(
                            seq,
                            self.origin,
                            self.origin_mips,
                            self.max_processors,
                            self.comm_fraction,
                        ) {
                            return Some(Ok(job));
                        }
                    }
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                },
                Err(e) => {
                    self.done = true;
                    return Some(Err(SwfParseError {
                        line: self.line_no,
                        message: format!("I/O error: {e}"),
                    }));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: IBM SP2
; MaxNodes: 128
1 0 10 3600 16 -1 -1 16 7200 -1 1 3 1 -1 1 -1 -1 -1
2 120 5 1800 -1 -1 -1 32 3600 -1 1 4 1 -1 1 -1 -1 -1

3 86500 0 -1 8 -1 -1 8 -1 -1 0 5 1 -1 1 -1 -1 -1
";

    #[test]
    fn parses_comments_and_records() {
        let t = SwfTrace::parse(SAMPLE).unwrap();
        assert_eq!(t.comments.len(), 3);
        assert_eq!(t.comments[2], "MaxNodes: 128");
        assert_eq!(t.records.len(), 3);
        assert_eq!(t.records[0].job_number, 1);
        assert_eq!(t.records[0].allocated_processors, 16);
        assert_eq!(t.records[1].allocated_processors, -1);
        assert_eq!(t.records[1].requested_processors, 32);
        assert_eq!(t.records[2].run_time, -1.0);
    }

    #[test]
    fn effective_fields_fall_back_sensibly() {
        let t = SwfTrace::parse(SAMPLE).unwrap();
        assert_eq!(t.records[0].effective_processors(), 16);
        assert_eq!(t.records[1].effective_processors(), 32);
        assert_eq!(t.records[0].effective_runtime(), Some(3_600.0));
        // Record 3 has run_time = -1 and requested_time = -1 → None.
        assert_eq!(t.records[2].effective_runtime(), None);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = SwfTrace::parse("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("at least 5 fields"));
        let err = SwfTrace::parse("1 x 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18\n").unwrap_err();
        assert!(err.message.contains("not a number"));
        assert!(format!("{err}").contains("line 1"));
    }

    #[test]
    fn roundtrip_preserves_essential_fields() {
        let t = SwfTrace::parse(SAMPLE).unwrap();
        let text = t.to_swf_string();
        let t2 = SwfTrace::parse(&text).unwrap();
        assert_eq!(t2.records.len(), t.records.len());
        for (a, b) in t.records.iter().zip(&t2.records) {
            assert_eq!(a.job_number, b.job_number);
            assert_eq!(a.submit_time, b.submit_time);
            assert_eq!(a.run_time, b.run_time);
            assert_eq!(a.allocated_processors, b.allocated_processors);
            assert_eq!(a.requested_processors, b.requested_processors);
            assert_eq!(a.user_id, b.user_id);
        }
    }

    #[test]
    fn window_filters_and_rebases() {
        let t = SwfTrace::parse(SAMPLE).unwrap();
        let w = t.window(100.0, 86_400.0);
        assert_eq!(w.records.len(), 1);
        assert_eq!(w.records[0].job_number, 2);
        assert_eq!(w.records[0].submit_time, 20.0);
    }

    #[test]
    fn to_jobs_clamps_and_converts() {
        let t = SwfTrace::parse(SAMPLE).unwrap();
        let jobs = t.to_jobs(3, 900.0, 16, 0.10);
        // Third record has no runtime → skipped.
        assert_eq!(jobs.len(), 2);
        let j0 = &jobs[0];
        assert_eq!(j0.id, JobId { origin: 3, seq: 0 });
        assert_eq!(j0.processors, 16);
        assert!((j0.compute_time(900.0) - 3_240.0).abs() < 1e-9); // 90 % of 3600
        assert!((j0.comm_overhead - 360.0).abs() < 1e-9);
        // Second record requested 32 processors, clamped to the 16-node machine.
        assert_eq!(jobs[1].processors, 16);
        assert_eq!(jobs[1].user.local, 4);
    }

    #[test]
    fn empty_input_is_empty_trace() {
        let t = SwfTrace::parse("").unwrap();
        assert!(t.records.is_empty());
        assert!(t.comments.is_empty());
    }

    #[test]
    fn streamed_jobs_match_materialised_jobs() {
        let eager = SwfTrace::parse(SAMPLE).unwrap().to_jobs(3, 900.0, 16, 0.10);
        let streamed: Vec<Job> = SwfJobStream::from_text(SAMPLE, 3, 900.0, 16, 0.10)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, eager);
        // The runtime-less third record was skipped but consumed seq 2, so
        // sequence numbers carry the original record positions.
        assert_eq!(streamed[0].id.seq, 0);
        assert_eq!(streamed[1].id.seq, 1);
    }

    #[test]
    fn stream_surfaces_parse_errors_and_fuses() {
        let text = "1 0 10 3600 16 -1 -1 16 7200 -1 1 3 1 -1 1 -1 -1 -1\n1 2 3\n";
        let mut stream = SwfJobStream::from_text(text, 0, 800.0, 32, 0.10);
        assert!(stream.next().unwrap().is_ok());
        let err = stream.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("at least 5 fields"));
        assert!(stream.next().is_none(), "stream must fuse after an error");
    }

    #[test]
    fn stream_accepts_any_bufread() {
        let reader = std::io::BufReader::new(SAMPLE.as_bytes());
        let jobs: Vec<Job> = SwfJobStream::new(reader, 3, 900.0, 16, 0.10)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(jobs.len(), 2);
    }

    #[test]
    fn stream_of_empty_input_is_empty() {
        assert!(SwfJobStream::from_text("", 0, 800.0, 8, 0.10).next().is_none());
    }
}
