//! Streaming job sources: constant-memory workload production.
//!
//! Million-job traces must not be materialised as `Vec<Job>` before the
//! simulation starts — a [`Job`] carries QoS estimates and identity on top
//! of its scalar parameters, so an eager vector costs an order of magnitude
//! more resident memory than the underlying trace data.  [`JobSource`] is
//! the crate-wide abstraction for *lazy* workload production: any iterator
//! of jobs qualifies, producers ([`crate::synthetic::SyntheticJobStream`],
//! [`crate::swf::SwfJobStream`]) yield jobs one at a time, and consumers
//! either drain the stream directly or opt into materialisation through the
//! single sanctioned adapter, [`JobSource::collect_jobs`].
//!
//! The `fedlint` `eager-materialise` rule flags ad-hoc
//! `.collect::<Vec<Job>>()` in simulation code precisely so that every
//! materialisation point in the workspace is spelled `collect_jobs()` and
//! can be found — and removed — when a consumer learns to stream.

use crate::job::Job;
use crate::population::UserPopulation;

/// A lazy producer of [`Job`]s.
///
/// Blanket-implemented for every `Iterator<Item = Job>`, so producers only
/// implement `Iterator` and consumers get the adapters for free.
pub trait JobSource: Iterator<Item = Job> {
    /// Materialises the remainder of the source into a vector.
    ///
    /// This is the *one* sanctioned eager-collection point for simulation
    /// code: consumers that still need random access (today's federation
    /// engine pre-sorts per-origin queues) funnel through here, which keeps
    /// the streaming migration greppable.
    #[must_use]
    fn collect_jobs(self) -> Vec<Job>
    where
        Self: Sized,
    {
        let mut jobs = Vec::with_capacity(self.size_hint().0);
        jobs.extend(self);
        jobs
    }

    /// Adapts the source so every yielded job has its user's scheduling
    /// strategy assigned from `population` (jobs of other origins pass
    /// through untouched) — the streaming equivalent of
    /// [`UserPopulation::apply`].
    fn populated(self, population: &UserPopulation) -> Populated<'_, Self>
    where
        Self: Sized,
    {
        Populated {
            source: self,
            population,
        }
    }
}

impl<I: Iterator<Item = Job>> JobSource for I {}

/// Streaming adapter returned by [`JobSource::populated`].
#[derive(Debug, Clone)]
pub struct Populated<'a, S> {
    source: S,
    population: &'a UserPopulation,
}

impl<S: Iterator<Item = Job>> Iterator for Populated<'_, S> {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        let mut job = self.source.next()?;
        self.population.assign(&mut job);
        Some(job)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.source.size_hint()
    }
}

impl<S: ExactSizeIterator<Item = Job>> ExactSizeIterator for Populated<'_, S> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, Strategy, UserId};
    use crate::population::PopulationProfile;

    fn job(origin: usize, seq: usize, local: usize) -> Job {
        Job::from_runtime(
            JobId { origin, seq },
            UserId { origin, local },
            seq as f64,
            2,
            100.0,
            800.0,
            0.10,
        )
    }

    #[test]
    fn collect_jobs_matches_plain_collect() {
        let make = || (0..10).map(|s| job(1, s, s % 3));
        assert_eq!(make().collect_jobs(), make().collect::<Vec<_>>());
        assert_eq!(make().collect_jobs().len(), 10);
    }

    #[test]
    fn populated_assigns_streamed_strategies_like_apply() {
        let population = UserPopulation::new(1, 5, PopulationProfile::new(60), 42);
        let streamed: Vec<Job> = (0..20)
            .map(|s| job(1, s, s % 5))
            .populated(&population)
            .collect_jobs();
        let mut applied: Vec<Job> = (0..20).map(|s| job(1, s, s % 5)).collect_jobs();
        population.apply(&mut applied);
        assert_eq!(streamed, applied);
        assert!(streamed.iter().any(|j| j.qos.strategy == Strategy::Oft));
    }

    #[test]
    fn populated_leaves_foreign_origins_untouched() {
        let population = UserPopulation::new(0, 5, PopulationProfile::new(100), 7);
        let jobs: Vec<Job> = (0..4).map(|s| job(3, s, 0)).populated(&population).collect_jobs();
        assert!(jobs.iter().all(|j| j.qos.strategy == Strategy::Ofc));
    }

    #[test]
    fn populated_preserves_size_hints() {
        let population = UserPopulation::new(0, 3, PopulationProfile::new(0), 1);
        let src = (0..7).map(|s| job(0, s, 0));
        let adapted = src.populated(&population);
        assert_eq!(adapted.size_hint(), (7, Some(7)));
        assert_eq!(adapted.len(), 7);
    }
}
