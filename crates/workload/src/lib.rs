//! # grid-workload — parallel workload models for the Grid-Federation reproduction
//!
//! The paper drives its simulations with two days of real traces from the
//! Parallel Workloads Archive (CTC SP2, KTH SP2, LANL CM5, LANL Origin,
//! NASA iPSC, SDSC Par96, SDSC Blue and SDSC SP2).  Those traces cannot be
//! redistributed here, so this crate provides both halves of the substitution
//! documented in `DESIGN.md`:
//!
//! 1. a full **Standard Workload Format (SWF)** parser/writer ([`swf`]), so
//!    that anyone holding the original archive files can replay them
//!    unmodified, and
//! 2. a **synthetic workload generator** ([`synthetic`]) in the spirit of the
//!    Lublin–Feitelson model (daily arrival cycle, power-of-two parallelism,
//!    heavy-tailed runtimes) that is calibrated per resource to the job
//!    counts and offered load reported in the paper's Tables 1 and 2.
//!
//! Both halves produce jobs through the streaming [`source::JobSource`]
//! abstraction: synthetic populations and SWF traces yield jobs lazily
//! ([`synthetic::SyntheticJobStream`], [`swf::SwfJobStream`]) so
//! million-job workloads never need to be materialised as `Vec<Job>`, and
//! the sanctioned [`source::JobSource::collect_jobs`] adapter marks the few
//! consumers that still collect eagerly.
//!
//! The crate also defines the [`job::Job`] type shared by every other crate
//! in the workspace, the probability distributions used by the generator
//! ([`dist`] — implemented from scratch so no extra dependencies are needed),
//! and the user population machinery that splits users into
//! *optimise-for-cost* (OFC) and *optimise-for-time* (OFT) camps
//! ([`population`]).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod job;
pub mod population;
pub mod source;
pub mod swf;
pub mod synthetic;

pub use dist::{Distribution, Exponential, Gamma, HyperExponential, LogNormal, LogUniform, Weibull};
pub use job::{Job, JobId, Qos, Strategy, UserId};
pub use population::{PopulationProfile, UserPopulation};
pub use source::{JobSource, Populated};
pub use swf::{SwfJobStream, SwfParseError, SwfRecord, SwfTrace};
pub use synthetic::{SyntheticJobStream, SyntheticWorkload, SyntheticWorkloadConfig};
