//! The job model shared by every crate in the workspace.
//!
//! A job follows the paper's notation `J_{i,j,k}`: the *i*-th job of user *j*
//! originating at resource *k*.  It carries
//!
//! * the number of processors it needs (`processors`, the paper's `p`),
//! * its total length in million instructions (`length_mi`, the paper's `l`),
//! * the communication overhead `α` expressed in seconds on the originating
//!   resource (`comm_overhead`),
//! * and, once the economy layer has fabricated them, the QoS constraints:
//!   budget `b`, deadline `d` and the user's optimisation [`Strategy`].

use std::fmt;

/// Identifies a user within the federation.  Users are local to an
/// originating resource; the pair `(origin, local index)` is globally unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId {
    /// Index of the resource the user belongs to.
    pub origin: usize,
    /// Index of the user within that resource's local population.
    pub local: usize,
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}.{}", self.origin, self.local)
    }
}

/// Identifies a job.  The pair `(origin, seq)` is globally unique; `seq` is
/// the position of the job in its origin's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId {
    /// Index of the originating resource (the paper's `k`).
    pub origin: usize,
    /// Sequence number of the job within that resource's trace.
    pub seq: usize,
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}.{}", self.origin, self.seq)
    }
}

/// The QoS optimisation strategy a federation user attaches to a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Optimise for cost: minimum possible cost within the deadline.
    Ofc,
    /// Optimise for time: minimum possible response time within the budget.
    Oft,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Ofc => write!(f, "OFC"),
            Strategy::Oft => write!(f, "OFT"),
        }
    }
}

/// QoS constraints fabricated for a job (paper Eq. 7–8) plus the user's
/// strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Qos {
    /// Maximum the user is willing to pay, in Grid Dollars (`b`).
    pub budget: f64,
    /// Maximum acceptable delay from submission, in seconds (`d`).
    pub deadline: f64,
    /// Whether the user optimises for cost or for time.
    pub strategy: Strategy,
}

impl Qos {
    /// A permissive QoS used by the non-economy experiments: effectively
    /// unbounded budget, with the given deadline.
    #[must_use]
    pub fn deadline_only(deadline: f64) -> Self {
        Qos {
            budget: f64::INFINITY,
            deadline,
            strategy: Strategy::Ofc,
        }
    }
}

/// A parallel job, in the units used throughout the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Globally unique id (`(k, i)` in the paper's notation).
    pub id: JobId,
    /// The submitting user (`j`).
    pub user: UserId,
    /// Submission time in simulation seconds (`s_{i,j,k}`).
    pub submit: f64,
    /// Number of processors required (`p_{i,j,k}`).
    pub processors: u32,
    /// Total job length in million instructions (`l_{i,j,k}`).
    pub length_mi: f64,
    /// Communication overhead `α_{i,j,k}`, in seconds (see DESIGN.md §2).
    pub comm_overhead: f64,
    /// QoS constraints; present once the economy layer has fabricated them.
    pub qos: Qos,
}

impl Job {
    /// The pure computation time of this job on a resource with per-processor
    /// speed `mips` (the `l / (µ·p)` term of Eq. 2).
    ///
    /// # Panics
    /// Panics if `mips` is not positive.
    #[must_use]
    pub fn compute_time(&self, mips: f64) -> f64 {
        assert!(mips > 0.0, "mips must be positive, got {mips}");
        self.length_mi / (mips * f64::from(self.processors))
    }

    /// Absolute completion deadline: `submit + deadline`.
    #[must_use]
    pub fn absolute_deadline(&self) -> f64 {
        self.submit + self.qos.deadline
    }

    /// Builds a job from a trace record expressed in *seconds of runtime on
    /// the originating resource* — the natural unit of both SWF traces and the
    /// synthetic generator.  `origin_mips` converts runtime to million
    /// instructions; `comm_fraction` is the share of the total execution time
    /// that is communication (the paper uses 10 %).
    ///
    /// # Panics
    /// Panics if `origin_mips <= 0`, `processors == 0`, or
    /// `comm_fraction ∉ [0, 1)`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn from_runtime(
        id: JobId,
        user: UserId,
        submit: f64,
        processors: u32,
        runtime_secs: f64,
        origin_mips: f64,
        comm_fraction: f64,
    ) -> Self {
        assert!(origin_mips > 0.0, "origin_mips must be positive");
        assert!(processors > 0, "a job needs at least one processor");
        assert!(
            (0.0..1.0).contains(&comm_fraction),
            "comm_fraction must be in [0,1), got {comm_fraction}"
        );
        // runtime = compute + comm, comm = comm_fraction * runtime
        let compute_secs = runtime_secs * (1.0 - comm_fraction);
        let comm_secs = runtime_secs * comm_fraction;
        let length_mi = compute_secs * origin_mips * f64::from(processors);
        Job {
            id,
            user,
            submit,
            processors,
            length_mi,
            comm_overhead: comm_secs,
            qos: Qos::deadline_only(f64::INFINITY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            id: JobId { origin: 1, seq: 4 },
            user: UserId { origin: 1, local: 2 },
            submit: 100.0,
            processors: 8,
            length_mi: 850.0 * 8.0 * 900.0, // 900 s of compute on an 850-MIPS cluster
            comm_overhead: 100.0,
            qos: Qos {
                budget: 50.0,
                deadline: 2_000.0,
                strategy: Strategy::Ofc,
            },
        }
    }

    #[test]
    fn compute_time_matches_eq2() {
        let j = job();
        assert!((j.compute_time(850.0) - 900.0).abs() < 1e-9);
        assert!((j.compute_time(1_700.0) - 450.0).abs() < 1e-9);
    }

    #[test]
    fn absolute_deadline() {
        assert_eq!(job().absolute_deadline(), 2_100.0);
    }

    #[test]
    fn from_runtime_splits_compute_and_comm() {
        let j = Job::from_runtime(
            JobId { origin: 0, seq: 0 },
            UserId { origin: 0, local: 0 },
            50.0,
            4,
            1_000.0, // total runtime on origin
            700.0,   // origin MIPS
            0.10,    // 10 % of runtime is communication, as in the paper
        );
        assert!((j.comm_overhead - 100.0).abs() < 1e-9);
        assert!((j.compute_time(700.0) - 900.0).abs() < 1e-9);
        // Total time on the origin is compute + comm = original runtime.
        assert!((j.compute_time(700.0) + j.comm_overhead - 1_000.0).abs() < 1e-9);
        assert_eq!(j.qos.budget, f64::INFINITY);
    }

    #[test]
    fn display_impls() {
        let j = job();
        assert_eq!(format!("{}", j.id), "j1.4");
        assert_eq!(format!("{}", j.user), "u1.2");
        assert_eq!(format!("{}", Strategy::Ofc), "OFC");
        assert_eq!(format!("{}", Strategy::Oft), "OFT");
    }

    #[test]
    fn deadline_only_qos_is_permissive() {
        let q = Qos::deadline_only(500.0);
        assert_eq!(q.deadline, 500.0);
        assert!(q.budget.is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processor_job_rejected() {
        let _ = Job::from_runtime(
            JobId { origin: 0, seq: 0 },
            UserId { origin: 0, local: 0 },
            0.0,
            0,
            10.0,
            100.0,
            0.1,
        );
    }
}
