//! Probability distributions used by the synthetic workload generator.
//!
//! Implemented from first principles (inverse-transform, Box–Muller and
//! Marsaglia–Tsang sampling) so that the workspace does not need `rand_distr`.
//! Each distribution is a small value type implementing [`Distribution`], and
//! is sampled with any [`rand::Rng`] — in practice the deterministic
//! `grid_des::SimRng` stream of the experiment.

use rand::Rng;

/// A continuous probability distribution that can be sampled and described.
pub trait Distribution {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Theoretical mean of the distribution (used by calibration code).
    fn mean(&self) -> f64;
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller transform; rejects u1 == 0 to avoid ln(0).
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Exponential distribution with a given mean (`1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Panics
    /// Panics unless `mean > 0`.
    #[must_use]
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "exponential mean must be positive, got {mean}");
        Exponential { mean }
    }
}

impl Distribution for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        -self.mean * u.ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Log-normal distribution parameterised by the underlying normal's `mu` and
/// `sigma` (i.e. `exp(N(mu, sigma²))`).
///
/// Runtimes of parallel jobs are famously close to log-normal / log-uniform,
/// which is why the synthetic generator uses this family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution from the log-space parameters.
    ///
    /// # Panics
    /// Panics if `sigma < 0`.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        LogNormal { mu, sigma }
    }

    /// Creates the distribution whose *median* is `median` and whose log-space
    /// standard deviation is `sigma`.  The median form is more intuitive when
    /// calibrating job runtimes ("a typical job runs ~900 s").
    ///
    /// # Panics
    /// Panics unless `median > 0` and `sigma >= 0`.
    #[must_use]
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive, got {median}");
        LogNormal::new(median.ln(), sigma)
    }
}

impl Distribution for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Gamma distribution with shape `k` and scale `theta` (Marsaglia–Tsang).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution.
    ///
    /// # Panics
    /// Panics unless both parameters are positive.
    #[must_use]
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
        assert!(scale > 0.0, "gamma scale must be positive, got {scale}");
        Gamma { shape, scale }
    }

    fn sample_standard<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
            let u: f64 = loop {
                let u = rng.gen::<f64>();
                if u > 0.0 {
                    break u;
                }
            };
            return Self::sample_standard(shape + 1.0, rng) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen::<f64>();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Self::sample_standard(self.shape, rng) * self.scale
    }
    fn mean(&self) -> f64 {
        self.shape * self.scale
    }
}

/// Weibull distribution with shape `k` and scale `lambda`
/// (inverse-transform sampling).  Used for inter-arrival burstiness studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    /// Panics unless both parameters are positive.
    #[must_use]
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0, "weibull shape must be positive, got {shape}");
        assert!(scale > 0.0, "weibull scale must be positive, got {scale}");
        Weibull { shape, scale }
    }
}

impl Distribution for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
    fn mean(&self) -> f64 {
        self.scale * gamma_fn(1.0 + 1.0 / self.shape)
    }
}

/// Two-phase hyper-exponential distribution: with probability `p` sample from
/// an exponential with mean `mean1`, otherwise from one with mean `mean2`.
/// Captures the "many short jobs, a few very long jobs" shape of real
/// supercomputer traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperExponential {
    p: f64,
    short: Exponential,
    long: Exponential,
}

impl HyperExponential {
    /// Creates a two-phase hyper-exponential distribution.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0,1]` and both means are positive.
    #[must_use]
    pub fn new(p: f64, mean1: f64, mean2: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        HyperExponential {
            p,
            short: Exponential::new(mean1),
            long: Exponential::new(mean2),
        }
    }
}

impl Distribution for HyperExponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.p {
            self.short.sample(rng)
        } else {
            self.long.sample(rng)
        }
    }
    fn mean(&self) -> f64 {
        self.p * self.short.mean() + (1.0 - self.p) * self.long.mean()
    }
}

/// Log-uniform distribution on `[lo, hi]`: `exp(U(ln lo, ln hi))`.
/// The classic Feitelson choice for job runtimes when only a range is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogUniform {
    lo: f64,
    hi: f64,
}

impl LogUniform {
    /// Creates a log-uniform distribution over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `0 < lo <= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi, got [{lo}, {hi}]");
        LogUniform { lo, hi }
    }
}

impl Distribution for LogUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            return self.lo;
        }
        let u: f64 = rng.gen::<f64>();
        (self.lo.ln() + u * (self.hi.ln() - self.lo.ln())).exp()
    }
    fn mean(&self) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            (self.hi - self.lo) / (self.hi.ln() - self.lo.ln())
        }
    }
}

/// Lanczos approximation of the gamma function, needed for the Weibull mean.
fn gamma_fn(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + G + 0.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    fn sample_mean<D: Distribution>(d: &D, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::new(42.0);
        let m = sample_mean(&d, 100_000);
        assert!((m - 42.0).abs() / 42.0 < 0.03, "mean {m}");
        assert_eq!(d.mean(), 42.0);
    }

    #[test]
    fn lognormal_mean_and_positivity() {
        let d = LogNormal::from_median(900.0, 1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) > 0.0);
        }
        let m = sample_mean(&d, 200_000);
        let expected = d.mean();
        assert!((m - expected).abs() / expected < 0.05, "mean {m} vs {expected}");
    }

    #[test]
    fn gamma_mean_matches() {
        for (shape, scale) in [(0.5, 2.0), (2.0, 3.0), (9.0, 0.5)] {
            let d = Gamma::new(shape, scale);
            let m = sample_mean(&d, 100_000);
            let expected = shape * scale;
            assert!(
                (m - expected).abs() / expected < 0.05,
                "shape {shape} scale {scale}: mean {m} vs {expected}"
            );
        }
    }

    #[test]
    fn weibull_mean_matches() {
        let d = Weibull::new(1.5, 100.0);
        let m = sample_mean(&d, 100_000);
        let expected = d.mean();
        assert!((m - expected).abs() / expected < 0.05, "mean {m} vs {expected}");
    }

    #[test]
    fn hyperexponential_mean_matches() {
        let d = HyperExponential::new(0.8, 10.0, 1_000.0);
        assert!((d.mean() - (0.8 * 10.0 + 0.2 * 1_000.0)).abs() < 1e-9);
        let m = sample_mean(&d, 300_000);
        assert!((m - d.mean()).abs() / d.mean() < 0.05, "mean {m}");
    }

    #[test]
    fn loguniform_bounds_and_mean() {
        let d = LogUniform::new(10.0, 10_000.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((10.0..=10_000.0).contains(&x));
        }
        let m = sample_mean(&d, 200_000);
        assert!((m - d.mean()).abs() / d.mean() < 0.05, "mean {m} vs {}", d.mean());
        let point = LogUniform::new(5.0, 5.0);
        assert_eq!(point.sample(&mut r), 5.0);
        assert_eq!(point.mean(), 5.0);
    }

    #[test]
    fn gamma_function_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-6);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_exponential_panics() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn invalid_hyperexponential_panics() {
        let _ = HyperExponential::new(1.5, 1.0, 2.0);
    }
}
