//! Synthetic parallel workload generation.
//!
//! The generator follows the spirit of the Lublin–Feitelson workload model:
//!
//! * arrivals follow a daily cycle (day-time hours are busier than night),
//! * most jobs request a power-of-two number of processors, with a
//!   configurable fraction of serial jobs,
//! * runtimes are heavy-tailed (log-normal),
//! * every job is attributed to one of a fixed set of local users.
//!
//! Crucially for the reproduction, each resource's generator is **calibrated**
//! by two scalar targets taken from the paper: the number of jobs submitted
//! over the simulated two days (Table 2/3, "Total Job") and the *offered
//! load* — the fraction of the resource's capacity the local workload would
//! occupy if it ran with no queueing losses.  The offered load determines how
//! the independent-resource experiment saturates (SDSC Blue and SDSC SP2 are
//! oversubscribed in the paper; CTC, KTH and the LANL machines are not),
//! which is the property all downstream results depend on.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::dist::{Distribution, LogNormal};
use crate::job::{Job, JobId, UserId};
use crate::source::JobSource;

/// Configuration of the synthetic workload of a single resource.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticWorkloadConfig {
    /// Index of the originating resource.
    pub origin: usize,
    /// Human-readable resource name (used in reports only).
    pub name: String,
    /// Length of the generated trace in seconds (the paper uses 2 days).
    pub duration: f64,
    /// Number of jobs to generate.
    pub total_jobs: usize,
    /// Processors of the originating resource (jobs never exceed this).
    pub max_processors: u32,
    /// Per-processor speed of the originating resource, in MIPS.
    pub origin_mips: f64,
    /// Target offered load: Σ(runtime·processors) / (capacity·duration).
    pub offered_load: f64,
    /// Fraction of jobs requesting exactly one processor.
    pub serial_fraction: f64,
    /// Among parallel jobs, fraction requesting a power-of-two size.
    pub power_of_two_fraction: f64,
    /// Log-space standard deviation of the runtime distribution.
    pub runtime_sigma: f64,
    /// Minimum job runtime in seconds (after calibration).
    pub min_runtime: f64,
    /// Maximum job runtime in seconds (after calibration).  Keeps the
    /// synthetic tail compatible with a short trace window: a two-day trace
    /// should not be dominated by week-long jobs.
    pub max_runtime: f64,
    /// Probability that a parallel job requests the whole machine.
    pub full_machine_fraction: f64,
    /// Upper bound on the share of the trace's total work a single job may
    /// carry.  Keeps the calibrated load spread over the bulk of the jobs
    /// instead of a handful of giant jobs, mirroring real archive traces.
    pub max_job_work_fraction: f64,
    /// Ratio of day-time to night-time arrival intensity (>= 1).
    pub day_night_ratio: f64,
    /// Number of distinct local users submitting the jobs.
    pub user_count: usize,
    /// Fraction of each job's execution time that is communication
    /// (0.10 in the paper).
    pub comm_fraction: f64,
    /// Seed for this resource's generator stream.
    pub seed: u64,
}

impl SyntheticWorkloadConfig {
    /// A reasonable starting configuration for a resource; callers normally
    /// override `total_jobs`, `offered_load`, `max_processors` and
    /// `origin_mips` from the paper's Table 1/2.
    #[must_use]
    pub fn new(origin: usize, name: &str) -> Self {
        SyntheticWorkloadConfig {
            origin,
            name: name.to_string(),
            duration: 2.0 * 86_400.0,
            total_jobs: 200,
            max_processors: 128,
            origin_mips: 800.0,
            offered_load: 0.6,
            serial_fraction: 0.25,
            power_of_two_fraction: 0.75,
            runtime_sigma: 0.9,
            min_runtime: 30.0,
            max_runtime: 0.25 * 2.0 * 86_400.0,
            full_machine_fraction: 0.04,
            max_job_work_fraction: 0.02,
            day_night_ratio: 3.0,
            user_count: 16,
            comm_fraction: 0.10,
            seed: 0,
        }
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    ///
    /// # Errors
    /// Returns `Err` with a human-readable message when a field is out of
    /// range.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration <= 0.0 {
            return Err(format!("duration must be positive, got {}", self.duration));
        }
        if self.total_jobs == 0 {
            return Err("total_jobs must be at least 1".into());
        }
        if self.max_processors == 0 {
            return Err("max_processors must be at least 1".into());
        }
        if self.origin_mips <= 0.0 {
            return Err(format!("origin_mips must be positive, got {}", self.origin_mips));
        }
        if self.offered_load <= 0.0 {
            return Err(format!("offered_load must be positive, got {}", self.offered_load));
        }
        if !(0.0..=1.0).contains(&self.serial_fraction) {
            return Err(format!("serial_fraction must be in [0,1], got {}", self.serial_fraction));
        }
        if !(0.0..=1.0).contains(&self.power_of_two_fraction) {
            return Err(format!(
                "power_of_two_fraction must be in [0,1], got {}",
                self.power_of_two_fraction
            ));
        }
        if !(0.0..1.0).contains(&self.comm_fraction) {
            return Err(format!("comm_fraction must be in [0,1), got {}", self.comm_fraction));
        }
        if self.day_night_ratio < 1.0 {
            return Err(format!("day_night_ratio must be >= 1, got {}", self.day_night_ratio));
        }
        if self.user_count == 0 {
            return Err("user_count must be at least 1".into());
        }
        if self.max_runtime < self.min_runtime {
            return Err(format!(
                "max_runtime ({}) must be at least min_runtime ({})",
                self.max_runtime, self.min_runtime
            ));
        }
        if !(0.0..=1.0).contains(&self.full_machine_fraction) {
            return Err(format!(
                "full_machine_fraction must be in [0,1], got {}",
                self.full_machine_fraction
            ));
        }
        if !(0.0..=1.0).contains(&self.max_job_work_fraction) || self.max_job_work_fraction == 0.0 {
            return Err(format!(
                "max_job_work_fraction must be in (0,1], got {}",
                self.max_job_work_fraction
            ));
        }
        Ok(())
    }

    /// Generates the workload described by this configuration, eagerly.
    ///
    /// Implemented on top of [`Self::stream`] so the eager and streaming
    /// paths cannot drift: `generate().into_jobs()` and `stream()` yield
    /// bitwise-identical job sequences by construction.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`Self::validate`]).
    #[must_use]
    pub fn generate(&self) -> SyntheticWorkload {
        SyntheticWorkload {
            config: self.clone(),
            jobs: self.stream().collect_jobs(),
        }
    }

    /// Returns a lazy, constant-per-job job stream for this configuration.
    ///
    /// Arrival times, processor requests and calibrated runtimes are
    /// computed up front — the global submit-time sort and the iterative
    /// load calibration are whole-trace passes, so they cannot be streamed
    /// without changing the generated bits — but they live in three plain
    /// scalar arrays.  Full [`Job`] values (identity, QoS estimates,
    /// communication split) are only assembled as the stream is consumed,
    /// which is what keeps million-job runs out of `Vec<Job>` territory.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`Self::validate`]).
    #[must_use]
    pub fn stream(&self) -> SyntheticJobStream {
        if let Err(e) = self.validate() {
            panic!("invalid synthetic workload configuration: {e}");
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ (self.origin as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // --- 1. arrival times with a diurnal cycle ---------------------------
        let mut submits: Vec<f64> = (0..self.total_jobs)
            .map(|_| self.sample_arrival(&mut rng))
            .collect();
        submits.sort_by(f64::total_cmp);

        // --- 2. processor requests ------------------------------------------
        let processors: Vec<u32> = (0..self.total_jobs)
            .map(|_| self.sample_processors(&mut rng))
            .collect();

        // --- 3. runtimes, calibrated to the offered load --------------------
        let runtime_dist = LogNormal::from_median(1_000.0, self.runtime_sigma);
        let mut runtimes: Vec<f64> = (0..self.total_jobs)
            .map(|_| runtime_dist.sample(&mut rng).max(1.0))
            .collect();
        let capacity = f64::from(self.max_processors) * self.duration;
        let target_work = self.offered_load * capacity;
        // Iterative calibration: scale runtimes towards the target offered
        // load, then clamp each runtime into [min_runtime, max_runtime] and
        // each job's work below `max_job_work_fraction` of the target.  The
        // later passes correct for the work removed (or added) by clamping.
        let max_job_work = self.max_job_work_fraction * target_work;
        for _ in 0..3 {
            let raw_work: f64 = runtimes
                .iter()
                .zip(&processors)
                .map(|(r, p)| r * f64::from(*p))
                .sum();
            if raw_work <= 0.0 {
                break;
            }
            let scale = target_work / raw_work;
            for (r, p) in runtimes.iter_mut().zip(&processors) {
                let work_cap = max_job_work / f64::from(*p);
                *r = (*r * scale)
                    .clamp(self.min_runtime, self.max_runtime)
                    .min(work_cap.max(self.min_runtime));
            }
        }

        // --- 4. users and job assembly, deferred to the iterator -------------
        SyntheticJobStream {
            origin: self.origin,
            origin_mips: self.origin_mips,
            comm_fraction: self.comm_fraction,
            user_count: self.user_count,
            submits,
            processors,
            runtimes,
            rng,
            next_seq: 0,
        }
    }

    /// Samples one arrival time in `[0, duration)` following the configured
    /// day/night intensity profile.  "Day" is 08:00–20:00 of each simulated
    /// day; segments extending past the trace duration are clipped so short
    /// traces (e.g. half a day) still get valid arrival times.
    fn sample_arrival(&self, rng: &mut StdRng) -> f64 {
        let days = (self.duration / 86_400.0).ceil() as usize;
        // Intensity (arrivals per second, relative) of day vs. night hours.
        let day_intensity = self.day_night_ratio;
        let night_intensity = 1.0;
        // Build the clipped segment list: (start, end, intensity).
        let mut segments: Vec<(f64, f64, f64)> = Vec::with_capacity(days * 3);
        for day in 0..days {
            let day_start = day as f64 * 86_400.0;
            for (s, e, intensity) in [
                (day_start, day_start + 8.0 * 3_600.0, night_intensity),
                (day_start + 8.0 * 3_600.0, day_start + 20.0 * 3_600.0, day_intensity),
                (day_start + 20.0 * 3_600.0, day_start + 24.0 * 3_600.0, night_intensity),
            ] {
                let end = e.min(self.duration);
                if end > s {
                    segments.push((s, end, intensity));
                }
            }
        }
        let total_w: f64 = segments.iter().map(|(s, e, i)| (e - s) * i).sum();
        let mut pick = rng.gen::<f64>() * total_w;
        for (start, end, intensity) in &segments {
            let weight = (end - start) * intensity;
            if pick < weight {
                let t = start + (pick / weight) * (end - start);
                return t.clamp(0.0, self.duration * (1.0 - 1e-12));
            }
            pick -= weight;
        }
        // Numerical fall-through: uniform over the whole window.
        rng.gen::<f64>() * self.duration * (1.0 - 1e-12)
    }

    /// Samples a processor request following the serial / power-of-two model.
    fn sample_processors(&self, rng: &mut StdRng) -> u32 {
        if self.max_processors == 1 || rng.gen::<f64>() < self.serial_fraction {
            return 1;
        }
        if rng.gen::<f64>() < self.full_machine_fraction {
            return self.max_processors;
        }
        // Ordinary parallel jobs span up to a quarter of the machine (the
        // bulk of archive jobs is much smaller than the machine they run on);
        // full-machine requests are covered by the dedicated fraction above.
        let max_log2 = (f64::from(self.max_processors)).log2();
        let upper = (max_log2 - 2.0).max(0.52);
        let exponent = rng.gen_range(0.5..upper);
        let size = if rng.gen::<f64>() < self.power_of_two_fraction {
            2f64.powi(exponent.round() as i32)
        } else {
            2f64.powf(exponent)
        };
        (size.round() as u32).clamp(1, self.max_processors)
    }
}

/// Lazy job stream produced by [`SyntheticWorkloadConfig::stream`].
///
/// Holds the calibrated per-job scalars (submit, processors, runtime) and
/// the positioned RNG for user attribution; each [`Job`] is assembled on
/// demand.  The sequence is bitwise-identical to the one
/// [`SyntheticWorkloadConfig::generate`] materialises.
#[derive(Debug, Clone)]
pub struct SyntheticJobStream {
    origin: usize,
    origin_mips: f64,
    comm_fraction: f64,
    user_count: usize,
    submits: Vec<f64>,
    processors: Vec<u32>,
    runtimes: Vec<f64>,
    rng: StdRng,
    next_seq: usize,
}

impl Iterator for SyntheticJobStream {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        if self.next_seq >= self.submits.len() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let user_local = self.rng.gen_range(0..self.user_count);
        Some(Job::from_runtime(
            JobId { origin: self.origin, seq },
            UserId { origin: self.origin, local: user_local },
            self.submits[seq],
            self.processors[seq],
            self.runtimes[seq],
            self.origin_mips,
            self.comm_fraction,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.submits.len() - self.next_seq;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SyntheticJobStream {}

/// A generated workload: the configuration it came from plus the jobs.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    /// The generating configuration (kept for provenance).
    pub config: SyntheticWorkloadConfig,
    /// Generated jobs, sorted by submit time.
    pub jobs: Vec<Job>,
}

impl SyntheticWorkload {
    /// The generated jobs.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Consumes the workload and returns the jobs.
    #[must_use]
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }

    /// Number of generated jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the workload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The offered load actually achieved after calibration and clamping:
    /// Σ(total runtime on origin · processors) / (capacity · duration).
    #[must_use]
    pub fn achieved_load(&self) -> f64 {
        let capacity = f64::from(self.config.max_processors) * self.config.duration;
        let work: f64 = self
            .jobs
            .iter()
            .map(|j| {
                let runtime = j.compute_time(self.config.origin_mips) + j.comm_overhead;
                runtime * f64::from(j.processors)
            })
            .sum();
        work / capacity
    }

    /// Maximum processors requested by any job (always ≤ the resource size).
    #[must_use]
    pub fn max_requested_processors(&self) -> u32 {
        self.jobs.iter().map(|j| j.processors).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SyntheticWorkloadConfig {
        let mut c = SyntheticWorkloadConfig::new(2, "TEST SP2");
        c.total_jobs = 400;
        c.max_processors = 128;
        c.origin_mips = 900.0;
        c.offered_load = 0.65;
        c.seed = 1234;
        c
    }

    #[test]
    fn generates_requested_number_of_jobs_sorted_by_submit() {
        let w = config().generate();
        assert_eq!(w.len(), 400);
        assert!(!w.is_empty());
        assert!(w
            .jobs()
            .windows(2)
            .all(|pair| pair[0].submit <= pair[1].submit));
        assert!(w.jobs().iter().all(|j| j.submit >= 0.0 && j.submit < w.config.duration));
    }

    #[test]
    fn processors_respect_bounds() {
        let w = config().generate();
        assert!(w.jobs().iter().all(|j| j.processors >= 1 && j.processors <= 128));
        assert!(w.max_requested_processors() <= 128);
        // With a 25 % serial fraction we expect a healthy number of 1-proc jobs.
        let serial = w.jobs().iter().filter(|j| j.processors == 1).count();
        assert!(serial > 40, "expected some serial jobs, got {serial}");
    }

    #[test]
    fn offered_load_is_calibrated() {
        let w = config().generate();
        let load = w.achieved_load();
        assert!(
            (load - 0.65).abs() < 0.08,
            "achieved load {load} should be close to the 0.65 target"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = config().generate();
        let b = config().generate();
        assert_eq!(a.jobs(), b.jobs());
        let mut other = config();
        other.seed = 99;
        let c = other.generate();
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn jobs_belong_to_declared_users_and_origin() {
        let w = config().generate();
        assert!(w
            .jobs()
            .iter()
            .all(|j| j.user.origin == 2 && j.user.local < w.config.user_count));
        assert!(w.jobs().iter().all(|j| j.id.origin == 2));
        // Sequence numbers are dense.
        let mut seqs: Vec<usize> = w.jobs().iter().map(|j| j.id.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn comm_overhead_is_ten_percent_of_origin_runtime() {
        let w = config().generate();
        for j in w.jobs().iter().take(50) {
            let total = j.compute_time(900.0) + j.comm_overhead;
            let frac = j.comm_overhead / total;
            assert!((frac - 0.10).abs() < 1e-9, "comm fraction {frac}");
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = config();
        c.total_jobs = 0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.offered_load = 0.0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.comm_fraction = 1.0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.day_night_ratio = 0.5;
        assert!(c.validate().is_err());
        assert!(config().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid synthetic workload configuration")]
    fn generate_panics_on_invalid_config() {
        let mut c = config();
        c.user_count = 0;
        let _ = c.generate();
    }

    #[test]
    fn stream_and_generate_are_bitwise_identical() {
        let cfg = config();
        let streamed: Vec<Job> = cfg.stream().collect();
        assert_eq!(streamed, cfg.generate().into_jobs());
    }

    #[test]
    fn stream_reports_exact_remaining_size() {
        let cfg = config();
        let mut stream = cfg.stream();
        assert_eq!(stream.len(), 400);
        assert_eq!(stream.size_hint(), (400, Some(400)));
        let _ = stream.next();
        assert_eq!(stream.len(), 399);
        assert!(stream.by_ref().count() == 399 && stream.next().is_none());
    }

    #[test]
    fn day_hours_are_busier_than_night_hours() {
        let mut c = config();
        c.total_jobs = 5_000;
        c.day_night_ratio = 4.0;
        let w = c.generate();
        let day_jobs = w
            .jobs()
            .iter()
            .filter(|j| {
                let hour = (j.submit % 86_400.0) / 3_600.0;
                (8.0..20.0).contains(&hour)
            })
            .count();
        let night_jobs = w.len() - day_jobs;
        assert!(
            day_jobs > 2 * night_jobs,
            "day {day_jobs} vs night {night_jobs}"
        );
    }
}
