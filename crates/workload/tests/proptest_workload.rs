//! Property-based tests for the workload substrate: the synthetic generator
//! and the SWF parser must produce well-formed, reproducible workloads for
//! any valid configuration, and the streaming sources must be
//! bitwise-indistinguishable from their materialising counterparts.

use grid_workload::{Job, JobSource, SwfJobStream, SwfTrace, SyntheticWorkloadConfig};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = SyntheticWorkloadConfig> {
    (
        1usize..400,           // total_jobs
        3u32..12,              // processors as a power of two
        400.0f64..1_200.0,     // mips
        0.1f64..1.6,           // offered load
        0.0f64..0.6,           // serial fraction
        0.5f64..1.5,           // runtime sigma
        1.0f64..5.0,           // day/night ratio
        1usize..40,            // user count
        any::<u64>(),          // seed
        21_600.0f64..259_200.0, // duration: 6 hours to 3 days
    )
        .prop_map(
            |(jobs, procs_pow, mips, load, serial, sigma, day_night, users, seed, duration)| {
                let mut cfg = SyntheticWorkloadConfig::new(0, "prop");
                cfg.total_jobs = jobs;
                cfg.max_processors = 1 << procs_pow;
                cfg.origin_mips = mips;
                cfg.offered_load = load;
                cfg.serial_fraction = serial;
                cfg.runtime_sigma = sigma;
                cfg.day_night_ratio = day_night;
                cfg.user_count = users;
                cfg.seed = seed;
                cfg.duration = duration;
                cfg.max_runtime = 0.3 * duration;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated workloads are well-formed: correct job count, sorted submit
    /// times inside the window, processor counts within the machine, positive
    /// lengths, users within the declared population, and the configured
    /// communication share.
    #[test]
    fn synthetic_workloads_are_well_formed(cfg in config_strategy()) {
        let workload = cfg.generate();
        prop_assert_eq!(workload.len(), cfg.total_jobs);
        let jobs = workload.jobs();
        prop_assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        for job in jobs {
            prop_assert!(job.submit >= 0.0 && job.submit < cfg.duration);
            prop_assert!(job.processors >= 1 && job.processors <= cfg.max_processors);
            prop_assert!(job.length_mi > 0.0);
            prop_assert!(job.comm_overhead >= 0.0);
            prop_assert!(job.user.local < cfg.user_count);
            prop_assert_eq!(job.id.origin, cfg.origin);
            let total = job.compute_time(cfg.origin_mips) + job.comm_overhead;
            let frac = job.comm_overhead / total;
            prop_assert!((frac - cfg.comm_fraction).abs() < 1e-6);
            prop_assert!(total <= cfg.max_runtime + 1e-6);
        }
        // Determinism.
        let again = cfg.generate();
        prop_assert_eq!(workload.jobs(), again.jobs());
    }

    /// The achieved offered load lands near the target whenever the target is
    /// achievable within the runtime caps.
    #[test]
    fn offered_load_calibration_is_reasonable(cfg in config_strategy()) {
        let workload = cfg.generate();
        let achieved = workload.achieved_load();
        prop_assert!(achieved > 0.0);
        // The calibration can fall short when the per-job caps bind (few jobs
        // on a big machine), but it must never overshoot by more than the
        // clamping slack.
        prop_assert!(achieved <= cfg.offered_load * 1.25 + 0.05,
            "achieved {} overshoots target {}", achieved, cfg.offered_load);
    }

    /// The streaming path is the eager path: for any valid configuration,
    /// draining [`SyntheticWorkloadConfig::stream`] yields exactly the job
    /// sequence `generate()` materialises, bit for bit — the identity the
    /// million-job streaming mode rests on.
    #[test]
    fn streamed_and_materialised_sequences_are_identical(cfg in config_strategy()) {
        let eager = cfg.generate().into_jobs();
        let streamed = cfg.stream().collect_jobs();
        prop_assert_eq!(&streamed, &eager);
        // The stream also reports its exact length up front.
        prop_assert_eq!(cfg.stream().len(), cfg.total_jobs);
        prop_assert_eq!(cfg.stream().size_hint(), (cfg.total_jobs, Some(cfg.total_jobs)));
    }

    /// The same identity for the SWF side: streaming a serialised trace
    /// line by line produces the jobs `parse` + `to_jobs` would, including
    /// the sequence numbers of records skipped for missing runtimes.
    #[test]
    fn swf_streaming_matches_materialised_to_jobs(cfg in config_strategy()) {
        let workload = cfg.generate();
        let records: Vec<grid_workload::SwfRecord> = workload
            .jobs()
            .iter()
            .enumerate()
            .map(|(i, j)| grid_workload::SwfRecord {
                job_number: i as i64,
                submit_time: j.submit,
                wait_time: -1.0,
                // Drop every seventh job's runtime so skipped records (and
                // their sequence numbers) are exercised too.
                run_time: if i % 7 == 3 {
                    -1.0
                } else {
                    j.compute_time(cfg.origin_mips) + j.comm_overhead
                },
                allocated_processors: i64::from(j.processors),
                requested_processors: i64::from(j.processors),
                requested_time: -1.0,
                status: 1,
                user_id: j.user.local as i64,
                group_id: -1,
                queue: 0,
            })
            .collect();
        let text = SwfTrace { comments: vec!["prop".into()], records }.to_swf_string();
        let eager = SwfTrace::parse(&text)
            .expect("roundtrip parse")
            .to_jobs(0, cfg.origin_mips, cfg.max_processors, cfg.comm_fraction);
        let streamed: Vec<Job> =
            SwfJobStream::from_text(&text, 0, cfg.origin_mips, cfg.max_processors, cfg.comm_fraction)
                .collect::<Result<_, _>>()
                .expect("streamed parse");
        prop_assert_eq!(streamed, eager);
    }

    /// SWF serialisation of a synthetic workload round-trips: parsing the
    /// written text yields the same number of jobs with the same submit
    /// times, sizes and runtimes.
    #[test]
    fn swf_roundtrip_preserves_jobs(cfg in config_strategy()) {
        let workload = cfg.generate();
        let records: Vec<grid_workload::SwfRecord> = workload
            .jobs()
            .iter()
            .enumerate()
            .map(|(i, j)| grid_workload::SwfRecord {
                job_number: i as i64,
                submit_time: j.submit,
                wait_time: -1.0,
                run_time: j.compute_time(cfg.origin_mips) + j.comm_overhead,
                allocated_processors: i64::from(j.processors),
                requested_processors: i64::from(j.processors),
                requested_time: -1.0,
                status: 1,
                user_id: j.user.local as i64,
                group_id: -1,
                queue: 0,
            })
            .collect();
        let trace = SwfTrace { comments: vec!["prop".into()], records };
        let parsed = SwfTrace::parse(&trace.to_swf_string()).expect("roundtrip parse");
        prop_assert_eq!(parsed.records.len(), workload.len());
        let jobs = parsed.to_jobs(0, cfg.origin_mips, cfg.max_processors, cfg.comm_fraction);
        prop_assert_eq!(jobs.len(), workload.len());
        for (a, b) in jobs.iter().zip(workload.jobs()) {
            prop_assert_eq!(a.processors, b.processors);
            prop_assert!((a.submit - b.submit).abs() < 1e-6);
            // Runtime is preserved through the MI conversion.
            let ra = a.compute_time(cfg.origin_mips) + a.comm_overhead;
            let rb = b.compute_time(cfg.origin_mips) + b.comm_overhead;
            prop_assert!((ra - rb).abs() < 1e-6 * rb.max(1.0));
        }
    }
}
