//! Offline API-subset shim of the [`rand`](https://crates.io/crates/rand)
//! crate, sufficient for the Grid-Federation workspace.
//!
//! Implements `RngCore` / `SeedableRng` / `Rng`, an `StdRng` built on
//! xoshiro256++ (seeded through SplitMix64), uniform range sampling for the
//! primitive types the workspace uses, and `seq::SliceRandom::shuffle`.
//!
//! The bit-streams do **not** match the real `rand` crate; every determinism
//! guarantee in this workspace is internal (same seed, same shim version →
//! same stream), which is all the simulations require.

#![deny(missing_docs)]

use core::fmt;

/// Error type mirroring `rand::Error`.
///
/// The shim's generators are infallible, so this is never constructed, but
/// the type must exist for `try_fill_bytes` signatures to match.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand shim error (infallible)")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation trait, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`]; infallible in the shim.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;
    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

mod sample {
    use super::RngCore;

    /// Types that can be drawn uniformly from their full domain
    /// (shim-internal analogue of sampling from `Standard`).
    pub trait Standard: Sized {
        /// Draws one value.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 high bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }
    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }
    impl Standard for usize {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }
    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Types with uniform sampling over a sub-range.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform draw from `[lo, hi)`.
        fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty range in gen_range");
                    let span = (hi as i128 - lo as i128) as u128;
                    lo.wrapping_add(uniform_u128(rng, span) as $t)
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                ) -> Self {
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    lo.wrapping_add(uniform_u128(rng, span) as $t)
                }
            }
        )*};
    }
    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Unbiased-enough draw in `[0, span)` via 64-bit modulo; `span` fits
    /// in 65 bits at most, and the workspace only uses small spans.
    fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span == 1 {
            return 0;
        }
        u128::from(rng.next_u64()) % span
    }

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty range in gen_range");
                    let u = <$t as Standard>::sample_standard(rng);
                    let v = lo + (hi - lo) * u;
                    // Guard against rounding landing exactly on `hi`.
                    if v >= hi { lo } else { v }
                }
                fn sample_range_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                ) -> Self {
                    assert!(lo <= hi, "empty range in gen_range");
                    let u = <$t as Standard>::sample_standard(rng);
                    lo + (hi - lo) * u
                }
            }
        )*};
    }
    impl_sample_uniform_float!(f32, f64);

    /// Range argument accepted by [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_range(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            T::sample_range_inclusive(rng, lo, hi)
        }
    }
}

pub use sample::{SampleRange, SampleUniform, Standard};

/// Convenience extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over the full domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: **xoshiro256++**.
    ///
    /// Not bit-compatible with the real `rand::rngs::StdRng` (ChaCha12);
    /// deterministic and statistically solid, which is what the workspace
    /// needs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_and_float() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = r.gen_range(3..10);
            assert!((3..10).contains(&i));
            let j = r.gen_range(5u64..=5);
            assert_eq!(j, 5);
            let f = r.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }
}
