//! Offline API-subset shim of the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Implements enough surface for the `grid-bench` harness to compile and
//! run: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling, each benchmark body is run a
//! small fixed number of iterations (configurable per group via
//! [`BenchmarkGroup::sample_size`], capped at 10 and overridable globally
//! with the `CRITERION_SHIM_ITERS` environment variable) and the mean
//! wall-clock time is printed.  Numbers are indicative, not statistical —
//! the shim exists so `cargo bench --no-run` / `cargo bench` work offline.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub use std::hint::black_box;

fn shim_iters(sample_size: usize) -> usize {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| sample_size.clamp(1, 10))
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `"name/param"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    iters: usize,
    mean_nanos: f64,
}

impl Bencher {
    /// Times `routine`, running it [`Self::iters`] times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_nanos = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("[criterion-shim] group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one("", &id.into().label, 10, f);
        self
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration budget (the shim caps this at 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into().label, self.sample_size, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = id.into().label;
        let sample_size = self.sample_size;
        run_one(&self.name, &label, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters: shim_iters(sample_size),
        mean_nanos: 0.0,
    };
    f(&mut bencher);
    let qualified = if group.is_empty() {
        label.to_owned()
    } else {
        format!("{group}/{label}")
    };
    eprintln!(
        "[criterion-shim] {qualified}: {:.3} ms/iter ({} iters)",
        bencher.mean_nanos / 1e6,
        bencher.iters,
    );
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bench_run() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(3);
            group.bench_function("count", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            group.finish();
        }
        assert!(ran >= 1);
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
