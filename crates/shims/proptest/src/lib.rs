//! Offline API-subset shim of the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Supports the subset the Grid-Federation workspace uses: the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]` header), [`Strategy`] with
//! [`Strategy::prop_map`], range and tuple strategies, [`any`],
//! [`collection::vec`], [`bool::ANY`] and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` representation (when available via the assertion message) and
//!   the case's seed, but is not minimised.
//! * `prop_assert*` macros panic instead of returning `TestCaseError`.
//! * Case generation is deterministic: case `i` of a test always sees the
//!   same inputs across runs (seeded from the case index), so failures are
//!   trivially reproducible.
//! * The default case count is **64** (CI-friendly) and can be overridden
//!   with the `PROPTEST_CASES` environment variable.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases (still capped by the
    /// `PROPTEST_CASES` environment variable if that is set lower).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: cases.min(env_cases().unwrap_or(u32::MAX)),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(64),
        }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// The random source handed to strategies; wraps the shim `StdRng`.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic generator for case number `case` of a property test.
    #[must_use]
    pub fn for_case(case: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(0xD1F7_57A7 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    fn next_u64(&mut self) -> u64 {
        use rand::RngCore as _;
        self.inner.next_u64()
    }
}

/// A generator of test-case values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

/// Strategy that always yields a clone of the given value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = if span <= 1 { 0 } else { u128::from(rng.next_u64()) % span };
                self.start.wrapping_add(draw as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = if span <= 1 { 0 } else { u128::from(rng.next_u64()) % span };
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

/// Types with a canonical "anything goes" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized values; the real crate generates specials
        // too, but the workspace's properties all assume finite inputs.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            super::Arbitrary::arbitrary(rng)
        }
    }

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Acceptable size arguments for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.lo..self.size.hi_exclusive).new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
///
/// (Deliberately does not re-export the `bool` module so the primitive type
/// is never shadowed; use the `proptest::bool::ANY` path as with the real
/// crate.)
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supports the standard form: an optional `#![proptest_config(expr)]`
/// header followed by `#[test] fn name(pat in strategy, ...) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::for_case(case);
                let ($($pat,)+) = $crate::Strategy::new_value(&strategies, &mut rng);
                let run = ::std::panic::AssertUnwindSafe(|| { $body });
                if let Err(panic) = ::std::panic::catch_unwind(run) {
                    eprintln!(
                        "proptest shim: case {}/{} of `{}` failed (re-run is deterministic)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case(0);
        for _ in 0..1_000 {
            let v = Strategy::new_value(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::new_value(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = (0u64..1_000_000, 0.0f64..1.0);
        let a: Vec<_> = (0..10)
            .map(|i| Strategy::new_value(&s, &mut crate::TestRng::for_case(i)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|i| Strategy::new_value(&s, &mut crate::TestRng::for_case(i)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_with_config_works(x in 0u32..10, v in crate::collection::vec(0i32..5, 1..8)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|e| (0..5).contains(e)));
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_works(b in crate::bool::ANY, y in any::<u64>()) {
            let mapped = (0u32..4).prop_map(|v| v * 2);
            let mut rng = crate::TestRng::for_case(y % 97);
            let m = Strategy::new_value(&mapped, &mut rng);
            prop_assert!(m % 2 == 0 && m < 8);
            prop_assert_eq!(u64::from(b) <= 1, true);
            prop_assert_ne!(Just(3).0, 4);
        }
    }
}
