//! `bench_perf` — the repo's tracked performance baseline.
//!
//! Measures the three hot paths the perf overhaul targets and emits the
//! results as `BENCH_perf.json` (the first entry in the repo's perf
//! trajectory; CI uploads a fresh smoke measurement per push):
//!
//! * **event queue**: delivered events/sec through the index-based 4-ary
//!   heap vs. the retained `BinaryHeap<Event>` layout, using the real
//!   federation message enum as payload — this measurement, not guesswork,
//!   justified the layout choice;
//! * **engine dispatch**: events/sec through `Simulation::run` end to end;
//! * **admission-control estimator**: ns/quote of the incremental
//!   availability profile vs. the retained replay oracle on a loaded
//!   128-job queue, for both LRMS policies (answers are asserted
//!   bit-identical while measuring);
//! * **directory ranking**: ns/rank of the streaming cursor (routed open
//!   vs. O(1) advance) against the query-per-rank oracle at n = 50, on all
//!   three backends (ideal, chord, and the distributed MAAN range index) —
//!   quotes are asserted identical while measuring;
//! * **workload generation**: jobs/sec of building a replicated Experiment-5
//!   federation's synthetic traces (gated by `perf_gate` alongside engine
//!   dispatch), plus the streaming path: jobs/sec of draining a million-job
//!   synthetic stream without materialising a `Vec<Job>`, with the
//!   peak-memory proxy (bytes the stream holds vs. the eager allocation);
//! * **observability overhead**: the Experiment 2 quick pair run with the
//!   span collector and handler profiler armed vs. absent, asserting the
//!   run digests are **bit-identical** (the sinks are provably inert) and
//!   recording the wall-clock delta; the armed run's per-event-type handler
//!   timings land in the JSON's `profile` section;
//! * **parallel sweep**: wall-clock of the Experiment 5 smoke sweep run
//!   sequentially vs. with `--jobs N`, asserting the rendered CSVs are
//!   **bitwise-identical** (the determinism gate CI relies on).
//!
//! Usage: `bench_perf [--smoke] [--jobs N] [--out PATH]`
//!
//! `--smoke` shrinks iteration counts for CI; `--out` defaults to
//! `BENCH_perf.json` in the working directory.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

use grid_cluster::{ClusterJob, EasyBackfilling, LocalScheduler, SpaceSharedFcfs};
use grid_des::{BinaryHeapEventQueue, Context, Entity, EntityId, Event, EventKind, EventQueue, SimTime, Simulation};
use grid_bench::populated_directory;
use grid_directory::{FederationDirectory, RankOrder};
use grid_experiments::exp5::{self, ScalabilitySweep};
use grid_experiments::exp2;
use grid_experiments::workloads::{replicated_workloads, scaled_stream_config, WorkloadOptions};
use grid_federation_core::{DirectoryBackend, FedMessage, ProfileTable, SpanCollector};
use grid_workload::{JobId, PopulationProfile};

struct Args {
    smoke: bool,
    jobs: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        jobs: 4,
        out: "BENCH_perf.json".to_string(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--jobs" => {
                args.jobs = argv
                    .next()
                    .expect("--jobs needs a worker count")
                    .parse()
                    .expect("worker count must be an integer");
            }
            "--out" => args.out = argv.next().expect("--out needs a path"),
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

/// Times `f`, returning (seconds, result).
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let result = f();
    (start.elapsed().as_secs_f64(), result)
}

/// Best-of-`reps` timing to damp scheduler noise.
fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn payload(i: usize) -> FedMessage {
    // `LocalJobFinished` is the most common event in a loaded run; the enum
    // is sized by its widest variant either way, so sift-time memmove cost
    // is representative of the real federation model.
    FedMessage::LocalJobFinished {
        job: JobId { origin: i % 8, seq: i },
    }
}

fn queue_event(i: usize, n: usize) -> Event<FedMessage> {
    Event {
        time: SimTime::new(((i * 7919) % n) as f64),
        seq: 0,
        src: EntityId::new(0),
        dst: EntityId::new(0),
        kind: EventKind::Message,
        payload: payload(i),
    }
}

/// Push/pop throughput of the index-based 4-ary heap (events/sec).
fn bench_dary_queue(n: usize) -> f64 {
    let secs = best_of(3, || {
        let mut q: EventQueue<FedMessage> = EventQueue::with_capacity(n);
        let (secs, delivered) = timed(|| {
            for i in 0..n {
                q.push(queue_event(i, n));
            }
            let mut delivered = 0usize;
            while q.pop().is_some() {
                delivered += 1;
            }
            delivered
        });
        assert_eq!(delivered, n);
        secs
    });
    n as f64 / secs
}

/// Push/pop throughput of the retained `BinaryHeap<Event>` layout.
fn bench_binary_heap_queue(n: usize) -> f64 {
    let secs = best_of(3, || {
        let mut q: BinaryHeapEventQueue<FedMessage> = BinaryHeapEventQueue::with_capacity(n);
        let (secs, delivered) = timed(|| {
            for i in 0..n {
                q.push(queue_event(i, n));
            }
            let mut delivered = 0usize;
            while q.pop().is_some() {
                delivered += 1;
            }
            delivered
        });
        assert_eq!(delivered, n);
        secs
    });
    n as f64 / secs
}

/// Self-ticking entity measuring raw engine dispatch overhead.
struct Ticker {
    remaining: u64,
}
impl Entity<u32> for Ticker {
    fn name(&self) -> &str {
        "ticker"
    }
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        ctx.timer(1.0, 0);
    }
    fn on_event(&mut self, _event: Event<u32>, ctx: &mut Context<'_, u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.timer(1.0, 0);
        }
    }
}

fn bench_dispatch(events: u64) -> f64 {
    let secs = best_of(3, || {
        let mut sim = Simulation::new(1);
        sim.add_entity(Box::new(Ticker { remaining: events }));
        let (secs, delivered) = timed(|| {
            sim.run();
            sim.stats().events_delivered
        });
        assert_eq!(delivered, events + 1);
        secs
    });
    (events + 1) as f64 / secs
}

/// Builds a scheduler with a deep queue: 4 running jobs and 128 queued ones
/// (the acceptance criterion's "loaded 128-job queue").
fn loaded<S: LocalScheduler>(mut scheduler: S) -> S {
    let mut sink = Vec::new();
    for i in 0..132usize {
        scheduler.submit_into(
            ClusterJob {
                id: JobId { origin: 0, seq: i },
                processors: 32,
                service_time: 500.0 + (i % 37) as f64 * 13.0,
            },
            0.0,
            &mut sink,
        );
    }
    assert_eq!(scheduler.queued_count(), 128, "the quote bench expects a 128-job queue");
    scheduler
}

/// (incremental ns/quote, replay ns/quote), asserting bit-identical answers.
fn bench_estimator<S: LocalScheduler>(
    scheduler: &S,
    quotes: usize,
    oracle: impl Fn(&S, u32, f64, f64) -> f64,
) -> (f64, f64) {
    let probe = |i: usize| -> (u32, f64) {
        (1 + (i % 128) as u32, 50.0 + (i % 61) as f64 * 7.0)
    };
    let mut incremental = vec![0.0f64; quotes];
    let inc_secs = best_of(3, || {
        let (secs, _) = timed(|| {
            for (i, slot) in incremental.iter_mut().enumerate() {
                let (procs, service) = probe(i);
                *slot = scheduler.estimate_completion(procs, service, 10.0);
            }
        });
        secs
    });
    // The replay oracle is orders of magnitude slower; measure fewer quotes.
    let replay_quotes = (quotes / 8).max(64).min(quotes);
    let rep_secs = best_of(2, || {
        let (secs, _) = timed(|| {
            for (i, fast) in incremental.iter().enumerate().take(replay_quotes) {
                let (procs, service) = probe(i);
                let slow = oracle(scheduler, procs, service, 10.0);
                assert_eq!(
                    slow.to_bits(),
                    fast.to_bits(),
                    "estimator diverged from the replay oracle at quote {i}"
                );
            }
        });
        secs
    });
    (
        inc_secs / quotes as f64 * 1e9,
        rep_secs / replay_quotes as f64 * 1e9,
    )
}

/// The system size the directory acceptance criterion is stated at.
const DIRECTORY_N: usize = 50;

/// Per-backend ns/rank figures of the directory ranking paths.
struct DirectoryPerf {
    /// One fresh *routed* ranked query (the query-per-rank model's rank-1
    /// lookup: route establishment + head resolution).
    fresh_query_ns: f64,
    /// Cursor open + head yield (the cursor path's routed establishment).
    open_ns: f64,
    /// One cursor advance on an open cursor (the steady-state cost the DBC
    /// loop pays per additional candidate).
    advance_ns: f64,
    /// One fresh rank-`r` query with `r ≥ 2` (the oracle's cursor-advance
    /// charge executed from scratch).
    legacy_rank_ns: f64,
}

/// One timing protocol for every directory ranking path (best-of-3,
/// `black_box`'d accumulator), generic so each call monomorphizes — no
/// dispatch overhead pollutes the ns-level loop and the four measured paths
/// can never drift onto different protocols.
fn measure_ranks<F: FnMut(usize) -> usize>(iters: usize, mut op: F) -> f64 {
    best_of(3, || {
        let (secs, acc) = timed(|| {
            let mut acc = 0usize;
            for i in 0..iters {
                acc += op(i);
            }
            acc
        });
        std::hint::black_box(acc);
        secs
    })
}

/// Measures the ranking paths of one backend at size `n`, asserting along
/// the way that the cursor resolves exactly what the oracle resolves.
fn bench_directory(backend: DirectoryBackend, n: usize, iters: usize) -> DirectoryPerf {
    let dir = populated_directory(backend, n);

    // Correctness while measuring: one full streamed sweep vs. the oracle.
    let mut check = dir.open_cursor(0, RankOrder::Cheapest);
    for r in 1..=n {
        assert_eq!(
            dir.cursor_next(&mut check).quote,
            dir.query_cheapest(0, r).quote,
            "cursor diverged from the query-per-rank oracle at rank {r}"
        );
    }

    let fresh_secs = measure_ranks(iters, |i| {
        dir.query_cheapest(i % n, 1).quote.map_or(0, |q| q.gfa)
    });
    let legacy_secs = measure_ranks(iters, |i| {
        dir.query_cheapest(i % n, 2 + (i % (n - 1))).quote.map_or(0, |q| q.gfa)
    });
    let open_secs = measure_ranks(iters, |i| {
        let mut cursor = dir.open_cursor(i % n, RankOrder::Cheapest);
        dir.cursor_next(&mut cursor).quote.map_or(0, |q| q.gfa)
    });
    // Steady-state advances: one long-lived cursor, repositioned (O(1))
    // instead of re-opened when it runs off the end, so every measured op is
    // a real in-range advance.
    let mut cursor = dir.open_cursor(0, RankOrder::Cheapest);
    let _ = dir.cursor_next(&mut cursor);
    let advance_secs = measure_ranks(iters, |_| {
        if cursor.next_rank() > n {
            cursor.seek(2);
        }
        dir.cursor_next(&mut cursor).quote.map_or(0, |q| q.gfa)
    });

    let per_op = |secs: f64| secs / iters as f64 * 1e9;
    DirectoryPerf {
        fresh_query_ns: per_op(fresh_secs),
        open_ns: per_op(open_secs),
        advance_ns: per_op(advance_secs),
        legacy_rank_ns: per_op(legacy_secs),
    }
}

fn run_sweep(
    options: &WorkloadOptions,
    sizes: &[usize],
    profiles: &[PopulationProfile],
    jobs: usize,
) -> Vec<ScalabilitySweep> {
    DirectoryBackend::ALL
        .iter()
        .map(|&backend| exp5::run_sweep_with_backend_jobs(options, sizes, profiles, backend, jobs))
        .collect()
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = parse_args();
    let (queue_events, dispatch_events, quotes, ranks) = if args.smoke {
        (20_000usize, 20_000u64, 2_000usize, 50_000usize)
    } else {
        (100_000, 200_000, 20_000, 500_000)
    };

    eprintln!("[1/7] event queue layouts ({queue_events} events, FedMessage payload)…");
    let dary_eps = bench_dary_queue(queue_events);
    let binary_eps = bench_binary_heap_queue(queue_events);

    eprintln!("[2/7] engine dispatch ({dispatch_events} timer events)…");
    let dispatch_eps = bench_dispatch(dispatch_events);

    eprintln!("[3/7] admission-control estimator ({quotes} quotes, 128-job queue)…");
    let fcfs = loaded(SpaceSharedFcfs::new(128));
    let (fcfs_inc, fcfs_rep) =
        bench_estimator(&fcfs, quotes, |s, p, t, now| s.estimate_completion_replay(p, t, now));
    let easy = loaded(EasyBackfilling::new(128));
    let (easy_inc, easy_rep) =
        bench_estimator(&easy, quotes, |s, p, t, now| s.estimate_completion_replay(p, t, now));

    eprintln!("[4/7] directory ranking ({ranks} ranks, n = {DIRECTORY_N}, all three backends)…");
    let dir_ideal = bench_directory(DirectoryBackend::Ideal, DIRECTORY_N, ranks);
    let dir_chord = bench_directory(DirectoryBackend::Chord, DIRECTORY_N, ranks);
    let dir_maan = bench_directory(DirectoryBackend::Maan, DIRECTORY_N, ranks);

    eprintln!("[5/7] workload generation (replicated exp5 federation)…");
    let workload_size = 20usize;
    let workload_profile = PopulationProfile::new(50);
    let workload_options = WorkloadOptions::quick();
    let workload_reps = if args.smoke { 2 } else { 5 };
    let mut workload_jobs = 0usize;
    let workload_secs = best_of(workload_reps, || {
        let (secs, setup) =
            timed(|| replicated_workloads(workload_size, workload_profile, &workload_options));
        workload_jobs = setup.total_jobs();
        std::hint::black_box(&setup);
        secs
    });
    let workload_jobs_per_sec = workload_jobs as f64 / workload_secs;

    // Streaming path: drain a scaled synthetic stream through a counting
    // consumer without ever materialising the `Vec<Job>`.  Peak working
    // memory is the stream's three scalar calibration arrays (20 B/job)
    // instead of `size_of::<Job>()` per job, which is what lets the
    // million-job smoke (`exp5_scalability --stream-smoke`) run flat.
    let stream_jobs = if args.smoke { 100_000usize } else { 1_000_000 };
    eprintln!("    streaming generation ({stream_jobs} jobs, no materialisation)…");
    let stream_cfg = scaled_stream_config(0, stream_jobs, &workload_options);
    let stream_secs = best_of(workload_reps, || {
        let (secs, drained) = timed(|| {
            let mut drained = 0usize;
            let mut bits = 0u64;
            for job in stream_cfg.stream() {
                bits ^= job.submit.to_bits();
                drained += 1;
            }
            std::hint::black_box(bits);
            drained
        });
        assert_eq!(drained, stream_jobs, "the stream must yield every requested job");
        secs
    });
    let stream_jobs_per_sec = stream_jobs as f64 / stream_secs;
    let stream_peak_bytes = stream_jobs * (8 + 4 + 8);
    let eager_peak_bytes = stream_jobs * std::mem::size_of::<grid_workload::Job>();

    eprintln!("[6/7] observability overhead (exp2 quick pair, sinks armed vs absent)…");
    let obs_options = WorkloadOptions::quick();
    let (unarmed_secs, unarmed) = timed(|| exp2::run(&obs_options));
    let tracer = Rc::new(RefCell::new(SpanCollector::new()));
    let profile_table = Rc::new(RefCell::new(ProfileTable::new()));
    let (armed_secs, armed) = timed(|| {
        exp2::run_with_observers(
            &obs_options,
            Some(Rc::clone(&tracer)),
            Some(Rc::clone(&profile_table)),
        )
    });
    // The inertness proof the perf gates rest on: every other section above
    // measures the sinks-absent hot paths, so those gates only stay honest
    // if arming the sinks cannot change what a run computes.
    assert_eq!(
        armed.federated.digest, unarmed.federated.digest,
        "OBSERVABILITY PERTURBATION: armed federated run digest differs from unarmed"
    );
    assert_eq!(
        armed.independent.digest, unarmed.independent.digest,
        "OBSERVABILITY PERTURBATION: the unarmed control run digests diverged"
    );
    let span_count = tracer.borrow().len();
    let profile = profile_table.borrow();
    let profiled_events = profile.total_events();
    let obs_overhead = armed_secs / unarmed_secs - 1.0;

    eprintln!("[7/7] exp5 smoke sweep: sequential vs --jobs {}…", args.jobs);
    let options = WorkloadOptions::quick();
    // Full mode uses a 3×3 grid so the pool has enough comparable points to
    // show its scaling; smoke keeps the CI-sized 2×1 grid.
    let (sizes, profiles): (&[usize], Vec<PopulationProfile>) = if args.smoke {
        (&[8, 16], vec![PopulationProfile::new(50)])
    } else {
        (
            &[10, 20, 30],
            [0u32, 50, 100].iter().map(|&p| PopulationProfile::new(p)).collect(),
        )
    };
    let (seq_secs, seq_sweeps) = timed(|| run_sweep(&options, sizes, &profiles, 1));
    let (par_secs, par_sweeps) = timed(|| run_sweep(&options, sizes, &profiles, args.jobs));
    // Same canonical CSV set the parallel_determinism regression test uses.
    let seq_csvs = exp5::render_all_csvs(&seq_sweeps);
    let par_csvs = exp5::render_all_csvs(&par_sweeps);
    assert_eq!(
        seq_csvs, par_csvs,
        "DETERMINISM VIOLATION: parallel sweep CSVs differ from sequential output"
    );

    let fcfs_speedup = fcfs_rep / fcfs_inc;
    let easy_speedup = easy_rep / easy_inc;
    let sweep_speedup = seq_secs / par_secs;
    eprintln!(
        "event queue: 4-ary index heap {:.0} ev/s vs BinaryHeap {:.0} ev/s ({:.2}x)",
        dary_eps,
        binary_eps,
        dary_eps / binary_eps
    );
    eprintln!("dispatch: {dispatch_eps:.0} ev/s");
    eprintln!(
        "estimator: FCFS {fcfs_inc:.0} ns/quote vs replay {fcfs_rep:.0} ns/quote ({fcfs_speedup:.1}x); \
         EASY {easy_inc:.0} ns/quote vs replay {easy_rep:.0} ns/quote ({easy_speedup:.1}x)"
    );
    for (label, perf) in [("ideal", &dir_ideal), ("chord", &dir_chord), ("maan", &dir_maan)] {
        eprintln!(
            "directory[{label}]: fresh routed query {:.1} ns vs cursor open {:.1} ns, \
             advance {:.1} ns ({:.1}x cheaper than a fresh query), legacy rank-r {:.1} ns",
            perf.fresh_query_ns,
            perf.open_ns,
            perf.advance_ns,
            perf.fresh_query_ns / perf.advance_ns,
            perf.legacy_rank_ns,
        );
    }
    eprintln!(
        "workload generation: {workload_jobs} jobs (n = {workload_size}) in {workload_secs:.3}s \
         = {workload_jobs_per_sec:.0} jobs/s"
    );
    eprintln!(
        "workload streaming: {stream_jobs} jobs in {stream_secs:.3}s = {stream_jobs_per_sec:.0} jobs/s, \
         peak {stream_peak_bytes} B streamed vs {eager_peak_bytes} B eager ({:.2}x)",
        eager_peak_bytes as f64 / stream_peak_bytes as f64
    );
    eprintln!(
        "observability: armed {armed_secs:.3}s vs unarmed {unarmed_secs:.3}s ({:+.1}%), \
         digests bit-identical, {span_count} spans, {profiled_events} profiled events",
        obs_overhead * 100.0
    );
    eprintln!(
        "sweep: sequential {seq_secs:.2}s vs --jobs {} {par_secs:.2}s ({sweep_speedup:.2}x), CSVs bitwise-identical",
        args.jobs
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": 1,");
    let _ = writeln!(json, "  \"smoke\": {},", args.smoke);
    let _ = writeln!(json, "  \"event_queue\": {{");
    let _ = writeln!(json, "    \"payload\": \"FedMessage\",");
    let _ = writeln!(json, "    \"events\": {queue_events},");
    let _ = writeln!(json, "    \"dary_index_heap_events_per_sec\": {},", json_num(dary_eps));
    let _ = writeln!(json, "    \"binary_heap_events_per_sec\": {},", json_num(binary_eps));
    let _ = writeln!(json, "    \"dary_vs_binary_speedup\": {}", json_num(dary_eps / binary_eps));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"dispatch\": {{");
    let _ = writeln!(json, "    \"events\": {dispatch_events},");
    let _ = writeln!(json, "    \"events_per_sec\": {}", json_num(dispatch_eps));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"estimator\": {{");
    let _ = writeln!(json, "    \"queue_depth\": 128,");
    let _ = writeln!(json, "    \"quotes\": {quotes},");
    let _ = writeln!(json, "    \"fcfs_incremental_ns_per_quote\": {},", json_num(fcfs_inc));
    let _ = writeln!(json, "    \"fcfs_replay_ns_per_quote\": {},", json_num(fcfs_rep));
    let _ = writeln!(json, "    \"fcfs_speedup\": {},", json_num(fcfs_speedup));
    let _ = writeln!(json, "    \"easy_incremental_ns_per_quote\": {},", json_num(easy_inc));
    let _ = writeln!(json, "    \"easy_replay_ns_per_quote\": {},", json_num(easy_rep));
    let _ = writeln!(json, "    \"easy_speedup\": {}", json_num(easy_speedup));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"directory\": {{");
    let _ = writeln!(json, "    \"n\": {DIRECTORY_N},");
    let _ = writeln!(json, "    \"ranks\": {ranks},");
    let backends = [("ideal", &dir_ideal), ("chord", &dir_chord), ("maan", &dir_maan)];
    for (i, (label, perf)) in backends.iter().enumerate() {
        let _ = writeln!(json, "    \"{label}\": {{");
        let _ = writeln!(json, "      \"fresh_query_ns\": {},", json_num(perf.fresh_query_ns));
        let _ = writeln!(json, "      \"open_ns\": {},", json_num(perf.open_ns));
        let _ = writeln!(json, "      \"advance_ns\": {},", json_num(perf.advance_ns));
        let _ = writeln!(json, "      \"legacy_rank_ns\": {},", json_num(perf.legacy_rank_ns));
        let _ = writeln!(
            json,
            "      \"fresh_vs_advance_speedup\": {}",
            json_num(perf.fresh_query_ns / perf.advance_ns)
        );
        let _ = writeln!(json, "    }}{}", if i + 1 < backends.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"workload\": {{");
    let _ = writeln!(json, "    \"federation_size\": {workload_size},");
    let _ = writeln!(json, "    \"jobs\": {workload_jobs},");
    let _ = writeln!(json, "    \"jobs_per_sec\": {},", json_num(workload_jobs_per_sec));
    let _ = writeln!(json, "    \"stream_jobs\": {stream_jobs},");
    let _ = writeln!(json, "    \"stream_jobs_per_sec\": {},", json_num(stream_jobs_per_sec));
    let _ = writeln!(json, "    \"stream_peak_bytes\": {stream_peak_bytes},");
    let _ = writeln!(json, "    \"eager_peak_bytes\": {eager_peak_bytes}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"observability\": {{");
    let _ = writeln!(json, "    \"armed_secs\": {},", json_num(armed_secs));
    let _ = writeln!(json, "    \"unarmed_secs\": {},", json_num(unarmed_secs));
    // Wall-clock noise dominates this figure on small runs; it is tracked,
    // not gated — the gated guarantee is the digest assertion above plus
    // the sinks-absent hot-path gates.
    let _ = writeln!(json, "    \"overhead_frac\": {},", json_num(obs_overhead));
    let _ = writeln!(json, "    \"spans\": {span_count},");
    let _ = writeln!(json, "    \"profiled_events\": {profiled_events},");
    let _ = writeln!(json, "    \"digests_identical\": true");
    let _ = writeln!(json, "  }},");
    // The armed run's per-event-type handler timings, indented to sit as a
    // nested object.
    let profile_json: String = profile
        .to_json()
        .lines()
        .enumerate()
        .map(|(i, line)| if i == 0 { line.to_string() } else { format!("  {line}") })
        .collect::<Vec<_>>()
        .join("\n");
    let _ = writeln!(json, "  \"profile\": {profile_json},");
    let _ = writeln!(json, "  \"sweep\": {{");
    // Context for the speedup figure: on a single-core host the parallel
    // sweep cannot beat the sequential one, only match it.
    let _ = writeln!(
        json,
        "    \"host_parallelism\": {},",
        grid_experiments::parallel::default_jobs()
    );
    let _ = writeln!(json, "    \"sizes\": {sizes:?},");
    let backend_labels: Vec<String> = seq_sweeps
        .iter()
        .map(|s| format!("\"{}\"", s.backend.label()))
        .collect();
    let _ = writeln!(json, "    \"backends\": [{}],", backend_labels.join(", "));
    let _ = writeln!(json, "    \"sequential_secs\": {},", json_num(seq_secs));
    let _ = writeln!(json, "    \"parallel_secs\": {},", json_num(par_secs));
    let _ = writeln!(json, "    \"jobs\": {},", args.jobs);
    let _ = writeln!(json, "    \"speedup\": {},", json_num(sweep_speedup));
    let _ = writeln!(json, "    \"csvs_bitwise_identical\": true");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&args.out, json).expect("failed to write the benchmark JSON");
    eprintln!("wrote {}", args.out);
}
