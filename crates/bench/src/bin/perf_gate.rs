//! `perf_gate` — the CI perf-regression gate.
//!
//! Compares a freshly generated `BENCH_perf.json` against the committed
//! baseline and fails (exit code 1) when a gated metric regressed beyond
//! the tolerance band:
//!
//! * **estimator ns/quote** (`fcfs_incremental_ns_per_quote`,
//!   `easy_incremental_ns_per_quote`) — lower is better;
//! * **event-queue events/s** (`dary_index_heap_events_per_sec`) — higher
//!   is better;
//! * **directory cursor-advance ns/rank** (`advance_ns`, all three
//!   backends including the distributed MAAN range index) — lower is
//!   better, gated so the cursor path cannot silently decay back into
//!   query-per-rank costs;
//! * **engine dispatch events/s** (`dispatch.events_per_sec`) — higher is
//!   better;
//! * **workload generation jobs/s** (`workload.jobs_per_sec`) — higher is
//!   better, promoted from informational to gated once the streaming
//!   refactor landed so eager-materialisation regressions in the
//!   generation path fail CI instead of only moving a tracked number;
//! * **workload streaming jobs/s** (`workload.stream_jobs_per_sec`) —
//!   higher is better, promoted alongside the observability layer: the
//!   lazy stream is the path million-job runs drain through, so a decay
//!   back toward eager-materialisation throughput fails CI.
//!
//! The gated figures are *absolute* per-op numbers, so the comparison is
//! only meaningful when baseline and current ran on comparable hardware.
//! On a single-machine setup (this repo's committed baseline) the 30 %
//! band is a real signal; on a heterogeneous CI fleet, either regenerate
//! the baseline on the runner class that executes the gate or widen
//! `--tolerance` — a hard failure on a slower host is the gate working as
//! configured, not a bug in the gate.  Host-independent ratios the JSON
//! also carries (`fcfs_speedup`, `dary_vs_binary_speedup`,
//! `fresh_vs_advance_speedup`) are deliberately *not* gated: they stay
//! stable when both sides of a ratio regress together, which is exactly
//! the failure the absolute gates exist to catch.
//!
//! Usage: `perf_gate [--baseline PATH] [--current PATH] [--tolerance 0.30]`

use std::process::ExitCode;

struct Args {
    baseline: String,
    current: String,
    tolerance: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: "BENCH_perf.json".to_string(),
        current: "BENCH_perf.ci.json".to_string(),
        tolerance: 0.30,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--baseline" => args.baseline = argv.next().expect("--baseline needs a path"),
            "--current" => args.current = argv.next().expect("--current needs a path"),
            "--tolerance" => {
                args.tolerance = argv
                    .next()
                    .expect("--tolerance needs a fraction")
                    .parse()
                    .expect("tolerance must be a number like 0.30");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

/// Extracts the number following `"key":` in `json`.  `key` must be unique
/// as a quoted key in the document (the flat names emitted by `bench_perf`
/// are); nested duplicates (like `advance_ns` per backend) are addressed by
/// scoping the search to the **braced object value** of an `anchor` key —
/// the anchor must be a key whose value is an object (`"anchor": { … }`),
/// and only that object's balanced-brace extent is searched, so document
/// ordering and stray mentions of the anchor string elsewhere cannot
/// redirect the lookup.
fn extract(json: &str, anchor: Option<&str>, key: &str) -> Option<f64> {
    let hay = match anchor {
        Some(a) => anchored_object(json, a)?,
        None => json,
    };
    let needle = format!("\"{key}\":");
    let at = hay.find(&needle)? + needle.len();
    let rest = hay[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The balanced-brace object value of `"anchor": { … }`, or `None` when the
/// anchor is absent or not followed by an object.
fn anchored_object<'a>(json: &'a str, anchor: &str) -> Option<&'a str> {
    let needle = format!("\"{anchor}\":");
    let after = &json[json.find(&needle)? + needle.len()..];
    let open = after.find(|c: char| !c.is_whitespace())?;
    if after.as_bytes()[open] != b'{' {
        return None;
    }
    let mut depth = 0usize;
    for (i, b) in after.bytes().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&after[open..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Lower is better (latencies): regression = current > baseline.
    LowerIsBetter,
    /// Higher is better (throughputs): regression = current < baseline.
    HigherIsBetter,
}

/// A gated metric's verdict: the regression fraction (positive = worse than
/// baseline), or `None` when either side is missing from its JSON.
fn regression(baseline: f64, current: f64, direction: Direction) -> f64 {
    match direction {
        Direction::LowerIsBetter => current / baseline - 1.0,
        Direction::HigherIsBetter => baseline / current - 1.0,
    }
}

struct Gate {
    label: &'static str,
    anchor: Option<&'static str>,
    key: &'static str,
    direction: Direction,
}

const GATES: [Gate; 9] = [
    Gate {
        label: "event queue (4-ary heap events/s)",
        anchor: None,
        key: "dary_index_heap_events_per_sec",
        direction: Direction::HigherIsBetter,
    },
    Gate {
        label: "estimator FCFS (ns/quote)",
        anchor: None,
        key: "fcfs_incremental_ns_per_quote",
        direction: Direction::LowerIsBetter,
    },
    Gate {
        label: "estimator EASY (ns/quote)",
        anchor: None,
        key: "easy_incremental_ns_per_quote",
        direction: Direction::LowerIsBetter,
    },
    Gate {
        label: "directory ideal cursor advance (ns/rank)",
        anchor: Some("ideal"),
        key: "advance_ns",
        direction: Direction::LowerIsBetter,
    },
    Gate {
        label: "directory chord cursor advance (ns/rank)",
        anchor: Some("chord"),
        key: "advance_ns",
        direction: Direction::LowerIsBetter,
    },
    Gate {
        label: "directory maan cursor advance (ns/rank)",
        anchor: Some("maan"),
        key: "advance_ns",
        direction: Direction::LowerIsBetter,
    },
    Gate {
        label: "engine dispatch (events/s)",
        anchor: Some("dispatch"),
        key: "events_per_sec",
        direction: Direction::HigherIsBetter,
    },
    Gate {
        label: "workload generation (jobs/s)",
        anchor: Some("workload"),
        key: "jobs_per_sec",
        direction: Direction::HigherIsBetter,
    },
    Gate {
        label: "workload streaming (stream jobs/s)",
        anchor: Some("workload"),
        key: "stream_jobs_per_sec",
        direction: Direction::HigherIsBetter,
    },
];

/// Runs every gate; returns the failing labels.
fn run_gates(baseline_json: &str, current_json: &str, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for gate in &GATES {
        let base = extract(baseline_json, gate.anchor, gate.key);
        let cur = extract(current_json, gate.anchor, gate.key);
        let (Some(base), Some(cur)) = (base, cur) else {
            // A missing metric means the baseline predates it (or the run
            // was truncated): fail loudly rather than silently skipping.
            failures.push(format!("{}: metric missing (baseline {base:?}, current {cur:?})", gate.label));
            continue;
        };
        let reg = regression(base, cur, gate.direction);
        let verdict = if reg > tolerance { "FAIL" } else { "ok" };
        println!(
            "[{verdict}] {label}: baseline {base:.2}, current {cur:.2} ({delta:+.1}% vs tolerance +{tol:.0}%)",
            label = gate.label,
            delta = reg * 100.0,
            tol = tolerance * 100.0,
        );
        if reg > tolerance {
            failures.push(gate.label.to_string());
        }
    }
    failures
}

fn main() -> ExitCode {
    let args = parse_args();
    let baseline_json = std::fs::read_to_string(&args.baseline)
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", args.baseline));
    let current_json = std::fs::read_to_string(&args.current)
        .unwrap_or_else(|e| panic!("cannot read current {}: {e}", args.current));
    println!(
        "perf gate: {} vs {} (tolerance {:.0}%)",
        args.baseline,
        args.current,
        args.tolerance * 100.0
    );
    let failures = run_gates(&baseline_json, &current_json, args.tolerance);
    if failures.is_empty() {
        println!("perf gate passed: no gated metric regressed beyond the tolerance band");
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate FAILED: {}", failures.join("; "));
        // The gate compares absolute per-op numbers, so a failure on a host
        // that differs from the baseline host may be the cross-host caveat
        // (see the module docs), not a code regression.  Print the exact
        // command that rebuilds the baseline *here*, so the fix is
        // copy-pasteable.
        eprintln!(
            "if this host is not comparable to the baseline host, regenerate the baseline on it:"
        );
        eprintln!(
            "    cargo run --release --bin bench_perf -- --out {}",
            args.baseline
        );
        eprintln!("then commit the refreshed {} with the change that moved the numbers", args.baseline);
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "event_queue": { "dary_index_heap_events_per_sec": 2000000.00 },
  "estimator": {
    "fcfs_incremental_ns_per_quote": 8.00,
    "easy_incremental_ns_per_quote": 9.00
  },
  "directory": {
    "ideal": { "advance_ns": 2.00, "fresh_query_ns": 14.00 },
    "chord": { "advance_ns": 2.50, "fresh_query_ns": 60.00 },
    "maan": { "advance_ns": 3.00, "fresh_query_ns": 70.00 }
  },
  "dispatch": { "events": 200000, "events_per_sec": 30000000.00 },
  "workload": {
    "jobs": 6655,
    "jobs_per_sec": 6000000.00,
    "stream_jobs_per_sec": 4500000.00
  }
}"#;

    fn tweaked(key_value: &str, replacement: &str) -> String {
        SAMPLE.replace(key_value, replacement)
    }

    #[test]
    fn extract_reads_flat_and_anchored_keys() {
        assert_eq!(extract(SAMPLE, None, "fcfs_incremental_ns_per_quote"), Some(8.0));
        assert_eq!(extract(SAMPLE, None, "dary_index_heap_events_per_sec"), Some(2_000_000.0));
        // Anchored: the two advance_ns figures are distinguished by backend.
        assert_eq!(extract(SAMPLE, Some("ideal"), "advance_ns"), Some(2.0));
        assert_eq!(extract(SAMPLE, Some("chord"), "advance_ns"), Some(2.5));
        assert_eq!(extract(SAMPLE, None, "no_such_key"), None);
        assert_eq!(extract(SAMPLE, Some("no_such_anchor"), "advance_ns"), None);
    }

    #[test]
    fn anchored_extraction_is_scoped_to_the_object_not_document_order() {
        // A stray mention of the anchor string *before* the real section
        // (like exp5's `"backends": ["ideal", "chord"]` list) must not
        // redirect the lookup: a non-object anchor value yields None rather
        // than silently reading a later section's key, and the real
        // anchored object is found wherever it sits in the document.
        let reordered = r#"{
  "sweep": { "backends": "chord-and-ideal", "advance_ns": 999.0 },
  "directory": {
    "chord": { "advance_ns": 2.50 },
    "ideal": { "advance_ns": 2.00 }
  }
}"#;
        assert_eq!(extract(reordered, Some("chord"), "advance_ns"), Some(2.5));
        assert_eq!(extract(reordered, Some("ideal"), "advance_ns"), Some(2.0));
        // An anchor whose value is not an object never falls through to an
        // unrelated section's numbers.
        let string_anchor = r#"{ "note": { "chord": "see below" }, "chord": 7 }"#;
        assert_eq!(extract(string_anchor, Some("chord"), "advance_ns"), None);
        // The anchored scope *ends* at the object's closing brace.
        let scoped = r#"{ "ideal": { "open_ns": 1.0 }, "advance_ns": 5.0 }"#;
        assert_eq!(extract(scoped, Some("ideal"), "advance_ns"), None);
    }

    #[test]
    fn regression_direction_math() {
        // Latency up 50% = 0.5 regression; throughput down to half = 1.0.
        assert!((regression(10.0, 15.0, Direction::LowerIsBetter) - 0.5).abs() < 1e-12);
        assert!((regression(10.0, 5.0, Direction::HigherIsBetter) - 1.0).abs() < 1e-12);
        // Improvements are negative.
        assert!(regression(10.0, 8.0, Direction::LowerIsBetter) < 0.0);
        assert!(regression(10.0, 12.0, Direction::HigherIsBetter) < 0.0);
    }

    #[test]
    fn identical_runs_pass() {
        assert!(run_gates(SAMPLE, SAMPLE, 0.30).is_empty());
    }

    #[test]
    fn small_wobble_within_tolerance_passes() {
        let current = tweaked("\"fcfs_incremental_ns_per_quote\": 8.00", "\"fcfs_incremental_ns_per_quote\": 9.50");
        assert!(run_gates(SAMPLE, &current, 0.30).is_empty());
    }

    #[test]
    fn estimator_regression_beyond_tolerance_fails() {
        let current = tweaked("\"fcfs_incremental_ns_per_quote\": 8.00", "\"fcfs_incremental_ns_per_quote\": 12.00");
        let failures = run_gates(SAMPLE, &current, 0.30);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("FCFS"));
    }

    #[test]
    fn event_queue_throughput_drop_fails() {
        let current = tweaked(
            "\"dary_index_heap_events_per_sec\": 2000000.00",
            "\"dary_index_heap_events_per_sec\": 1200000.00",
        );
        let failures = run_gates(SAMPLE, &current, 0.30);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("event queue"));
    }

    #[test]
    fn directory_advance_regression_fails_per_backend() {
        let current = tweaked("\"chord\": { \"advance_ns\": 2.50", "\"chord\": { \"advance_ns\": 9.00");
        let failures = run_gates(SAMPLE, &current, 0.30);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("chord"));
    }

    #[test]
    fn workload_throughput_drop_fails() {
        // Gated via the "workload" anchor; the sibling stream_jobs_per_sec
        // key (whose name *contains* jobs_per_sec) must not shadow it.
        let current = tweaked("\"jobs_per_sec\": 6000000.00", "\"jobs_per_sec\": 3000000.00");
        let failures = run_gates(SAMPLE, &current, 0.30);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("workload generation"));
    }

    #[test]
    fn stream_throughput_drop_fails() {
        let current = tweaked(
            "\"stream_jobs_per_sec\": 4500000.00",
            "\"stream_jobs_per_sec\": 2000000.00",
        );
        let failures = run_gates(SAMPLE, &current, 0.30);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("streaming"));
    }

    #[test]
    fn dispatch_throughput_drop_fails() {
        let current = tweaked("\"events_per_sec\": 30000000.00", "\"events_per_sec\": 15000000.00");
        let failures = run_gates(SAMPLE, &current, 0.30);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("dispatch"));
    }

    #[test]
    fn missing_metric_fails_loudly() {
        let current = SAMPLE.replace("\"easy_incremental_ns_per_quote\": 9.00", "\"other\": 9.00");
        // The stray comma-less replacement still parses for the remaining
        // keys; only the missing one must fail.
        let failures = run_gates(SAMPLE, &current, 0.30);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }

    #[test]
    fn real_bench_perf_output_satisfies_the_gate_against_itself() {
        // The committed baseline must gate cleanly against itself — this
        // also pins the key names used by GATES to the ones `bench_perf`
        // actually emits (a rename would surface here as "metric missing").
        let committed = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_perf.json"),
        )
        .expect("committed BENCH_perf.json must exist at the workspace root");
        assert!(run_gates(&committed, &committed, 0.0).is_empty());
    }
}
