//! # grid-bench — shared helpers for the Criterion benchmark harness
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `paper_tables` — regenerates Table 2 and Table 3 (Experiments 1–2),
//! * `paper_figures` — regenerates the Experiment 3/4 figures (Fig. 3–9),
//! * `scalability` — regenerates the Experiment 5 figures (Fig. 10–11),
//! * `ablations` — design-choice ablations called out in DESIGN.md
//!   (LRMS policy, directory implementation, charging policy, baseline
//!   superschedulers),
//! * `micro` — microbenchmarks of the substrates (event queue, LRMS,
//!   directory, workload generator).
//!
//! Benchmarks use the reduced [`bench_options`] workload so a full
//! `cargo bench` pass stays in the minutes range; the experiment binaries in
//! `grid-experiments` regenerate the full-scale numbers.

use grid_directory::{AnyDirectory, DirectoryBackend, FederationDirectory, Quote};
use grid_experiments::workloads::WorkloadOptions;

/// Workload options used by the benchmark harness: a quarter of the paper's
/// job counts over half a simulated day (same as `WorkloadOptions::quick`).
#[must_use]
pub fn bench_options() -> WorkloadOptions {
    WorkloadOptions::quick()
}

/// The directory population both `bench_perf`'s tracked `directory` section
/// and the `micro` bench group measure: `n` distinct-priced, distinct-speed
/// quotes on a fixed seed.  Shared so the per-commit smoke view and the
/// tracked baseline can never drift onto different workloads.
#[must_use]
pub fn populated_directory(backend: DirectoryBackend, n: usize) -> AnyDirectory {
    let mut dir = backend.build(n, 0xD1CE);
    for gfa in 0..n {
        let _ = dir.subscribe(Quote {
            gfa,
            processors: 128,
            mips: 400.0 + 9.0 * ((gfa * 13) % n) as f64,
            bandwidth: 1.0 + (gfa % 4) as f64,
            price: 1.0 + 0.07 * ((gfa * 7) % n) as f64,
        });
    }
    dir
}

/// An even smaller configuration for the per-iteration benches that run many
/// times inside Criterion's measurement loop.
#[must_use]
pub fn tiny_options() -> WorkloadOptions {
    WorkloadOptions {
        duration: 21_600.0,
        job_scale: 0.1,
        ..WorkloadOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_are_reduced() {
        assert!(bench_options().job_scale < 1.0);
        assert!(tiny_options().job_scale < bench_options().job_scale);
        assert!(tiny_options().duration < bench_options().duration);
    }

    #[test]
    fn bench_directory_population_is_full_and_distinct() {
        for backend in DirectoryBackend::ALL {
            let dir = populated_directory(backend, 50);
            assert_eq!(dir.len(), 50);
            // Distinct prices and speeds, so every rank is unambiguous.
            let cheapest = dir.kth_cheapest(1).unwrap();
            let second = dir.kth_cheapest(2).unwrap();
            assert!(cheapest.price < second.price);
        }
    }
}
