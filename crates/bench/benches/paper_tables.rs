//! Benchmarks regenerating the paper's tables (Experiments 1 and 2).
//!
//! Each benchmark runs the corresponding experiment end to end on the reduced
//! workload and reports the wall-clock cost of regenerating the table; the
//! printed summaries double as a smoke check that the tables still have the
//! expected shape.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use grid_bench::bench_options;
use grid_experiments::{exp1, exp2};

fn table2_independent(c: &mut Criterion) {
    let options = bench_options();
    let mut group = c.benchmark_group("table2_independent");
    group.sample_size(10);
    group.bench_function("experiment1_run_and_render", |b| {
        b.iter(|| {
            let result = exp1::run(black_box(&options));
            let table = exp1::table2(&result);
            assert_eq!(table.len(), 8);
            black_box(table.to_csv())
        })
    });
    group.finish();
}

fn table3_federation(c: &mut Criterion) {
    let options = bench_options();
    let mut group = c.benchmark_group("table3_federation");
    group.sample_size(10);
    group.bench_function("experiment2_run_and_render", |b| {
        b.iter(|| {
            let result = exp2::run(black_box(&options));
            let table = exp2::table3(&result);
            assert_eq!(table.len(), 8);
            black_box(table.to_csv())
        })
    });
    group.finish();
}

fn fig2_utilization_and_migration(c: &mut Criterion) {
    let options = bench_options();
    // Run the experiment once and benchmark the figure extraction separately
    // from the simulation (the extraction is what a plotting notebook calls
    // repeatedly).
    let result = exp2::run(&options);
    let mut group = c.benchmark_group("fig2_utilization");
    group.bench_function("figure2a_render", |b| {
        b.iter(|| black_box(exp2::figure2a(black_box(&result)).to_csv()))
    });
    group.bench_function("figure2b_render", |b| {
        b.iter(|| black_box(exp2::figure2b(black_box(&result)).to_csv()))
    });
    group.finish();
}

criterion_group!(benches, table2_independent, table3_federation, fig2_utilization_and_migration);
criterion_main!(benches);
