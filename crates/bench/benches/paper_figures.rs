//! Benchmarks regenerating the Experiment 3/4 figures (Fig. 3–9): the
//! economy-driven federation swept over population profiles.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use grid_bench::{bench_options, tiny_options};
use grid_experiments::{exp3, exp4};
use grid_workload::PopulationProfile;

fn economy_profile_run(c: &mut Criterion) {
    let options = tiny_options();
    let mut group = c.benchmark_group("fig3_incentive");
    group.sample_size(10);
    for oft in [0u32, 30, 100] {
        group.bench_function(format!("single_profile_oft{oft}"), |b| {
            b.iter(|| {
                let sweep =
                    exp3::run_sweep(black_box(&options), &[PopulationProfile::new(oft)]);
                black_box(sweep.reports[0].total_incentive())
            })
        });
    }
    group.finish();
}

fn economy_figures_extraction(c: &mut Criterion) {
    // One reduced three-profile sweep shared by every figure-extraction bench.
    let options = bench_options();
    let sweep = exp3::run_sweep(
        &options,
        &[
            PopulationProfile::new(0),
            PopulationProfile::new(30),
            PopulationProfile::new(100),
        ],
    );
    let mut group = c.benchmark_group("fig4_to_fig9_extraction");
    group.bench_function("fig3a_incentive", |b| {
        b.iter(|| black_box(exp3::figure3a(black_box(&sweep)).to_csv()))
    });
    group.bench_function("fig3b_remote_jobs", |b| {
        b.iter(|| black_box(exp3::figure3b(black_box(&sweep)).to_csv()))
    });
    group.bench_function("fig4_utilization_profiles", |b| {
        b.iter(|| black_box(exp3::figure4(black_box(&sweep)).to_csv()))
    });
    group.bench_function("fig5_job_processing", |b| {
        b.iter(|| black_box(exp3::figure5(black_box(&sweep)).to_csv()))
    });
    group.bench_function("fig6_rejected", |b| {
        b.iter(|| black_box(exp3::figure6(black_box(&sweep)).to_csv()))
    });
    group.bench_function("fig7_user_qos_excl", |b| {
        b.iter(|| {
            (
                black_box(exp3::figure7a(black_box(&sweep)).to_csv()),
                black_box(exp3::figure7b(black_box(&sweep)).to_csv()),
            )
        })
    });
    group.bench_function("fig8_user_qos_incl", |b| {
        b.iter(|| {
            (
                black_box(exp3::figure8a(black_box(&sweep)).to_csv()),
                black_box(exp3::figure8b(black_box(&sweep)).to_csv()),
            )
        })
    });
    group.bench_function("fig9_messages", |b| {
        b.iter(|| {
            (
                black_box(exp4::figure9a(black_box(&sweep)).to_csv()),
                black_box(exp4::figure9b(black_box(&sweep)).to_csv()),
                black_box(exp4::figure9c(black_box(&sweep)).to_csv()),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, economy_profile_run, economy_figures_extraction);
criterion_main!(benches);
