//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * `ablation_backfilling` — FCFS vs. EASY backfilling local schedulers,
//! * `ablation_directory` — idealised `⌈log₂ n⌉` directory cost vs. measured
//!   Chord overlay hops,
//! * `ablation_charging` — per-CPU-second (literal Eq. 4) vs. per-1000-MI
//!   charging,
//! * `ablation_baselines` — Grid-Federation negotiation vs. broadcast
//!   superscheduling (S-I) vs. partial-view flock on the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use grid_baselines::{run_broadcast, run_flock, BroadcastConfig, FlockConfig};
use grid_bench::tiny_options;
use grid_directory::{ChordOverlay, FederationDirectory, IdealDirectory, Quote};
use grid_experiments::workloads::{paper_workloads, replicated_workloads};
use grid_federation_core::federation::{
    run_federation, FederationConfig, LrmsKind, SchedulingMode,
};
use grid_federation_core::ChargingPolicy;
use grid_workload::PopulationProfile;

fn ablation_backfilling(c: &mut Criterion) {
    let options = tiny_options();
    let mut group = c.benchmark_group("ablation_backfilling");
    group.sample_size(10);
    for (label, lrms) in [
        ("fcfs", LrmsKind::SpaceSharedFcfs),
        ("easy_backfilling", LrmsKind::EasyBackfilling),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let setup = paper_workloads(PopulationProfile::recommended(), &options);
                let report = run_federation(
                    setup.resources,
                    setup.workloads,
                    FederationConfig {
                        lrms,
                        ..FederationConfig::with_mode(SchedulingMode::Economy)
                    },
                );
                black_box((report.mean_acceptance_rate(), report.mean_utilization_percent()))
            })
        });
    }
    group.finish();
}

fn ablation_directory(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_directory");
    for n in [8usize, 32, 128] {
        let quotes: Vec<Quote> = (0..n)
            .map(|i| Quote {
                gfa: i,
                processors: 64,
                mips: 500.0 + i as f64,
                bandwidth: 1.0,
                price: 2.0 + i as f64 * 0.01,
            })
            .collect();
        let ideal = IdealDirectory::with_quotes(quotes.clone());
        let overlay = ChordOverlay::new(n, 11);
        group.bench_with_input(BenchmarkId::new("ideal_kth_query", n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0u64;
                for r in 1..=n {
                    acc += ideal.kth_cheapest(r).map(|q| q.gfa as u64).unwrap_or(0);
                    acc += ideal.query_message_cost();
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("chord_lookup", n), &n, |b, &n| {
            b.iter(|| black_box(overlay.average_lookup_hops(n, 17)))
        });
    }
    group.finish();
}

fn ablation_charging(c: &mut Criterion) {
    let options = tiny_options();
    let mut group = c.benchmark_group("ablation_charging");
    group.sample_size(10);
    for (label, policy) in [
        ("per_cpu_second", ChargingPolicy::PerCpuSecond),
        ("per_kilo_mi", ChargingPolicy::PerKiloMi),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let setup = paper_workloads(PopulationProfile::new(100), &options);
                let report = run_federation(
                    setup.resources,
                    setup.workloads,
                    FederationConfig {
                        charging: policy,
                        ..FederationConfig::with_mode(SchedulingMode::Economy)
                    },
                );
                black_box(report.total_incentive())
            })
        });
    }
    group.finish();
}

fn ablation_baselines(c: &mut Criterion) {
    let options = tiny_options();
    let size = 16usize;
    let setup = replicated_workloads(size, PopulationProfile::recommended(), &options);
    // The baselines need the QoS constraints the federation fabricates.
    let mut qos_workloads = setup.workloads.clone();
    for (i, jobs) in qos_workloads.iter_mut().enumerate() {
        ChargingPolicy::PerKiloMi.fabricate_qos_all(jobs, &setup.resources[i]);
    }
    let mut group = c.benchmark_group("ablation_baselines");
    group.sample_size(10);
    group.bench_function("grid_federation_negotiation", |b| {
        b.iter(|| {
            let report = run_federation(
                setup.resources.clone(),
                setup.workloads.clone(),
                FederationConfig::with_mode(SchedulingMode::Economy),
            );
            black_box(report.messages.total_messages())
        })
    });
    group.bench_function("broadcast_sender_initiated", |b| {
        b.iter(|| {
            let out = run_broadcast(&setup.resources, &qos_workloads, &BroadcastConfig::default());
            black_box(out.total_messages)
        })
    });
    group.bench_function("condor_flock_partial_view", |b| {
        b.iter(|| {
            let out = run_flock(&setup.resources, &qos_workloads, &FlockConfig::default());
            black_box(out.total_messages)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_backfilling,
    ablation_directory,
    ablation_charging,
    ablation_baselines
);
criterion_main!(benches);
