//! Microbenchmarks of the substrates: the event queue, the LRMS, the
//! directory, the Chord overlay and the synthetic workload generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use grid_cluster::{ClusterJob, EasyBackfilling, LocalScheduler, SpaceSharedFcfs};
use grid_des::{BinaryHeapEventQueue, Context, Entity, EntityId, Event, EventQueue, SimTime, Simulation};
use grid_bench::populated_directory;
use grid_directory::{
    AnyDirectory, ChordOverlay, DirectoryBackend, FederationDirectory, IdealDirectory, Quote,
    RankOrder,
};
use grid_workload::{JobId, SyntheticWorkloadConfig};

/// A payload as wide as the federation's message enum, so the layout benches
/// measure the memmove cost the real model pays.
type WidePayload = [u64; 12];

fn wide_event(i: usize, n: usize) -> Event<WidePayload> {
    Event {
        time: SimTime::new(((i * 7919) % n) as f64),
        seq: 0,
        src: EntityId::new(0),
        dst: EntityId::new(0),
        kind: grid_des::EventKind::Message,
        payload: [i as u64; 12],
    }
}

/// Compares the two future-event-list layouts on an identical schedule: the
/// index-based 4-ary heap (sift moves 24-byte keys) vs. the retained
/// `BinaryHeap<Event>` baseline (sift memmoves the whole payload).  This
/// measurement decides the engine's layout; see `bench_perf` for the tracked
/// numbers.
fn event_queue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_event_queue");
    for n in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("dary_index_heap", n), &n, |b, &n| {
            b.iter(|| {
                let mut q: EventQueue<WidePayload> = EventQueue::with_capacity(n);
                for i in 0..n {
                    q.push(wide_event(i, n));
                }
                let mut acc = 0u64;
                while let Some(ev) = q.pop() {
                    acc = acc.wrapping_add(ev.payload[0]);
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("binary_heap_baseline", n), &n, |b, &n| {
            b.iter(|| {
                let mut q: BinaryHeapEventQueue<WidePayload> = BinaryHeapEventQueue::with_capacity(n);
                for i in 0..n {
                    q.push(wide_event(i, n));
                }
                let mut acc = 0u64;
                while let Some(ev) = q.pop() {
                    acc = acc.wrapping_add(ev.payload[0]);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// A self-ticking entity used to measure raw engine dispatch overhead.
struct Ticker {
    remaining: u32,
}
impl Entity<u32> for Ticker {
    fn name(&self) -> &str {
        "ticker"
    }
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        ctx.timer(1.0, 0);
    }
    fn on_event(&mut self, _event: Event<u32>, ctx: &mut Context<'_, u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.timer(1.0, 0);
        }
    }
}

fn simulation_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_dispatch");
    group.bench_function("100k_timer_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(1);
            sim.add_entity(Box::new(Ticker { remaining: 100_000 }));
            sim.run();
            black_box(sim.stats().events_delivered)
        })
    });
    group.finish();
}

fn lrms_operations(c: &mut Criterion) {
    let mut group = c.benchmark_group("lrms");
    group.bench_function("fcfs_submit_finish_1000_jobs", |b| {
        b.iter(|| {
            let mut s = SpaceSharedFcfs::new(256);
            let mut running = Vec::new();
            for i in 0..1_000usize {
                let started = s.submit(
                    ClusterJob {
                        id: JobId { origin: 0, seq: i },
                        processors: 1 + (i % 64) as u32,
                        service_time: 100.0 + (i % 17) as f64,
                    },
                    i as f64,
                );
                running.extend(started);
            }
            // Drain every completion in finish order with a monotone clock.
            running.sort_by(|a: &grid_cluster::StartedJob, b| a.finish.total_cmp(&b.finish));
            let mut now = 1_000.0f64;
            let mut idx = 0;
            while idx < running.len() {
                let job = running[idx];
                now = now.max(job.finish);
                let newly = s.on_finished(job.id, now);
                running.extend(newly);
                running[idx..].sort_by(|a, b| a.finish.total_cmp(&b.finish));
                idx += 1;
            }
            black_box(s.completed_jobs())
        })
    });
    let deep = {
        let mut s = SpaceSharedFcfs::new(128);
        for i in 0..500usize {
            s.submit(
                ClusterJob {
                    id: JobId { origin: 0, seq: i },
                    processors: 32,
                    service_time: 1_000.0,
                },
                0.0,
            );
        }
        s
    };
    // Varying probe shapes so the incremental path answers distinct quotes
    // from one profile, exactly as the DBC loop does.
    group.bench_function("estimate_completion_deep_queue_incremental", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(deep.estimate_completion(1 + i % 128, 500.0 + f64::from(i % 13), 0.0))
        })
    });
    group.bench_function("estimate_completion_deep_queue_replay_oracle", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(deep.estimate_completion_replay(1 + i % 128, 500.0 + f64::from(i % 13), 0.0))
        })
    });
    group.bench_function("easy_backfilling_mixed_queue", |b| {
        b.iter(|| {
            let mut s = EasyBackfilling::new(128);
            for i in 0..300usize {
                s.submit(
                    ClusterJob {
                        id: JobId { origin: 0, seq: i },
                        processors: 1 + (i % 96) as u32,
                        service_time: 50.0 + (i % 29) as f64 * 10.0,
                    },
                    i as f64 * 0.5,
                );
            }
            black_box(s.busy_processors())
        })
    });
    group.finish();
}

fn directory_operations(c: &mut Criterion) {
    let mut group = c.benchmark_group("directory");
    let quotes: Vec<Quote> = (0..64)
        .map(|i| Quote {
            gfa: i,
            processors: 128,
            mips: 400.0 + i as f64 * 9.0,
            bandwidth: 1.0 + (i % 4) as f64,
            price: 2.0 + i as f64 * 0.05,
        })
        .collect();
    group.bench_function("ideal_subscribe_64", |b| {
        b.iter(|| black_box(IdealDirectory::with_quotes(quotes.clone()).len()))
    });
    let dir = IdealDirectory::with_quotes(quotes);
    group.bench_function("ideal_rank_queries", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for r in 1..=64 {
                acc += dir.kth_cheapest(r).map(|q| q.gfa).unwrap_or(0);
                acc += dir.kth_fastest(r).map(|q| q.gfa).unwrap_or(0);
            }
            black_box(acc)
        })
    });
    group.bench_function("chord_build_128", |b| {
        b.iter(|| black_box(ChordOverlay::new(128, 3).len()))
    });
    let overlay = ChordOverlay::new(128, 3);
    group.bench_function("chord_lookup_128", |b| {
        b.iter(|| black_box(overlay.average_lookup_hops(64, 5)))
    });

    // Cursor streaming vs. the query-per-rank oracle, both backends at the
    // acceptance criterion's n = 50 (tracked numbers live in `bench_perf`'s
    // `directory` section; this group is the per-commit smoke view).
    let n = 50usize;
    for backend in DirectoryBackend::ALL {
        let dir = populated_directory(backend, n);
        directory_cursor_matches_oracle(&dir, n);
        let label = backend.label();
        group.bench_function(format!("cursor_open_{label}_50"), |b| {
            let mut origin = 0usize;
            b.iter(|| {
                origin = (origin + 1) % n;
                let mut cursor = dir.open_cursor(origin, RankOrder::Cheapest);
                black_box(dir.cursor_next(&mut cursor).quote)
            })
        });
        group.bench_function(format!("cursor_advance_{label}_50"), |b| {
            let mut cursor = dir.open_cursor(0, RankOrder::Cheapest);
            let _ = dir.cursor_next(&mut cursor);
            b.iter(|| {
                if cursor.next_rank() > n {
                    cursor.seek(2);
                }
                black_box(dir.cursor_next(&mut cursor).quote)
            })
        });
        group.bench_function(format!("legacy_per_rank_{label}_50"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                black_box(dir.query_cheapest(i % n, 1 + (i % n)).quote)
            })
        });
    }
    group.finish();
}

/// The cursor paths must stream exactly what the oracle answers — checked
/// here (not just in the directory crate's tests) so a future bench-only
/// refactor cannot drift the measured workload away from the verified one.
fn directory_cursor_matches_oracle(dir: &AnyDirectory, n: usize) {
    let mut cursor = dir.open_cursor(0, RankOrder::Cheapest);
    for r in 1..=n {
        assert_eq!(dir.cursor_next(&mut cursor).quote, dir.query_cheapest(0, r).quote);
    }
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generator");
    for jobs in [100usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("synthetic", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let mut cfg = SyntheticWorkloadConfig::new(0, "bench");
                cfg.total_jobs = jobs;
                cfg.max_processors = 512;
                cfg.origin_mips = 850.0;
                cfg.offered_load = 0.6;
                cfg.seed = 42;
                black_box(cfg.generate().len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    event_queue_throughput,
    simulation_dispatch,
    lrms_operations,
    directory_operations,
    workload_generation
);
criterion_main!(benches);
