//! Benchmarks regenerating the Experiment 5 figures (Fig. 10–11): message
//! complexity as the federation grows from 10 to 50 clusters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use grid_bench::tiny_options;
use grid_experiments::exp5::{self, Stat};
use grid_experiments::workloads::replicated_workloads;
use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_federation_core::DirectoryBackend;
use grid_workload::PopulationProfile;

fn fig10_11_msgs_vs_system_size(c: &mut Criterion) {
    let options = tiny_options();
    let mut group = c.benchmark_group("fig10_fig11_msgs_vs_size");
    group.sample_size(10);
    for backend in DirectoryBackend::ALL {
        for size in [10usize, 30, 50] {
            group.bench_with_input(
                BenchmarkId::new(format!("economy_federation_{}", backend.label()), size),
                &size,
                |b, &size| {
                    b.iter(|| {
                        let setup = replicated_workloads(size, PopulationProfile::new(50), &options);
                        let report = run_federation(
                            setup.resources,
                            setup.workloads,
                            FederationConfig {
                                directory: backend,
                                ..FederationConfig::with_mode(SchedulingMode::Economy)
                            },
                        );
                        black_box((
                            report.messages.per_job_summary(),
                            report.messages.per_job_directory_summary(),
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

/// The full sweep path through the bounded worker pool: sequential vs
/// `--jobs 4` over the smoke grid, the same comparison `bench_perf` tracks.
fn parallel_sweep_runner(c: &mut Criterion) {
    let options = tiny_options();
    let mut group = c.benchmark_group("exp5_sweep_worker_pool");
    group.sample_size(10);
    for jobs in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let sweep = exp5::run_sweep_with_backend_jobs(
                    &options,
                    &[8, 16],
                    &[PopulationProfile::new(50)],
                    DirectoryBackend::Ideal,
                    jobs,
                );
                black_box(sweep.reports.len())
            })
        });
    }
    group.finish();
}

fn fig10_11_panel_extraction(c: &mut Criterion) {
    let options = tiny_options();
    let sweep = exp5::run_sweep(
        &options,
        &[10, 20],
        &[PopulationProfile::new(0), PopulationProfile::new(100)],
    );
    let mut group = c.benchmark_group("fig10_fig11_panels");
    group.bench_function("all_six_panels", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for stat in Stat::ALL {
                out.push(exp5::figure10(black_box(&sweep), stat).to_csv());
                out.push(exp5::figure11(black_box(&sweep), stat).to_csv());
            }
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    fig10_11_msgs_vs_system_size,
    parallel_sweep_runner,
    fig10_11_panel_extraction
);
criterion_main!(benches);
