//! # grid-experiments — the experiment harness of the reproduction
//!
//! One module per experiment of the paper, each regenerating the
//! corresponding tables/figures from the same substrate the other crates
//! provide:
//!
//! | Module | Paper artefacts |
//! |--------|-----------------|
//! | [`exp1`] | Table 2 (independent resources) |
//! | [`exp2`] | Table 3, Fig. 2(a), Fig. 2(b) (federation without economy) |
//! | [`exp3`] | Fig. 3–8 (federation with economy, 11 population profiles) |
//! | [`exp4`] | Fig. 9 (local/remote/total message complexity) |
//! | [`exp5`] | Fig. 10–11 (message complexity vs. system size 10–50) |
//! | [`exp6`] | beyond the paper: churn tolerance (lookup availability, retry and stabilization traffic, latency degradation vs. churn rate × replication factor) |
//! | [`exp7`] | beyond the paper: unreliable network (loss/jitter/duplication fault sweep with the outcome digest pinned to the lossless run; reactive vs. periodic ring repair) |
//! | [`summary`] | the headline claims checked in `EXPERIMENTS.md` |
//!
//! Shared infrastructure: [`workloads`] builds the calibrated synthetic
//! traces for the Table 1 resources (and replicated federations for
//! Experiment 5); [`report`] provides the [`report::DataTable`] type every
//! figure is rendered into (ASCII for the terminal, CSV for plotting);
//! [`obs`] renders the p50/p90/p99 percentile panels every binary prints
//! and drives the `--metrics-out` / `--trace-out` artifact flags;
//! [`parallel`] fans independent sweep points across a bounded worker pool
//! (`--jobs N`) with a deterministic, run-ordered merge.
//!
//! The `exp*` binaries in `src/bin/` drive these modules from the command
//! line; `run_all` regenerates every artefact in one go and writes them under
//! `results/`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod exp4;
pub mod exp5;
pub mod exp6;
pub mod exp7;
pub mod obs;
pub mod parallel;
pub mod report;
pub mod summary;
pub mod workloads;

pub use report::DataTable;
pub use workloads::{paper_workloads, replicated_workloads, ExperimentSetup, WorkloadOptions};
