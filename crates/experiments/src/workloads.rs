//! Workload construction for the experiments.
//!
//! Builds, for each resource of the paper's Table 1, a calibrated synthetic
//! two-day trace (see `grid-workload::synthetic` and DESIGN.md for the
//! substitution argument), fabricates QoS constraints and applies a
//! population profile.  Experiment 5 replicates the eight base resources to
//! reach federations of 10–50 clusters, exactly as the paper does.

use grid_cluster::{paper_resources, replicated_resources, PaperResource, ResourceSpec};
use grid_workload::{Job, JobSource, PopulationProfile, SyntheticWorkloadConfig, UserPopulation};

/// Options controlling workload construction.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOptions {
    /// Trace length in seconds (the paper simulates two days).
    pub duration: f64,
    /// Scales the per-resource job counts of Table 2 (1.0 = the paper's
    /// counts; smaller values make quick test/bench runs).
    pub job_scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Fraction of execution time that is communication (0.10 in the paper).
    pub comm_fraction: f64,
}

impl Default for WorkloadOptions {
    fn default() -> Self {
        WorkloadOptions {
            duration: 2.0 * 86_400.0,
            job_scale: 1.0,
            seed: 2_005,
            comm_fraction: 0.10,
        }
    }
}

impl WorkloadOptions {
    /// A reduced configuration for fast unit tests and Criterion benches:
    /// a quarter of the paper's job counts over half a simulated day, which
    /// keeps each resource's offered load (and therefore the qualitative
    /// behaviour) close to the full configuration.
    #[must_use]
    pub fn quick() -> Self {
        WorkloadOptions {
            duration: 43_200.0,
            job_scale: 0.25,
            ..WorkloadOptions::default()
        }
    }
}

/// A ready-to-run experiment setup: resources plus one workload per resource.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// The participating resources (quotes included).
    pub resources: Vec<ResourceSpec>,
    /// The local workload of each resource, strategies already assigned.
    pub workloads: Vec<Vec<Job>>,
    /// The population profile the workloads were built with.
    pub profile: PopulationProfile,
}

impl ExperimentSetup {
    /// Total number of jobs across all resources.
    #[must_use]
    pub fn total_jobs(&self) -> usize {
        self.workloads.iter().map(Vec::len).sum()
    }
}

fn synthetic_config(
    index: usize,
    resource: &PaperResource,
    options: &WorkloadOptions,
) -> SyntheticWorkloadConfig {
    let mut cfg = SyntheticWorkloadConfig::new(index, &resource.spec.name);
    cfg.duration = options.duration;
    cfg.total_jobs = ((resource.jobs_two_days as f64) * options.job_scale).round().max(1.0) as usize;
    cfg.max_processors = resource.spec.processors;
    cfg.origin_mips = resource.spec.mips;
    cfg.offered_load = resource.offered_load;
    cfg.max_runtime = 0.25 * options.duration;
    cfg.user_count = resource.user_count;
    cfg.comm_fraction = options.comm_fraction;
    cfg.seed = options.seed ^ (index as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    cfg
}

fn build_setup(
    resources: Vec<PaperResource>,
    profile: PopulationProfile,
    options: &WorkloadOptions,
) -> ExperimentSetup {
    let specs: Vec<ResourceSpec> = resources.iter().map(|r| r.spec.clone()).collect();
    // Jobs are produced through the streaming source and only materialised
    // at the very end (today's federation engine pre-sorts per-origin
    // queues, so it still needs the vectors).
    let workloads: Vec<Vec<Job>> = resources
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let population = UserPopulation::new(i, r.user_count, profile, options.seed);
            synthetic_config(i, r, options)
                .stream()
                .populated(&population)
                .collect_jobs()
        })
        .collect();
    ExperimentSetup {
        resources: specs,
        workloads,
        profile,
    }
}

/// Builds the paper's eight-resource federation with the given population
/// profile.
#[must_use]
pub fn paper_workloads(profile: PopulationProfile, options: &WorkloadOptions) -> ExperimentSetup {
    build_setup(paper_resources(), profile, options)
}

/// Builds a federation of `n` clusters by replicating the Table 1 resources
/// (Experiment 5).
#[must_use]
pub fn replicated_workloads(
    n: usize,
    profile: PopulationProfile,
    options: &WorkloadOptions,
) -> ExperimentSetup {
    build_setup(replicated_resources(n), profile, options)
}

/// The synthetic configuration of paper resource `index % 8`, scaled to
/// exactly `total_jobs` jobs — the entry point of the million-job streaming
/// smoke mode (`exp5_scalability --stream-smoke`, `bench_perf`), which
/// drains `scaled_stream_config(..).stream()` without ever materialising
/// the workload.
#[must_use]
pub fn scaled_stream_config(
    index: usize,
    total_jobs: usize,
    options: &WorkloadOptions,
) -> SyntheticWorkloadConfig {
    let resources = paper_resources();
    let mut cfg = synthetic_config(index, &resources[index % resources.len()], options);
    cfg.total_jobs = total_jobs.max(1);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid_workload::Strategy;

    #[test]
    fn paper_setup_matches_table2_job_counts() {
        let setup = paper_workloads(PopulationProfile::new(30), &WorkloadOptions::default());
        assert_eq!(setup.resources.len(), 8);
        let counts: Vec<usize> = setup.workloads.iter().map(Vec::len).collect();
        assert_eq!(counts, vec![417, 163, 215, 817, 535, 189, 215, 111]);
        assert_eq!(setup.total_jobs(), 2_662);
        // Every job belongs to the resource it is attached to.
        for (i, jobs) in setup.workloads.iter().enumerate() {
            assert!(jobs.iter().all(|j| j.id.origin == i && j.user.origin == i));
            assert!(jobs.iter().all(|j| j.processors <= setup.resources[i].processors));
        }
    }

    #[test]
    fn population_profile_controls_strategy_mix() {
        let all_ofc = paper_workloads(PopulationProfile::new(0), &WorkloadOptions::quick());
        assert!(all_ofc
            .workloads
            .iter()
            .flatten()
            .all(|j| j.qos.strategy == Strategy::Ofc));
        let all_oft = paper_workloads(PopulationProfile::new(100), &WorkloadOptions::quick());
        assert!(all_oft
            .workloads
            .iter()
            .flatten()
            .all(|j| j.qos.strategy == Strategy::Oft));
        let mixed = paper_workloads(PopulationProfile::new(50), &WorkloadOptions::quick());
        let oft = mixed
            .workloads
            .iter()
            .flatten()
            .filter(|j| j.qos.strategy == Strategy::Oft)
            .count();
        let total = mixed.total_jobs();
        let share = oft as f64 / total as f64;
        assert!(
            (share - 0.5).abs() < 0.2,
            "OFT job share {share} should be near the 50 % user share"
        );
    }

    #[test]
    fn quick_options_scale_down_the_job_counts() {
        let quick = paper_workloads(PopulationProfile::recommended(), &WorkloadOptions::quick());
        assert!(quick.total_jobs() < 800);
        assert!(quick.total_jobs() > 400);
        assert!(quick
            .workloads
            .iter()
            .flatten()
            .all(|j| j.submit < WorkloadOptions::quick().duration));
    }

    #[test]
    fn replicated_setup_has_n_resources() {
        let setup = replicated_workloads(20, PopulationProfile::new(50), &WorkloadOptions::quick());
        assert_eq!(setup.resources.len(), 20);
        assert_eq!(setup.workloads.len(), 20);
        // Replicas carry distinct names but the same capacities.
        assert_eq!(setup.resources[8].name, "CTC SP2 #2");
        assert_eq!(setup.resources[8].processors, setup.resources[0].processors);
        // Jobs of replica 8 originate at index 8.
        assert!(setup.workloads[8].iter().all(|j| j.id.origin == 8));
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let a = paper_workloads(PopulationProfile::new(30), &WorkloadOptions::quick());
        let b = paper_workloads(PopulationProfile::new(30), &WorkloadOptions::quick());
        assert_eq!(a.workloads, b.workloads);
    }

    #[test]
    fn scaled_stream_config_streams_the_requested_job_count() {
        let options = WorkloadOptions::quick();
        let cfg = scaled_stream_config(3, 10_000, &options);
        let mut stream = cfg.stream();
        assert_eq!(stream.len(), 10_000);
        let first = stream.next().expect("stream yields jobs");
        assert_eq!(first.id.origin, 3);
        // The scaled config inherits the base resource's calibration seed,
        // so prefixes of different scales still agree on shared structure.
        assert_eq!(scaled_stream_config(0, 1, &options).stream().len(), 1);
    }
}
