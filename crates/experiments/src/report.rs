//! Tabular output shared by every experiment: ASCII rendering for the
//! terminal and CSV for plotting.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A generic table of results (one per paper table/figure panel).
#[derive(Debug, Clone, PartialEq)]
pub struct DataTable {
    /// Title, e.g. `"Figure 3(a): total incentive vs. population profile"`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells, already formatted as strings.
    pub rows: Vec<Vec<String>>,
}

impl DataTable {
    /// Creates an empty table with the given title and column headers.
    #[must_use]
    pub fn new(title: &str, columns: &[&str]) -> Self {
        DataTable {
            title: title.to_string(),
            columns: columns.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length differs from the number of columns.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned ASCII (what the `exp*` binaries print).
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-ish; cells containing commas or
    /// quotes are quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    /// Returns any I/O error from creating directories or writing the file.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float the way the paper's tables do (two decimals).
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float in scientific-ish style used for large Grid-Dollar /
/// simulation-unit quantities (e.g. `2.30e9`).
#[must_use]
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DataTable {
        let mut t = DataTable::new("Test table", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1.00".into()]);
        t.push_row(vec!["beta, the second".into(), "2.50".into()]);
        t
    }

    #[test]
    fn ascii_is_aligned_and_complete() {
        let text = table().to_ascii();
        assert!(text.contains("Test table"));
        assert!(text.contains("| alpha"));
        assert!(text.contains("beta, the second"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = table().to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("\"beta, the second\",2.50"));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("grid-experiments-test");
        let path = dir.join("nested/out.csv");
        table().write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, table().to_csv());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "cells but the table has")]
    fn mismatched_row_panics() {
        let mut t = DataTable::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn numeric_formatting() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(2.3e9), "2.300e9");
        assert!(!table().is_empty());
        assert_eq!(table().len(), 2);
    }
}
