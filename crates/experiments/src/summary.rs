//! Headline-claim extraction: the quantities the paper's abstract and
//! conclusion highlight, gathered from the experiment results so that
//! `EXPERIMENTS.md` (and the integration tests) can compare paper vs.
//! measured values directly.

use crate::exp2::Experiment2Result;
use crate::exp3::ProfileSweep;
use crate::report::DataTable;

/// The headline claims of the paper and the corresponding measured values.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineClaims {
    /// Mean acceptance rate without federation (paper: 90.30 %).
    pub acceptance_without_federation: f64,
    /// Mean acceptance rate with federation (paper: 98.61 %).
    pub acceptance_with_federation: f64,
    /// Total incentive when every user seeks OFC (paper: 2.12 × 10⁹ G$).
    pub total_incentive_all_ofc: f64,
    /// Total incentive when every user seeks OFT (paper: 2.30 × 10⁹ G$).
    pub total_incentive_all_oft: f64,
    /// Total messages when every user seeks OFC (paper: 1.024 × 10⁴).
    pub total_messages_all_ofc: u64,
    /// Total messages when every user seeks OFT (paper: 1.948 × 10⁴).
    pub total_messages_all_oft: u64,
    /// Federation-wide average budget spent under all-OFC, including rejected
    /// jobs (paper: 8.874 × 10⁵ vs. 9.359 × 10⁵ without federation).
    pub avg_budget_all_ofc: f64,
    /// Federation-wide average response time under all-OFT, including
    /// rejected jobs (paper: 1.171 × 10⁴ vs. 1.207 × 10⁴ without federation).
    pub avg_response_all_oft: f64,
}

impl HeadlineClaims {
    /// Extracts the claims from the Experiment 2 result and the Experiment 3
    /// profile sweep (which must contain the 0 % and 100 % OFT profiles).
    ///
    /// # Panics
    /// Panics if the sweep lacks the all-OFC or all-OFT profile.
    #[must_use]
    pub fn extract(exp2: &Experiment2Result, sweep: &ProfileSweep) -> Self {
        let ofc = sweep
            .report_for(0)
            .expect("sweep must include the all-OFC profile");
        let oft = sweep
            .report_for(100)
            .expect("sweep must include the all-OFT profile");
        HeadlineClaims {
            acceptance_without_federation: exp2.independent.mean_acceptance_rate(),
            acceptance_with_federation: exp2.federated.mean_acceptance_rate(),
            total_incentive_all_ofc: ofc.total_incentive(),
            total_incentive_all_oft: oft.total_incentive(),
            total_messages_all_ofc: ofc.messages.total_messages(),
            total_messages_all_oft: oft.messages.total_messages(),
            avg_budget_all_ofc: ofc.federation_avg_budget_spent(true),
            avg_response_all_oft: oft.federation_avg_response_time(true),
        }
    }

    /// Whether the *directional* claims of the paper hold for these measured
    /// values (federation raises acceptance, OFT earns more total incentive
    /// and costs more messages than OFC).
    #[must_use]
    pub fn directional_claims_hold(&self) -> bool {
        self.acceptance_with_federation >= self.acceptance_without_federation
            && self.total_incentive_all_oft > self.total_incentive_all_ofc
            && self.total_messages_all_oft > self.total_messages_all_ofc
    }

    /// Renders a paper-vs-measured table for `EXPERIMENTS.md`.
    #[must_use]
    pub fn to_table(&self) -> DataTable {
        let mut t = DataTable::new(
            "Headline claims: paper vs. measured",
            &["Quantity", "Paper", "Measured"],
        );
        t.push_row(vec![
            "Mean acceptance rate without federation (%)".into(),
            "90.30".into(),
            format!("{:.2}", self.acceptance_without_federation),
        ]);
        t.push_row(vec![
            "Mean acceptance rate with federation (%)".into(),
            "98.61".into(),
            format!("{:.2}", self.acceptance_with_federation),
        ]);
        t.push_row(vec![
            "Total incentive, 100% OFC (Grid Dollars)".into(),
            "2.12e9".into(),
            format!("{:.3e}", self.total_incentive_all_ofc),
        ]);
        t.push_row(vec![
            "Total incentive, 100% OFT (Grid Dollars)".into(),
            "2.30e9".into(),
            format!("{:.3e}", self.total_incentive_all_oft),
        ]);
        t.push_row(vec![
            "Total messages, 100% OFC".into(),
            "1.024e4".into(),
            format!("{}", self.total_messages_all_ofc),
        ]);
        t.push_row(vec![
            "Total messages, 100% OFT".into(),
            "1.948e4".into(),
            format!("{}", self.total_messages_all_oft),
        ]);
        t.push_row(vec![
            "Avg budget spent, 100% OFC, incl. rejected (G$)".into(),
            "8.874e5".into(),
            format!("{:.3e}", self.avg_budget_all_ofc),
        ]);
        t.push_row(vec![
            "Avg response time, 100% OFT, incl. rejected (s)".into(),
            "1.171e4".into(),
            format!("{:.3e}", self.avg_response_all_oft),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp2;
    use crate::exp3::run_sweep;
    use crate::workloads::WorkloadOptions;
    use grid_workload::PopulationProfile;

    #[test]
    fn headline_claims_hold_directionally_on_the_quick_workload() {
        let options = WorkloadOptions::quick();
        let exp2_result = exp2::run(&options);
        let sweep = run_sweep(
            &options,
            &[PopulationProfile::new(0), PopulationProfile::new(100)],
        );
        let claims = HeadlineClaims::extract(&exp2_result, &sweep);
        assert!(
            claims.directional_claims_hold(),
            "directional claims failed: {claims:#?}"
        );
        let table = claims.to_table();
        assert_eq!(table.len(), 8);
        assert!(table.to_ascii().contains("Measured"));
    }
}
