//! Experiment 5 — message complexity with respect to system size
//! (Fig. 10 and Fig. 11).
//!
//! The Table 1 resources are replicated to build federations of 10–50
//! clusters and the economy scheduler is run for a set of population
//! profiles.  For every (size, profile) pair the per-job and per-GFA message
//! counts are summarised as min / average / max, matching the six panels of
//! Fig. 10 and Fig. 11.

use std::thread;

use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_federation_core::FederationReport;
use grid_workload::PopulationProfile;

use crate::report::{f2, DataTable};
use crate::workloads::{replicated_workloads, WorkloadOptions};

/// Which summary statistic a panel shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    /// Minimum.
    Min,
    /// Average.
    Avg,
    /// Maximum.
    Max,
}

impl Stat {
    /// The three statistics in panel order (a), (b), (c) of Fig. 10/11.
    pub const ALL: [Stat; 3] = [Stat::Min, Stat::Avg, Stat::Max];

    /// Short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stat::Min => "min",
            Stat::Avg => "average",
            Stat::Max => "max",
        }
    }
}

/// The sweep over system sizes and population profiles.
#[derive(Debug, Clone)]
pub struct ScalabilitySweep {
    /// Federation sizes, e.g. `[10, 20, 30, 40, 50]`.
    pub sizes: Vec<usize>,
    /// Population profiles evaluated at every size.
    pub profiles: Vec<PopulationProfile>,
    /// `reports[size_index][profile_index]`.
    pub reports: Vec<Vec<FederationReport>>,
}

impl ScalabilitySweep {
    /// The report for a given size and OFT percentage.
    #[must_use]
    pub fn report_for(&self, size: usize, oft_percent: u32) -> Option<&FederationReport> {
        let si = self.sizes.iter().position(|s| *s == size)?;
        let pi = self
            .profiles
            .iter()
            .position(|p| p.oft_percent == oft_percent)?;
        Some(&self.reports[si][pi])
    }
}

/// Runs the scalability sweep.  Runs are independent, so each (size, profile)
/// pair executes on its own thread.
#[must_use]
pub fn run_sweep(
    options: &WorkloadOptions,
    sizes: &[usize],
    profiles: &[PopulationProfile],
) -> ScalabilitySweep {
    let reports: Vec<Vec<FederationReport>> = thread::scope(|scope| {
        let handles: Vec<Vec<_>> = sizes
            .iter()
            .map(|&size| {
                profiles
                    .iter()
                    .map(|&profile| {
                        scope.spawn(move || {
                            let setup = replicated_workloads(size, profile, options);
                            run_federation(
                                setup.resources,
                                setup.workloads,
                                FederationConfig {
                                    mode: SchedulingMode::Economy,
                                    seed: options.seed,
                                    utilization_horizon: Some(options.duration),
                                    ..FederationConfig::default()
                                },
                            )
                        })
                    })
                    .collect()
            })
            .collect();
        handles
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|h| h.join().expect("scalability run must not panic"))
                    .collect()
            })
            .collect()
    });
    ScalabilitySweep {
        sizes: sizes.to_vec(),
        profiles: profiles.to_vec(),
        reports,
    }
}

/// Runs the paper's configuration: sizes 10–50 in steps of 10, with the
/// population profiles of Experiment 3 (a reduced default set keeps the run
/// time reasonable; pass a custom profile list through [`run_sweep`] for the
/// full grid).
#[must_use]
pub fn run(options: &WorkloadOptions) -> ScalabilitySweep {
    let profiles: Vec<PopulationProfile> = [0u32, 30, 50, 70, 100]
        .iter()
        .map(|p| PopulationProfile::new(*p))
        .collect();
    run_sweep(options, &[10, 20, 30, 40, 50], &profiles)
}

fn extract(report: &FederationReport, per_job: bool, stat: Stat) -> f64 {
    if per_job {
        let (min, avg, max) = report.messages.per_job_summary();
        match stat {
            Stat::Min => f64::from(min),
            Stat::Avg => avg,
            Stat::Max => f64::from(max),
        }
    } else {
        let (min, avg, max) = report.messages.per_gfa_summary();
        match stat {
            Stat::Min => min as f64,
            Stat::Avg => avg,
            Stat::Max => max as f64,
        }
    }
}

fn panel(sweep: &ScalabilitySweep, per_job: bool, stat: Stat, title: &str) -> DataTable {
    let mut columns = vec!["System size".to_string()];
    columns.extend(sweep.profiles.iter().map(PopulationProfile::label));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = DataTable::new(title, &column_refs);
    for (si, size) in sweep.sizes.iter().enumerate() {
        let mut row = vec![size.to_string()];
        for pi in 0..sweep.profiles.len() {
            row.push(f2(extract(&sweep.reports[si][pi], per_job, stat)));
        }
        table.push_row(row);
    }
    table
}

/// Fig. 10 panels: min/average/max messages **per job** vs. system size.
#[must_use]
pub fn figure10(sweep: &ScalabilitySweep, stat: Stat) -> DataTable {
    panel(
        sweep,
        true,
        stat,
        &format!(
            "Figure 10 ({}): {} messages per job vs. system size",
            match stat {
                Stat::Min => "a",
                Stat::Avg => "b",
                Stat::Max => "c",
            },
            stat.label()
        ),
    )
}

/// Fig. 11 panels: min/average/max messages **per GFA** vs. system size.
#[must_use]
pub fn figure11(sweep: &ScalabilitySweep, stat: Stat) -> DataTable {
    panel(
        sweep,
        false,
        stat,
        &format!(
            "Figure 11 ({}): {} messages per GFA vs. system size",
            match stat {
                Stat::Min => "a",
                Stat::Avg => "b",
                Stat::Max => "c",
            },
            stat.label()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> ScalabilitySweep {
        run_sweep(
            &WorkloadOptions::quick(),
            &[10, 20],
            &[PopulationProfile::new(0), PopulationProfile::new(100)],
        )
    }

    #[test]
    fn sweep_shape_and_lookup() {
        let sweep = small_sweep();
        assert_eq!(sweep.reports.len(), 2);
        assert_eq!(sweep.reports[0].len(), 2);
        assert!(sweep.report_for(10, 0).is_some());
        assert!(sweep.report_for(30, 0).is_none());
        assert!(sweep.report_for(10, 40).is_none());
        // The size-20 federation indeed has 20 resources.
        assert_eq!(sweep.report_for(20, 0).unwrap().resources.len(), 20);
    }

    #[test]
    fn average_messages_per_job_grow_with_system_size() {
        let sweep = small_sweep();
        for oft in [0u32, 100] {
            let small = extract(sweep.report_for(10, oft).unwrap(), true, Stat::Avg);
            let large = extract(sweep.report_for(20, oft).unwrap(), true, Stat::Avg);
            assert!(
                large >= small * 0.8,
                "per-job messages should not collapse as the system grows (OFT {oft}%: {small:.2} -> {large:.2})"
            );
            assert!(small >= 2.0, "every job needs at least a negotiate/reply pair");
        }
    }

    #[test]
    fn oft_needs_more_messages_per_job_than_ofc() {
        // The paper: OFC scheduling requires fewer messages than OFT.
        let sweep = small_sweep();
        let ofc = extract(sweep.report_for(10, 0).unwrap(), true, Stat::Avg);
        let oft = extract(sweep.report_for(10, 100).unwrap(), true, Stat::Avg);
        assert!(
            oft > ofc,
            "per-job messages under OFT ({oft:.2}) should exceed OFC ({ofc:.2})"
        );
    }

    #[test]
    fn panels_have_one_row_per_size() {
        let sweep = small_sweep();
        for stat in Stat::ALL {
            assert_eq!(figure10(&sweep, stat).len(), 2);
            assert_eq!(figure11(&sweep, stat).len(), 2);
            assert_eq!(figure10(&sweep, stat).columns.len(), 3);
        }
        assert_eq!(Stat::Min.label(), "min");
    }
}
