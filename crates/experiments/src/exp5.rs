//! Experiment 5 — message complexity with respect to system size
//! (Fig. 10 and Fig. 11).
//!
//! The Table 1 resources are replicated to build federations of 10–50
//! clusters and the economy scheduler is run for a set of population
//! profiles.  For every (size, profile) pair the per-job and per-GFA message
//! counts are summarised as min / average / max, matching the six panels of
//! Fig. 10 and Fig. 11.
//!
//! On top of the paper's negotiation panels, the sweep runs against every
//! [`DirectoryBackend`] and summarises the per-job **directory** message
//! counts, validating the paper's `O(log n)` query-cost assumption with the
//! Chord overlay's *measured* hops — and, under the MAAN backend, with
//! genuinely distributed rank data whose range walks pay extra hops on node
//! boundaries and whose quote mutations cost routed **publish** traffic.
//! Backends resolve identical quotes, so their job outcomes are
//! bitwise-identical and only the directory/publish traffic differs.

use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_federation_core::{DirectoryBackend, FederationReport};
use grid_workload::PopulationProfile;

use crate::parallel;
use crate::report::{f2, DataTable};
use crate::workloads::{replicated_workloads, WorkloadOptions};

/// Which summary statistic a panel shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    /// Minimum.
    Min,
    /// Average.
    Avg,
    /// Maximum.
    Max,
}

impl Stat {
    /// The three statistics in panel order (a), (b), (c) of Fig. 10/11.
    pub const ALL: [Stat; 3] = [Stat::Min, Stat::Avg, Stat::Max];

    /// Short label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stat::Min => "min",
            Stat::Avg => "average",
            Stat::Max => "max",
        }
    }
}

/// The sweep over system sizes and population profiles.
#[derive(Debug, Clone)]
pub struct ScalabilitySweep {
    /// The directory backend every run of this sweep used.
    pub backend: DirectoryBackend,
    /// Federation sizes, e.g. `[10, 20, 30, 40, 50]`.
    pub sizes: Vec<usize>,
    /// Population profiles evaluated at every size.
    pub profiles: Vec<PopulationProfile>,
    /// `reports[size_index][profile_index]`.
    pub reports: Vec<Vec<FederationReport>>,
}

impl ScalabilitySweep {
    /// The report for a given size and OFT percentage.
    #[must_use]
    pub fn report_for(&self, size: usize, oft_percent: u32) -> Option<&FederationReport> {
        let si = self.sizes.iter().position(|s| *s == size)?;
        let pi = self
            .profiles
            .iter()
            .position(|p| p.oft_percent == oft_percent)?;
        Some(&self.reports[si][pi])
    }
}

/// Runs the scalability sweep with the default (ideal) directory backend and
/// a worker pool sized to the machine.
#[must_use]
pub fn run_sweep(
    options: &WorkloadOptions,
    sizes: &[usize],
    profiles: &[PopulationProfile],
) -> ScalabilitySweep {
    run_sweep_with_backend(options, sizes, profiles, DirectoryBackend::Ideal)
}

/// Runs the scalability sweep against a specific directory backend with a
/// worker pool sized to the machine.
#[must_use]
pub fn run_sweep_with_backend(
    options: &WorkloadOptions,
    sizes: &[usize],
    profiles: &[PopulationProfile],
    backend: DirectoryBackend,
) -> ScalabilitySweep {
    run_sweep_with_backend_jobs(options, sizes, profiles, backend, parallel::default_jobs())
}

/// Runs the scalability sweep against a specific directory backend across at
/// most `jobs` worker threads.
///
/// Every (size, profile) pair is an independent run whose seeds derive from
/// its own parameters (`options.seed` and the per-resource indices), never
/// from execution order, and results are merged in deterministic run order —
/// so the sweep's output is bitwise-identical for any `jobs` value
/// (regression-tested, and re-asserted by `bench_perf` on every run).
#[must_use]
pub fn run_sweep_with_backend_jobs(
    options: &WorkloadOptions,
    sizes: &[usize],
    profiles: &[PopulationProfile],
    backend: DirectoryBackend,
    jobs: usize,
) -> ScalabilitySweep {
    run_sweep_inner(options, sizes, profiles, backend, jobs, None)
}

/// Runs the scalability sweep with the worker pool claiming points through
/// an explicit [`parallel::ClaimSchedule`] instead of ascending cursor
/// order.
///
/// This is the schedule-permutation regression harness: every claim order —
/// reversed, strided, shuffled, stall-injected — must render sweep CSVs
/// byte-identical to the sequential run, because results are merged by
/// index, never by completion order (asserted by `parallel_determinism`).
#[must_use]
pub fn run_sweep_with_backend_schedule(
    options: &WorkloadOptions,
    sizes: &[usize],
    profiles: &[PopulationProfile],
    backend: DirectoryBackend,
    jobs: usize,
    schedule: &parallel::ClaimSchedule,
) -> ScalabilitySweep {
    run_sweep_inner(options, sizes, profiles, backend, jobs, Some(schedule))
}

fn run_sweep_inner(
    options: &WorkloadOptions,
    sizes: &[usize],
    profiles: &[PopulationProfile],
    backend: DirectoryBackend,
    jobs: usize,
    schedule: Option<&parallel::ClaimSchedule>,
) -> ScalabilitySweep {
    let points: Vec<(usize, PopulationProfile)> = sizes
        .iter()
        .flat_map(|&size| profiles.iter().map(move |&profile| (size, profile)))
        .collect();
    let point = |i: usize| {
        let (size, profile) = points[i];
        let setup = replicated_workloads(size, profile, options);
        run_federation(
            setup.resources,
            setup.workloads,
            FederationConfig {
                mode: SchedulingMode::Economy,
                seed: options.seed,
                utilization_horizon: Some(options.duration),
                directory: backend,
                ..FederationConfig::default()
            },
        )
    };
    let mut flat = match schedule {
        None => parallel::run_indexed(points.len(), jobs, point),
        Some(schedule) => {
            parallel::run_indexed_with_schedule(points.len(), jobs, schedule, point)
        }
    }
    .into_iter();
    let reports: Vec<Vec<FederationReport>> = sizes
        .iter()
        .map(|_| profiles.iter().map(|_| flat.next().expect("one report per point")).collect())
        .collect();
    ScalabilitySweep {
        backend,
        sizes: sizes.to_vec(),
        profiles: profiles.to_vec(),
        reports,
    }
}

/// The paper's system sizes: 10–50 clusters in steps of 10.
pub const DEFAULT_SIZES: [usize; 5] = [10, 20, 30, 40, 50];

/// The default population-profile grid (a reduced subset of Experiment 3's
/// eleven profiles that keeps the run time reasonable).
#[must_use]
pub fn default_profiles() -> Vec<PopulationProfile> {
    [0u32, 30, 50, 70, 100]
        .iter()
        .map(|p| PopulationProfile::new(*p))
        .collect()
}

/// Runs the paper's configuration: [`DEFAULT_SIZES`] with
/// [`default_profiles`] (pass a custom grid through [`run_sweep`] for the
/// full Experiment 3 profile set).
#[must_use]
pub fn run(options: &WorkloadOptions) -> ScalabilitySweep {
    run_sweep(options, &DEFAULT_SIZES, &default_profiles())
}

/// Which message series a panel summarises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Series {
    /// Negotiation messages per job (Fig. 10).
    JobNegotiation,
    /// Negotiation messages per GFA (Fig. 11).
    GfaNegotiation,
    /// Directory messages per job (the new backend-validation panel).
    JobDirectory,
}

fn extract_series(report: &FederationReport, series: Series, stat: Stat) -> f64 {
    match series {
        Series::JobNegotiation | Series::JobDirectory => {
            let (min, avg, max) = if series == Series::JobNegotiation {
                report.messages.per_job_summary()
            } else {
                report.messages.per_job_directory_summary()
            };
            match stat {
                Stat::Min => f64::from(min),
                Stat::Avg => avg,
                Stat::Max => f64::from(max),
            }
        }
        Series::GfaNegotiation => {
            let (min, avg, max) = report.messages.per_gfa_summary();
            match stat {
                Stat::Min => min as f64,
                Stat::Avg => avg,
                Stat::Max => max as f64,
            }
        }
    }
}

fn panel(sweep: &ScalabilitySweep, series: Series, stat: Stat, title: &str) -> DataTable {
    let mut columns = vec!["System size".to_string()];
    columns.extend(sweep.profiles.iter().map(PopulationProfile::label));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = DataTable::new(title, &column_refs);
    for (si, size) in sweep.sizes.iter().enumerate() {
        let mut row = vec![size.to_string()];
        for pi in 0..sweep.profiles.len() {
            row.push(f2(extract_series(&sweep.reports[si][pi], series, stat)));
        }
        table.push_row(row);
    }
    table
}

/// Fig. 10 panels: min/average/max messages **per job** vs. system size.
#[must_use]
pub fn figure10(sweep: &ScalabilitySweep, stat: Stat) -> DataTable {
    panel(
        sweep,
        Series::JobNegotiation,
        stat,
        &format!(
            "Figure 10 ({}): {} messages per job vs. system size",
            match stat {
                Stat::Min => "a",
                Stat::Avg => "b",
                Stat::Max => "c",
            },
            stat.label()
        ),
    )
}

/// Fig. 11 panels: min/average/max messages **per GFA** vs. system size.
#[must_use]
pub fn figure11(sweep: &ScalabilitySweep, stat: Stat) -> DataTable {
    panel(
        sweep,
        Series::GfaNegotiation,
        stat,
        &format!(
            "Figure 11 ({}): {} messages per GFA vs. system size",
            match stat {
                Stat::Min => "a",
                Stat::Avg => "b",
                Stat::Max => "c",
            },
            stat.label()
        ),
    )
}

/// The new directory panel: min/average/max **directory** messages per job
/// vs. system size, for the sweep's backend.  Under the ideal backend these
/// are modelled `⌈log₂ n⌉` costs; under Chord they are measured overlay
/// hops; under MAAN they are measured walks over the distributed range
/// index, boundary crossings included.
#[must_use]
pub fn figure_directory(sweep: &ScalabilitySweep, stat: Stat) -> DataTable {
    panel(
        sweep,
        Series::JobDirectory,
        stat,
        &format!(
            "Directory messages per job ({} backend): {} vs. system size",
            sweep.backend.label(),
            stat.label()
        ),
    )
}

/// Cross-backend validation table: for every system size, the average cost
/// of one *routed* ranking lookup, the average directory messages per job
/// and the average **publish-side** messages per GFA under each backend
/// (averaged over the sweep's profiles), next to the idealised `⌈log₂ n⌉`
/// reference.  The overlay route columns growing like the reference —
/// rather than like `n` — is the paper's scalability argument made
/// measurable; the per-job column adds the `+k` cursor cost of the ranks
/// the DBC loop actually probed (under MAAN including the extra hops of
/// boundary-crossing advances), and the publish column is the routed
/// put/remove/move traffic only the MAAN backend pays (the centrally-stored
/// backends publish for free).
///
/// # Panics
/// Panics if the sweeps disagree on sizes or profiles.
#[must_use]
pub fn backend_directory_comparison(sweeps: &[ScalabilitySweep]) -> DataTable {
    assert!(!sweeps.is_empty(), "need at least one sweep to compare");
    for s in sweeps {
        assert_eq!(s.sizes, sweeps[0].sizes, "sweeps must cover the same sizes");
        assert!(
            s.profiles.len() == sweeps[0].profiles.len()
                && s.profiles
                    .iter()
                    .zip(&sweeps[0].profiles)
                    .all(|(a, b)| a.oft_percent == b.oft_percent),
            "sweeps must cover the same profiles"
        );
    }
    let mut columns = vec!["System size".to_string(), "ceil(log2 n)".to_string()];
    for s in sweeps {
        columns.push(format!("{} avg msgs/route", s.backend.label()));
        columns.push(format!("{} avg dir msgs/job", s.backend.label()));
        columns.push(format!("{} avg lookup s/job", s.backend.label()));
        columns.push(format!("{} avg publish msgs/gfa", s.backend.label()));
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = DataTable::new(
        "Directory backend comparison: average directory messages per query and per job",
        &column_refs,
    );
    for (si, size) in sweeps[0].sizes.iter().enumerate() {
        let mut row = vec![
            size.to_string(),
            format!("{}", (*size as f64).log2().ceil() as u64),
        ];
        for sweep in sweeps {
            let profiles = sweep.profiles.len() as f64;
            let per_route: f64 = (0..sweep.profiles.len())
                .map(|pi| sweep.reports[si][pi].directory_avg_route_messages)
                .sum::<f64>()
                / profiles;
            let per_job: f64 = (0..sweep.profiles.len())
                .map(|pi| extract_series(&sweep.reports[si][pi], Series::JobDirectory, Stat::Avg))
                .sum::<f64>()
                / profiles;
            // The simulated network time directory lookups cost (hops ×
            // latency), accounted out-of-band so job outcomes stay
            // backend-identical; surfaced here so the charge is visible in
            // the emitted tables.
            let secs_per_job: f64 = (0..sweep.profiles.len())
                .map(|pi| {
                    let r = &sweep.reports[si][pi];
                    if r.jobs.is_empty() {
                        0.0
                    } else {
                        r.messages.directory_seconds() / r.jobs.len() as f64
                    }
                })
                .sum::<f64>()
                / profiles;
            let publish_per_gfa: f64 = (0..sweep.profiles.len())
                .map(|pi| sweep.reports[si][pi].avg_publish_messages_per_gfa())
                .sum::<f64>()
                / profiles;
            row.push(f2(per_route));
            row.push(f2(per_job));
            row.push(f2(secs_per_job));
            row.push(f2(publish_per_gfa));
        }
        table.push_row(row);
    }
    table
}

/// Renders every CSV a set of sweeps produces — the Fig. 10/11/directory
/// panels for each stat of each sweep, then the backend comparison table —
/// as `(name, csv)` pairs in a stable order.
///
/// This is the canonical "everything exp5 emits" set: the
/// parallel-determinism regression test and `bench_perf`'s CI determinism
/// gate both compare exactly this, so neither can silently cover fewer
/// panels than the other.
///
/// # Panics
/// Panics if the sweeps disagree on sizes or profiles (see
/// [`backend_directory_comparison`]).
#[must_use]
pub fn render_all_csvs(sweeps: &[ScalabilitySweep]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for sweep in sweeps {
        for stat in Stat::ALL {
            out.push((
                format!("fig10_{}_{}", stat.label(), sweep.backend.label()),
                figure10(sweep, stat).to_csv(),
            ));
            out.push((
                format!("fig11_{}_{}", stat.label(), sweep.backend.label()),
                figure11(sweep, stat).to_csv(),
            ));
            out.push((
                format!("directory_{}_{}", stat.label(), sweep.backend.label()),
                figure_directory(sweep, stat).to_csv(),
            ));
        }
    }
    out.push((
        "backend_comparison".to_string(),
        backend_directory_comparison(sweeps).to_csv(),
    ));
    out
}

/// Renders the audit-ledger digest lines of a set of sweeps in a stable
/// order: one line per (backend, size, profile) run, each carrying the
/// run's [`grid_federation_core::RunDigest`] (outcome digest, full digest,
/// entry count).
///
/// Two sweep executions are behaviourally identical iff their manifests are
/// byte-identical — this is the O(runs) replacement for diffing the ~30
/// rendered CSVs, and the format `run_all` writes to
/// `MANIFEST_digests.txt` (which CI re-derives and compares on every push).
#[must_use]
pub fn digest_manifest(sweeps: &[ScalabilitySweep]) -> String {
    let mut out = String::new();
    for sweep in sweeps {
        for (si, size) in sweep.sizes.iter().enumerate() {
            for (pi, profile) in sweep.profiles.iter().enumerate() {
                out.push_str(&format!(
                    "exp5/{}/size{}/{} {}\n",
                    sweep.backend.label(),
                    size,
                    profile.label(),
                    sweep.reports[si][pi].digest
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> ScalabilitySweep {
        run_sweep(
            &WorkloadOptions::quick(),
            &[10, 20],
            &[PopulationProfile::new(0), PopulationProfile::new(100)],
        )
    }

    #[test]
    fn sweep_shape_and_lookup() {
        let sweep = small_sweep();
        assert_eq!(sweep.reports.len(), 2);
        assert_eq!(sweep.reports[0].len(), 2);
        assert!(sweep.report_for(10, 0).is_some());
        assert!(sweep.report_for(30, 0).is_none());
        assert!(sweep.report_for(10, 40).is_none());
        // The size-20 federation indeed has 20 resources.
        assert_eq!(sweep.report_for(20, 0).unwrap().resources.len(), 20);
    }

    #[test]
    fn average_messages_per_job_grow_with_system_size() {
        let sweep = small_sweep();
        for oft in [0u32, 100] {
            let small = extract_series(sweep.report_for(10, oft).unwrap(), Series::JobNegotiation, Stat::Avg);
            let large = extract_series(sweep.report_for(20, oft).unwrap(), Series::JobNegotiation, Stat::Avg);
            assert!(
                large >= small * 0.8,
                "per-job messages should not collapse as the system grows (OFT {oft}%: {small:.2} -> {large:.2})"
            );
            assert!(small >= 2.0, "every job needs at least a negotiate/reply pair");
        }
    }

    #[test]
    fn oft_needs_more_messages_per_job_than_ofc() {
        // The paper: OFC scheduling requires fewer messages than OFT.
        let sweep = small_sweep();
        let ofc = extract_series(sweep.report_for(10, 0).unwrap(), Series::JobNegotiation, Stat::Avg);
        let oft = extract_series(sweep.report_for(10, 100).unwrap(), Series::JobNegotiation, Stat::Avg);
        assert!(
            oft > ofc,
            "per-job messages under OFT ({oft:.2}) should exceed OFC ({ofc:.2})"
        );
    }

    #[test]
    fn panels_have_one_row_per_size() {
        let sweep = small_sweep();
        for stat in Stat::ALL {
            assert_eq!(figure10(&sweep, stat).len(), 2);
            assert_eq!(figure11(&sweep, stat).len(), 2);
            assert_eq!(figure10(&sweep, stat).columns.len(), 3);
            assert_eq!(figure_directory(&sweep, stat).len(), 2);
        }
        assert_eq!(Stat::Min.label(), "min");
        assert_eq!(sweep.backend, DirectoryBackend::Ideal);
    }

    #[test]
    fn backends_produce_identical_job_outcomes() {
        // The acceptance criterion's differential check at sweep level: same
        // seed + workload under Ideal, Chord and MAAN must yield
        // bitwise-identical job outcomes and bank balances, differing only
        // in directory/publish message counts and the lookup latency they
        // account.
        let options = WorkloadOptions::quick();
        let sizes = [10usize];
        let profiles = [PopulationProfile::new(50)];
        let ideal = run_sweep_with_backend(&options, &sizes, &profiles, DirectoryBackend::Ideal);
        let a = &ideal.reports[0][0];
        for backend in [DirectoryBackend::Chord, DirectoryBackend::Maan] {
            let other = run_sweep_with_backend(&options, &sizes, &profiles, backend);
            let b = &other.reports[0][0];
            // Digest-first: the audit ledger's outcome chains commit to every
            // job record and bank transfer, so this one comparison subsumes
            // the field-by-field oracle below.
            assert_eq!(
                a.digest.outcomes, b.digest.outcomes,
                "{backend:?}: outcome digest diverged from the ideal backend"
            );
            assert_eq!(a.jobs.len(), b.jobs.len());
            for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
                assert_eq!(ja.id, jb.id);
                assert_eq!(ja.outcome, jb.outcome, "{backend:?}: job {} outcome diverged", ja.id);
                assert_eq!(
                    ja.messages, jb.messages,
                    "{backend:?}: job {} negotiation traffic diverged",
                    ja.id
                );
            }
            assert_eq!(a.messages.total_messages(), b.messages.total_messages());
            assert_eq!(a.messages.per_job_summary(), b.messages.per_job_summary());
            for i in 0..a.resources.len() {
                assert!((a.bank.earnings(i) - b.bank.earnings(i)).abs() < 1e-9, "{backend:?}");
                assert_eq!(a.resources[i].accepted, b.resources[i].accepted);
                assert_eq!(a.resources[i].rejected, b.resources[i].rejected);
            }
            // Every backend accounts directory traffic; the measured overlay
            // hops need not equal the modelled ⌈log₂ n⌉ aggregate.  Only the
            // distributed MAAN store pays publish-side traffic.
            assert!(a.messages.directory_messages() > 0);
            assert!(b.messages.directory_messages() > 0);
            assert!(b.messages.directory_seconds() > 0.0);
            assert_eq!(a.messages.publish_messages(), 0);
            if backend == DirectoryBackend::Maan {
                assert!(b.messages.publish_messages() > 0, "MAAN must charge its initial publishes");
            } else {
                assert_eq!(b.messages.publish_messages(), 0);
            }
        }
    }

    #[test]
    fn digest_manifest_covers_every_run_in_stable_order() {
        let sweep = small_sweep();
        let manifest = digest_manifest(std::slice::from_ref(&sweep));
        // 2 sizes × 2 profiles = 4 lines, in (size, profile) order.
        assert_eq!(manifest.lines().count(), 4);
        let first = manifest.lines().next().unwrap();
        assert!(first.starts_with("exp5/ideal/size10/OFC100/OFT0 "), "got {first:?}");
        // Each line carries the three-field digest display.
        assert!(manifest.lines().all(|l| l.split(' ').count() == 4));
        assert_eq!(manifest, digest_manifest(std::slice::from_ref(&sweep)));
    }

    #[test]
    fn chord_directory_messages_grow_sublinearly() {
        // Two claims, validated on a 4× size growth (10 → 40 clusters):
        //
        // 1. The cost of one ranking query — the quantity the paper models as
        //    `O(log n)` — must grow like the logarithm of the system size
        //    (log₂ 40 / log₂ 10 ≈ 1.6), nowhere near linearly.
        // 2. The *per-job* directory total (query cost × ranks probed by the
        //    DBC loop) must stay sub-linear even though deeper federations
        //    also probe more ranks per job (a negotiation property visible
        //    in Fig. 10 as well).
        let options = WorkloadOptions::quick();
        let profiles = [PopulationProfile::new(50)];
        let sweep =
            run_sweep_with_backend(&options, &[10, 40], &profiles, DirectoryBackend::Chord);
        let hops_small = sweep.reports[0][0].directory_avg_route_messages;
        let hops_large = sweep.reports[1][0].directory_avg_route_messages;
        assert!(hops_small >= 1.0);
        assert!(
            hops_large > hops_small,
            "bigger rings should need more hops per routed lookup ({hops_small:.2} -> {hops_large:.2})"
        );
        assert!(
            hops_large < hops_small * 2.0,
            "per-route hops grew super-logarithmically: {hops_small:.2} -> {hops_large:.2} \
             (log ratio is ≈1.6, linear would be 4.0)"
        );

        let small = extract_series(&sweep.reports[0][0], Series::JobDirectory, Stat::Avg);
        let large = extract_series(&sweep.reports[1][0], Series::JobDirectory, Stat::Avg);
        assert!(small >= 1.0, "every scheduled job issues at least one hop ({small:.2})");
        assert!(
            large < small * 3.0,
            "per-job directory messages must grow clearly sub-linearly \
             (4× size growth): {small:.2} -> {large:.2}"
        );
    }

    #[test]
    fn backend_comparison_table_tracks_the_log_model() {
        let options = WorkloadOptions::quick();
        let profiles = [PopulationProfile::new(50)];
        let sweeps: Vec<ScalabilitySweep> = DirectoryBackend::ALL
            .iter()
            .map(|&b| run_sweep_with_backend(&options, &[10, 20], &profiles, b))
            .collect();
        let table = backend_directory_comparison(&sweeps);
        assert_eq!(table.len(), 2);
        // size, log₂ ref, then (msgs/route, msgs/job, lookup s/job,
        // publish msgs/gfa) for each of the three backends.
        assert_eq!(table.columns.len(), 2 + 4 * DirectoryBackend::ALL.len());
        let col = |backend: DirectoryBackend, offset: usize| -> usize {
            let bi = DirectoryBackend::ALL.iter().position(|&b| b == backend).unwrap();
            2 + 4 * bi + offset
        };
        for (row, size) in table.rows.iter().zip([10f64, 20.0]) {
            let log_ref: f64 = row[1].parse().unwrap();
            assert_eq!(log_ref, size.log2().ceil());
            // The ideal backend charges exactly the modelled ⌈log₂ n⌉ per
            // routed lookup; the overlay backends' measured route costs must
            // be positive and of the same order as the model (Chord within
            // 2×; MAAN adds the walk to the first populated arc, within 3×).
            let ideal_per_route: f64 = row[col(DirectoryBackend::Ideal, 0)].parse().unwrap();
            let chord_per_route: f64 = row[col(DirectoryBackend::Chord, 0)].parse().unwrap();
            let maan_per_route: f64 = row[col(DirectoryBackend::Maan, 0)].parse().unwrap();
            assert!((ideal_per_route - log_ref).abs() < 1e-9);
            assert!(chord_per_route >= 1.0);
            assert!(
                chord_per_route < 2.0 * log_ref,
                "measured hops {chord_per_route:.2} far from the O(log n) model {log_ref}"
            );
            assert!(maan_per_route >= 1.0);
            assert!(
                maan_per_route < 3.0 * log_ref,
                "MAAN route cost {maan_per_route:.2} far from the O(log n) model {log_ref}"
            );
            // Per-job totals add the +k cursor cost of the ranks probed, so
            // they are at least one routed lookup each.  MAAN's per-job
            // figure also carries boundary-crossing advances, so it cannot
            // undercut a single message per job either.
            let ideal_per_job: f64 = row[col(DirectoryBackend::Ideal, 1)].parse().unwrap();
            let chord_per_job: f64 = row[col(DirectoryBackend::Chord, 1)].parse().unwrap();
            let maan_per_job: f64 = row[col(DirectoryBackend::Maan, 1)].parse().unwrap();
            assert!(ideal_per_job >= log_ref);
            assert!(chord_per_job >= 1.0);
            assert!(maan_per_job >= 1.0);
            // Lookup time is charged at hops × latency (default 0.05 s).
            let ideal_secs: f64 = row[col(DirectoryBackend::Ideal, 2)].parse().unwrap();
            let chord_secs: f64 = row[col(DirectoryBackend::Chord, 2)].parse().unwrap();
            assert!((ideal_secs - ideal_per_job * 0.05).abs() < 0.01);
            assert!(chord_secs > 0.0);
            // Publish traffic: only the MAAN backend routes its quote
            // mutations (here the n initial subscribes), so its per-GFA
            // publish average is positive while the central stores report 0.
            let ideal_publish: f64 = row[col(DirectoryBackend::Ideal, 3)].parse().unwrap();
            let chord_publish: f64 = row[col(DirectoryBackend::Chord, 3)].parse().unwrap();
            let maan_publish: f64 = row[col(DirectoryBackend::Maan, 3)].parse().unwrap();
            assert_eq!(ideal_publish, 0.0);
            assert_eq!(chord_publish, 0.0);
            assert!(
                maan_publish >= 2.0,
                "every GFA publishes one put per attribute at minimum (got {maan_publish:.2})"
            );
        }
    }
}
