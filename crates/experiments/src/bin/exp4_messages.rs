//! Experiment 4 binary: local/remote message complexity per GFA
//! (regenerates Figure 9).
//!
//! Usage: `exp4_messages [--quick] [--out DIR]`

use std::path::PathBuf;

use grid_experiments::obs::percentile_panel;
use grid_experiments::workloads::WorkloadOptions;
use grid_experiments::{exp3, exp4};

fn parse_args() -> (WorkloadOptions, PathBuf) {
    let mut options = WorkloadOptions::default();
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options = WorkloadOptions::quick(),
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            "--seed" => {
                options.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    (options, out)
}

fn main() {
    let (options, out) = parse_args();
    eprintln!("running experiment 4 (message complexity per GFA)…");
    let sweep = exp3::run(&options);

    let figures = [
        ("fig9a_remote_messages.csv", exp4::figure9a(&sweep)),
        ("fig9b_local_messages.csv", exp4::figure9b(&sweep)),
        ("fig9c_total_messages.csv", exp4::figure9c(&sweep)),
    ];
    for (name, table) in &figures {
        println!("{}", table.to_ascii());
        let path = out.join(name);
        table.write_csv(&path).expect("failed to write CSV");
        eprintln!("wrote {}", path.display());
    }
    if let Some(report) = sweep.report_for(100) {
        println!(
            "{}",
            percentile_panel("exp4 message complexity, 100 % OFT", report).to_ascii()
        );
    }
}
