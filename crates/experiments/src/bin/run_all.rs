//! Regenerates every table and figure of the paper in one run and writes the
//! CSVs plus a markdown summary (paper vs. measured) under `results/`.
//!
//! Usage: `run_all [--quick] [--out DIR] [--seed N] [--jobs N]`
//!
//! `--quick` uses 1/8 of the paper's job counts and a reduced Experiment 5
//! grid; the full run takes a few minutes in release mode.  `--jobs N` caps
//! the Experiment 5 sweep's worker pool (default: all cores); the emitted
//! CSVs are bitwise-identical for every `--jobs` value.

use std::fs;
use std::path::PathBuf;

use grid_experiments::exp5::Stat;
use grid_experiments::obs::percentile_summary;
use grid_experiments::summary::HeadlineClaims;
use grid_experiments::workloads::WorkloadOptions;
use grid_experiments::{exp1, exp2, exp3, exp4, exp5, exp6, exp7};
use grid_workload::PopulationProfile;

fn parse_args() -> (WorkloadOptions, PathBuf, bool, usize) {
    let mut options = WorkloadOptions::default();
    let mut out = PathBuf::from("results");
    let mut quick = false;
    let mut jobs = grid_experiments::parallel::default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                options = WorkloadOptions::quick();
                quick = true;
            }
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            "--seed" => {
                options.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .expect("--jobs needs a worker count")
                    .parse()
                    .expect("worker count must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    (options, out, quick, jobs)
}

fn main() {
    let (options, out, quick, jobs) = parse_args();
    fs::create_dir_all(&out).expect("failed to create output directory");

    eprintln!("[1/7] experiment 1: independent resources");
    let e1 = exp1::run(&options);
    exp1::table2(&e1)
        .write_csv(&out.join("table2_independent.csv"))
        .expect("write table2");

    eprintln!("[2/7] experiment 2: federation without economy");
    let e2 = exp2::run(&options);
    exp2::table3(&e2)
        .write_csv(&out.join("table3_federation.csv"))
        .expect("write table3");
    exp2::figure2a(&e2)
        .write_csv(&out.join("fig2a_utilization.csv"))
        .expect("write fig2a");
    exp2::figure2b(&e2)
        .write_csv(&out.join("fig2b_job_migration.csv"))
        .expect("write fig2b");

    eprintln!("[3/7] experiment 3: economy, 11 population profiles");
    let sweep = exp3::run(&options);
    for (name, table) in [
        ("fig3a_incentive.csv", exp3::figure3a(&sweep)),
        ("fig3b_remote_jobs.csv", exp3::figure3b(&sweep)),
        ("fig4_utilization.csv", exp3::figure4(&sweep)),
        ("fig5_job_processing.csv", exp3::figure5(&sweep)),
        ("fig6_rejected.csv", exp3::figure6(&sweep)),
        ("fig7a_response_excl.csv", exp3::figure7a(&sweep)),
        ("fig7b_budget_excl.csv", exp3::figure7b(&sweep)),
        ("fig8a_response_incl.csv", exp3::figure8a(&sweep)),
        ("fig8b_budget_incl.csv", exp3::figure8b(&sweep)),
    ] {
        table.write_csv(&out.join(name)).expect("write exp3 figure");
    }

    eprintln!("[4/7] experiment 4: message complexity per GFA");
    for (name, table) in [
        ("fig9a_remote_messages.csv", exp4::figure9a(&sweep)),
        ("fig9b_local_messages.csv", exp4::figure9b(&sweep)),
        ("fig9c_total_messages.csv", exp4::figure9c(&sweep)),
    ] {
        table.write_csv(&out.join(name)).expect("write exp4 figure");
    }

    eprintln!("[5/7] experiment 5: system size 10–50, all three directory backends");
    let (sizes, exp5_profiles): (Vec<usize>, Vec<PopulationProfile>) = if quick {
        (
            vec![10, 20, 30],
            vec![PopulationProfile::new(0), PopulationProfile::new(100)],
        )
    } else {
        (exp5::DEFAULT_SIZES.to_vec(), exp5::default_profiles())
    };
    let backend_sweeps: Vec<_> = grid_federation_core::DirectoryBackend::ALL
        .iter()
        .map(|&b| exp5::run_sweep_with_backend_jobs(&options, &sizes, &exp5_profiles, b, jobs))
        .collect();
    // The paper's own panels come from the ideal sweep, selected by backend
    // rather than position so reordering DirectoryBackend::ALL cannot
    // silently swap the canonical CSVs.
    let scal = backend_sweeps
        .iter()
        .find(|s| s.backend == grid_federation_core::DirectoryBackend::Ideal)
        .expect("the backend sweep must include the ideal directory");
    for stat in Stat::ALL {
        exp5::figure10(scal, stat)
            .write_csv(&out.join(format!("fig10_{}_msgs_per_job.csv", stat.label())))
            .expect("write fig10");
        exp5::figure11(scal, stat)
            .write_csv(&out.join(format!("fig11_{}_msgs_per_gfa.csv", stat.label())))
            .expect("write fig11");
        for sweep in &backend_sweeps {
            exp5::figure_directory(sweep, stat)
                .write_csv(&out.join(format!(
                    "directory_{}_msgs_per_job_{}.csv",
                    stat.label(),
                    sweep.backend.label()
                )))
                .expect("write directory panel");
        }
    }
    exp5::backend_directory_comparison(&backend_sweeps)
        .write_csv(&out.join("directory_backend_comparison.csv"))
        .expect("write backend comparison");

    eprintln!("[6/7] experiment 6: churn tolerance, both overlay backends");
    let churn_sweeps: Vec<exp6::ChurnSweep> =
        [grid_federation_core::DirectoryBackend::Chord, grid_federation_core::DirectoryBackend::Maan]
            .iter()
            .map(|&b| {
                exp6::run_sweep_with_backend_jobs(
                    &options,
                    &exp6::DEFAULT_LEVELS,
                    &exp6::DEFAULT_KS,
                    b,
                    jobs,
                )
            })
            .collect();
    for sweep in &churn_sweeps {
        exp6::assert_acceptance(sweep);
    }
    for (name, csv) in exp6::render_all_csvs(&churn_sweeps) {
        fs::write(out.join(format!("{name}.csv")), csv).expect("write exp6 table");
    }

    eprintln!("[7/7] experiment 7: unreliable network, all three backends");
    let fault_sweeps: Vec<exp7::UnreliableSweep> = grid_federation_core::DirectoryBackend::ALL
        .iter()
        .map(|&b| exp7::run_sweep_with_backend_jobs(&options, &exp7::DEFAULT_FAULTS, b, jobs))
        .collect();
    for sweep in &fault_sweeps {
        exp7::assert_acceptance(sweep);
    }
    let repair_comparisons: Vec<exp7::RepairComparison> =
        [grid_federation_core::DirectoryBackend::Chord, grid_federation_core::DirectoryBackend::Maan]
            .iter()
            .map(|&b| exp7::run_repair_comparison_jobs(&options, b, jobs))
            .collect();
    for cmp in &repair_comparisons {
        exp7::assert_repair_acceptance(cmp);
    }
    for (name, csv) in exp7::render_all_csvs(&fault_sweeps, &repair_comparisons) {
        fs::write(out.join(format!("{name}.csv")), csv).expect("write exp7 table");
    }

    // The audit-ledger digest manifest: one line per federation run, each a
    // hash-chained commitment to that run's full job/bank/message history.
    // Re-running with the same options must reproduce this file byte for
    // byte (CI asserts exactly that against the committed copy), which
    // replaces diffing the 30+ CSVs above as the determinism check.
    let mut manifest = String::new();
    manifest.push_str(&format!("exp1/independent {}\n", e1.report.digest));
    manifest.push_str(&format!("exp2/independent {}\n", e2.independent.digest));
    manifest.push_str(&format!("exp2/federated {}\n", e2.federated.digest));
    for (profile, report) in sweep.profiles.iter().zip(&sweep.reports) {
        manifest.push_str(&format!("exp3/{} {}\n", profile.label(), report.digest));
    }
    manifest.push_str(&exp5::digest_manifest(&backend_sweeps));
    manifest.push_str(&exp6::digest_manifest(&churn_sweeps));
    manifest.push_str(&exp7::digest_manifest(&fault_sweeps, &repair_comparisons));
    fs::write(out.join("MANIFEST_digests.txt"), &manifest).expect("write digest manifest");

    // The cross-experiment percentile summary: p50/p90/p99 of every
    // run-scope distribution for each headline report.  Read-only over the
    // registries the runs above already produced — it adds a CSV without
    // perturbing any digest in the manifest.
    let mut panels: Vec<(String, &grid_federation_core::FederationReport)> = vec![
        ("exp1/independent".to_string(), &e1.report),
        ("exp2/independent".to_string(), &e2.independent),
        ("exp2/federated".to_string(), &e2.federated),
    ];
    for (profile, report) in sweep.profiles.iter().zip(&sweep.reports) {
        panels.push((format!("exp3/{}", profile.label()), report));
    }
    let panel_refs: Vec<(&str, &grid_federation_core::FederationReport)> =
        panels.iter().map(|(label, report)| (label.as_str(), *report)).collect();
    percentile_summary(&panel_refs)
        .write_csv(&out.join("percentile_summary.csv"))
        .expect("write percentile summary");

    let claims = HeadlineClaims::extract(&e2, &sweep);
    let claims_table = claims.to_table();
    println!("{}", claims_table.to_ascii());
    claims_table
        .write_csv(&out.join("headline_claims.csv"))
        .expect("write headline claims");
    let mut md = String::from("# Measured headline results\n\n```\n");
    md.push_str(&claims_table.to_ascii());
    md.push_str("```\n");
    md.push_str(&format!(
        "\nDirectional claims hold: {}\n",
        claims.directional_claims_hold()
    ));
    fs::write(out.join("summary.md"), md).expect("write summary.md");
    eprintln!("done: results written to {}", out.display());
}
