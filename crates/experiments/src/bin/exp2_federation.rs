//! Experiment 2 binary: federation without economy (regenerates Table 3 and
//! Figure 2).
//!
//! Usage: `exp2_federation [--quick] [--out DIR] [--metrics-out FILE]
//! [--trace-out FILE]`

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

use grid_experiments::obs::{percentile_panel, ObsArgs};
use grid_experiments::workloads::WorkloadOptions;
use grid_experiments::exp2;
use grid_federation_core::SpanCollector;

fn parse_args() -> (WorkloadOptions, PathBuf, ObsArgs) {
    let mut options = WorkloadOptions::default();
    let mut out = PathBuf::from("results");
    let mut obs = ObsArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if obs.try_parse(&arg, &mut args) {
            continue;
        }
        match arg.as_str() {
            "--quick" => options = WorkloadOptions::quick(),
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            "--seed" => {
                options.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    (options, out, obs)
}

fn main() {
    let (options, out, obs) = parse_args();
    eprintln!("running experiment 2 (federation without economy)…");
    let tracer = obs
        .wants_trace()
        .then(|| Rc::new(RefCell::new(SpanCollector::new())));
    let result = if tracer.is_some() {
        exp2::run_with_observers(&options, tracer.clone(), None)
    } else {
        exp2::run(&options)
    };

    let table3 = exp2::table3(&result);
    let fig2a = exp2::figure2a(&result);
    let fig2b = exp2::figure2b(&result);
    println!("{}", table3.to_ascii());
    println!("{}", fig2a.to_ascii());
    println!("{}", fig2b.to_ascii());
    println!("{}", percentile_panel("exp2 federated", &result.federated).to_ascii());
    println!(
        "mean acceptance: {:.2} % (independent) -> {:.2} % (federation)",
        result.independent.mean_acceptance_rate(),
        result.federated.mean_acceptance_rate()
    );

    for (name, table) in [
        ("table3_federation.csv", &table3),
        ("fig2a_utilization.csv", &fig2a),
        ("fig2b_job_migration.csv", &fig2b),
    ] {
        let path = out.join(name);
        table.write_csv(&path).expect("failed to write CSV");
        eprintln!("wrote {}", path.display());
    }
    let collector = tracer.as_ref().map(|t| t.borrow());
    let written = obs
        .write(&result.federated, collector.as_deref())
        .expect("failed to write observability artifacts");
    for path in written {
        eprintln!("wrote {}", path.display());
    }
}
