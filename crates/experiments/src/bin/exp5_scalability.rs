//! Experiment 5 binary: message complexity as the federation scales from 10
//! to 50 clusters (regenerates Figures 10 and 11), run against one or all
//! directory backends, plus the per-job directory-message panels and the
//! backend comparison table that validate the paper's `O(log n)` query-cost
//! assumption with measured Chord hops and the MAAN backend's genuinely
//! distributed range walks (publish traffic included).
//!
//! Usage: `exp5_scalability [--quick] [--smoke]
//!         [--backend ideal|chord|maan|all] [--seed N] [--out DIR]
//!         [--jobs N] [--stream-smoke] [--stream-jobs N]`
//!
//! `--jobs N` caps the sweep's worker pool (default: all cores).  Sweep
//! output is bitwise-identical for every `--jobs` value.
//!
//! `--smoke` is the CI configuration: quick workloads on sizes 8 and 16 with
//! a single 50 % OFT profile — small enough to run on every push, complete
//! enough to exercise the whole sweep path.
//!
//! `--stream-smoke` runs the million-job streaming check instead of the
//! sweep: it drains a `--stream-jobs N` (default 1 000 000) job synthetic
//! stream through a digest-folding consumer without ever materialising a
//! `Vec<Job>`, then prints throughput and the peak-memory proxy (bytes the
//! stream holds vs. what the eager path would allocate).

use std::path::PathBuf;
use std::time::Instant;

use grid_experiments::exp5::{self, ScalabilitySweep, Stat};
use grid_experiments::obs::percentile_panel;
use grid_experiments::workloads::{scaled_stream_config, WorkloadOptions};
use grid_federation_core::DirectoryBackend;
use grid_workload::{Job, PopulationProfile};

struct Args {
    options: WorkloadOptions,
    out: PathBuf,
    backends: Vec<DirectoryBackend>,
    smoke: bool,
    jobs: usize,
    stream_smoke: bool,
    stream_jobs: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        options: WorkloadOptions::default(),
        out: PathBuf::from("results"),
        backends: DirectoryBackend::ALL.to_vec(),
        smoke: false,
        jobs: grid_experiments::parallel::default_jobs(),
        stream_smoke: false,
        stream_jobs: 1_000_000,
    };
    // Applied after the loop so flag order cannot matter (`--seed 7 --smoke`
    // must not have the quick preset clobber the seed).
    let mut seed: Option<u64> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.options = WorkloadOptions::quick(),
            "--smoke" => {
                args.options = WorkloadOptions::quick();
                args.smoke = true;
            }
            "--out" => args.out = PathBuf::from(argv.next().expect("--out needs a directory")),
            "--seed" => {
                seed = Some(
                    argv.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("seed must be an integer"),
                );
            }
            "--backend" => {
                let which = argv.next().expect("--backend needs ideal|chord|maan|all");
                args.backends = match which.as_str() {
                    // "both" predates the MAAN backend; keep it as an alias
                    // for the full set so existing invocations still sweep
                    // everything.
                    "all" | "both" => DirectoryBackend::ALL.to_vec(),
                    one => vec![one.parse().unwrap_or_else(|e: String| panic!("{e}"))],
                };
            }
            "--jobs" => {
                args.jobs = argv
                    .next()
                    .expect("--jobs needs a worker count")
                    .parse()
                    .expect("worker count must be an integer");
            }
            "--stream-smoke" => args.stream_smoke = true,
            "--stream-jobs" => {
                args.stream_jobs = argv
                    .next()
                    .expect("--stream-jobs needs a job count")
                    .parse()
                    .expect("job count must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if let Some(seed) = seed {
        args.options.seed = seed;
    }
    args
}

/// SplitMix64 finalizer — the same mixer the audit ledger uses, so the smoke
/// digest has full avalanche and any generation drift flips it.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drains a `total_jobs`-job synthetic stream through a digest-folding
/// consumer.  Nothing is materialised: peak memory is the three scalar
/// arrays the stream's calibration phases hold (20 B/job), not the
/// `size_of::<Job>()`-per-job an eager `Vec<Job>` would pin, so the run
/// completes in constant working memory per drained job.
fn stream_smoke(total_jobs: usize, options: &WorkloadOptions) {
    let cfg = scaled_stream_config(0, total_jobs, options);
    // fedlint: allow(wall-clock) — wall-clock throughput *is* the smoke's
    // measurement; nothing simulated depends on it.
    let start = Instant::now();
    let stream = cfg.stream();
    let mut digest = 0u64;
    let mut jobs = 0usize;
    for job in stream {
        digest = mix(digest ^ job.id.seq as u64);
        digest = mix(digest ^ job.submit.to_bits());
        digest = mix(digest ^ u64::from(job.processors));
        digest = mix(digest ^ job.length_mi.to_bits());
        jobs += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(jobs, total_jobs, "the stream must yield exactly the requested job count");
    // The stream's resident state: submits (f64) + processors (u32) +
    // runtimes (f64) per job, vs. the eager path's full Job per job.
    let streamed_bytes = total_jobs * (8 + 4 + 8);
    let eager_bytes = total_jobs * std::mem::size_of::<Job>();
    println!("stream-smoke jobs={jobs} digest={digest:016x}");
    println!(
        "stream-smoke seconds={elapsed:.3} jobs_per_sec={:.0}",
        jobs as f64 / elapsed.max(1e-9)
    );
    println!(
        "stream-smoke peak_bytes_streamed={streamed_bytes} peak_bytes_eager={eager_bytes} ratio={:.2}",
        eager_bytes as f64 / streamed_bytes as f64
    );
}

fn main() {
    let args = parse_args();
    if args.stream_smoke {
        eprintln!(
            "running the streaming workload smoke: {} jobs, no materialisation…",
            args.stream_jobs
        );
        stream_smoke(args.stream_jobs, &args.options);
        return;
    }
    let backend_labels: Vec<&str> = args.backends.iter().map(|b| b.label()).collect();
    eprintln!(
        "running experiment 5 (system size sweep) against backend(s): {}…",
        backend_labels.join(", ")
    );

    let (sizes, profiles): (Vec<usize>, Vec<PopulationProfile>) = if args.smoke {
        (vec![8, 16], vec![PopulationProfile::new(50)])
    } else {
        (exp5::DEFAULT_SIZES.to_vec(), exp5::default_profiles())
    };
    let sweeps: Vec<ScalabilitySweep> = args
        .backends
        .iter()
        .map(|&backend| {
            exp5::run_sweep_with_backend_jobs(&args.options, &sizes, &profiles, backend, args.jobs)
        })
        .collect();

    let mut outputs = Vec::new();
    for sweep in &sweeps {
        // The paper's panels keep their historical file names for the default
        // (ideal) backend; other backends get a suffix.
        let suffix = match sweep.backend {
            DirectoryBackend::Ideal => String::new(),
            other => format!("_{}", other.label()),
        };
        for stat in Stat::ALL {
            outputs.push((
                format!("fig10_{}_msgs_per_job{suffix}.csv", stat.label()),
                exp5::figure10(sweep, stat),
            ));
            outputs.push((
                format!("fig11_{}_msgs_per_gfa{suffix}.csv", stat.label()),
                exp5::figure11(sweep, stat),
            ));
            outputs.push((
                format!(
                    "directory_{}_msgs_per_job_{}.csv",
                    stat.label(),
                    sweep.backend.label()
                ),
                exp5::figure_directory(sweep, stat),
            ));
        }
    }
    if sweeps.len() > 1 {
        outputs.push((
            "directory_backend_comparison.csv".to_string(),
            exp5::backend_directory_comparison(&sweeps),
        ));
    }

    for (name, table) in &outputs {
        println!("{}", table.to_ascii());
        let path = args.out.join(name);
        table.write_csv(&path).expect("failed to write CSV");
        eprintln!("wrote {}", path.display());
    }
    // The largest federation of the first backend is the sweep's headline run.
    if let Some((sweep, size)) = sweeps.first().zip(sizes.last()) {
        if let Some(report) = sweep.reports.last().and_then(|row| row.last()) {
            let label = format!("exp5 {} backend, {size} clusters", sweep.backend.label());
            println!("{}", percentile_panel(&label, report).to_ascii());
        }
    }
}
