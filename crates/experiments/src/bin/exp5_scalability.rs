//! Experiment 5 binary: message complexity as the federation scales from 10
//! to 50 clusters (regenerates Figures 10 and 11).
//!
//! Usage: `exp5_scalability [--quick] [--out DIR]`

use std::path::PathBuf;

use grid_experiments::exp5::{self, Stat};
use grid_experiments::workloads::WorkloadOptions;

fn parse_args() -> (WorkloadOptions, PathBuf) {
    let mut options = WorkloadOptions::default();
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options = WorkloadOptions::quick(),
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            "--seed" => {
                options.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    (options, out)
}

fn main() {
    let (options, out) = parse_args();
    eprintln!("running experiment 5 (system size 10–50)… this is the largest sweep");
    let sweep = exp5::run(&options);

    let mut outputs = Vec::new();
    for stat in Stat::ALL {
        outputs.push((
            format!("fig10_{}_msgs_per_job.csv", stat.label()),
            exp5::figure10(&sweep, stat),
        ));
        outputs.push((
            format!("fig11_{}_msgs_per_gfa.csv", stat.label()),
            exp5::figure11(&sweep, stat),
        ));
    }
    for (name, table) in &outputs {
        println!("{}", table.to_ascii());
        let path = out.join(name);
        table.write_csv(&path).expect("failed to write CSV");
        eprintln!("wrote {}", path.display());
    }
}
