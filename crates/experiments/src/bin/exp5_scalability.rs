//! Experiment 5 binary: message complexity as the federation scales from 10
//! to 50 clusters (regenerates Figures 10 and 11), run against one or all
//! directory backends, plus the per-job directory-message panels and the
//! backend comparison table that validate the paper's `O(log n)` query-cost
//! assumption with measured Chord hops and the MAAN backend's genuinely
//! distributed range walks (publish traffic included).
//!
//! Usage: `exp5_scalability [--quick] [--smoke]
//!         [--backend ideal|chord|maan|all] [--seed N] [--out DIR]
//!         [--jobs N]`
//!
//! `--jobs N` caps the sweep's worker pool (default: all cores).  Sweep
//! output is bitwise-identical for every `--jobs` value.
//!
//! `--smoke` is the CI configuration: quick workloads on sizes 8 and 16 with
//! a single 50 % OFT profile — small enough to run on every push, complete
//! enough to exercise the whole sweep path.

use std::path::PathBuf;

use grid_experiments::exp5::{self, ScalabilitySweep, Stat};
use grid_experiments::workloads::WorkloadOptions;
use grid_federation_core::DirectoryBackend;
use grid_workload::PopulationProfile;

struct Args {
    options: WorkloadOptions,
    out: PathBuf,
    backends: Vec<DirectoryBackend>,
    smoke: bool,
    jobs: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        options: WorkloadOptions::default(),
        out: PathBuf::from("results"),
        backends: DirectoryBackend::ALL.to_vec(),
        smoke: false,
        jobs: grid_experiments::parallel::default_jobs(),
    };
    // Applied after the loop so flag order cannot matter (`--seed 7 --smoke`
    // must not have the quick preset clobber the seed).
    let mut seed: Option<u64> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.options = WorkloadOptions::quick(),
            "--smoke" => {
                args.options = WorkloadOptions::quick();
                args.smoke = true;
            }
            "--out" => args.out = PathBuf::from(argv.next().expect("--out needs a directory")),
            "--seed" => {
                seed = Some(
                    argv.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("seed must be an integer"),
                );
            }
            "--backend" => {
                let which = argv.next().expect("--backend needs ideal|chord|maan|all");
                args.backends = match which.as_str() {
                    // "both" predates the MAAN backend; keep it as an alias
                    // for the full set so existing invocations still sweep
                    // everything.
                    "all" | "both" => DirectoryBackend::ALL.to_vec(),
                    one => vec![one.parse().unwrap_or_else(|e: String| panic!("{e}"))],
                };
            }
            "--jobs" => {
                args.jobs = argv
                    .next()
                    .expect("--jobs needs a worker count")
                    .parse()
                    .expect("worker count must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if let Some(seed) = seed {
        args.options.seed = seed;
    }
    args
}

fn main() {
    let args = parse_args();
    let backend_labels: Vec<&str> = args.backends.iter().map(|b| b.label()).collect();
    eprintln!(
        "running experiment 5 (system size sweep) against backend(s): {}…",
        backend_labels.join(", ")
    );

    let (sizes, profiles): (Vec<usize>, Vec<PopulationProfile>) = if args.smoke {
        (vec![8, 16], vec![PopulationProfile::new(50)])
    } else {
        (exp5::DEFAULT_SIZES.to_vec(), exp5::default_profiles())
    };
    let sweeps: Vec<ScalabilitySweep> = args
        .backends
        .iter()
        .map(|&backend| {
            exp5::run_sweep_with_backend_jobs(&args.options, &sizes, &profiles, backend, args.jobs)
        })
        .collect();

    let mut outputs = Vec::new();
    for sweep in &sweeps {
        // The paper's panels keep their historical file names for the default
        // (ideal) backend; other backends get a suffix.
        let suffix = match sweep.backend {
            DirectoryBackend::Ideal => String::new(),
            other => format!("_{}", other.label()),
        };
        for stat in Stat::ALL {
            outputs.push((
                format!("fig10_{}_msgs_per_job{suffix}.csv", stat.label()),
                exp5::figure10(sweep, stat),
            ));
            outputs.push((
                format!("fig11_{}_msgs_per_gfa{suffix}.csv", stat.label()),
                exp5::figure11(sweep, stat),
            ));
            outputs.push((
                format!(
                    "directory_{}_msgs_per_job_{}.csv",
                    stat.label(),
                    sweep.backend.label()
                ),
                exp5::figure_directory(sweep, stat),
            ));
        }
    }
    if sweeps.len() > 1 {
        outputs.push((
            "directory_backend_comparison.csv".to_string(),
            exp5::backend_directory_comparison(&sweeps),
        ));
    }

    for (name, table) in &outputs {
        println!("{}", table.to_ascii());
        let path = args.out.join(name);
        table.write_csv(&path).expect("failed to write CSV");
        eprintln!("wrote {}", path.display());
    }
}
