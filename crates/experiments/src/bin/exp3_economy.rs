//! Experiment 3 binary: federation with economy under eleven population
//! profiles (regenerates Figures 3–8).
//!
//! Usage: `exp3_economy [--quick] [--out DIR]`

use std::path::PathBuf;

use grid_experiments::exp3;
use grid_experiments::obs::percentile_panel;
use grid_experiments::workloads::WorkloadOptions;

fn parse_args() -> (WorkloadOptions, PathBuf) {
    let mut options = WorkloadOptions::default();
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options = WorkloadOptions::quick(),
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            "--seed" => {
                options.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    (options, out)
}

fn main() {
    let (options, out) = parse_args();
    eprintln!("running experiment 3 (economy, 11 population profiles)…");
    let sweep = exp3::run(&options);

    let figures = [
        ("fig3a_incentive.csv", exp3::figure3a(&sweep)),
        ("fig3b_remote_jobs.csv", exp3::figure3b(&sweep)),
        ("fig4_utilization.csv", exp3::figure4(&sweep)),
        ("fig5_job_processing.csv", exp3::figure5(&sweep)),
        ("fig6_rejected.csv", exp3::figure6(&sweep)),
        ("fig7a_response_excl.csv", exp3::figure7a(&sweep)),
        ("fig7b_budget_excl.csv", exp3::figure7b(&sweep)),
        ("fig8a_response_incl.csv", exp3::figure8a(&sweep)),
        ("fig8b_budget_incl.csv", exp3::figure8b(&sweep)),
    ];
    for (name, table) in &figures {
        println!("{}", table.to_ascii());
        let path = out.join(name);
        table.write_csv(&path).expect("failed to write CSV");
        eprintln!("wrote {}", path.display());
    }
    if let Some(report) = sweep.report_for(100) {
        println!("{}", percentile_panel("exp3 economy, 100 % OFT", report).to_ascii());
    }
}
