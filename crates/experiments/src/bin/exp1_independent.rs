//! Experiment 1 binary: independent resources (regenerates Table 2).
//!
//! Usage: `exp1_independent [--quick] [--out DIR] [--metrics-out FILE]
//! [--trace-out FILE]`

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

use grid_experiments::obs::{percentile_panel, ObsArgs};
use grid_experiments::workloads::WorkloadOptions;
use grid_experiments::exp1;
use grid_federation_core::SpanCollector;

fn parse_args() -> (WorkloadOptions, PathBuf, ObsArgs) {
    let mut options = WorkloadOptions::default();
    let mut out = PathBuf::from("results");
    let mut obs = ObsArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if obs.try_parse(&arg, &mut args) {
            continue;
        }
        match arg.as_str() {
            "--quick" => options = WorkloadOptions::quick(),
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    (options, out, obs)
}

fn main() {
    let (options, out, obs) = parse_args();
    eprintln!("running experiment 1 (independent resources)…");
    let tracer = obs
        .wants_trace()
        .then(|| Rc::new(RefCell::new(SpanCollector::new())));
    let result = if tracer.is_some() {
        exp1::run_with_observers(&options, tracer.clone(), None)
    } else {
        exp1::run(&options)
    };
    let table = exp1::table2(&result);
    println!("{}", table.to_ascii());
    println!("{}", percentile_panel("exp1 independent", &result.report).to_ascii());
    println!(
        "mean acceptance rate: {:.2} %   mean utilization: {:.2} %",
        result.report.mean_acceptance_rate(),
        result.report.mean_utilization_percent()
    );
    let path = out.join("table2_independent.csv");
    table.write_csv(&path).expect("failed to write CSV");
    eprintln!("wrote {}", path.display());
    let collector = tracer.as_ref().map(|t| t.borrow());
    let written = obs
        .write(&result.report, collector.as_deref())
        .expect("failed to write observability artifacts");
    for path in written {
        eprintln!("wrote {}", path.display());
    }
}
