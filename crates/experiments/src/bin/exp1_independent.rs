//! Experiment 1 binary: independent resources (regenerates Table 2).
//!
//! Usage: `exp1_independent [--quick] [--out DIR]`

use std::path::PathBuf;

use grid_experiments::exp1;
use grid_experiments::workloads::WorkloadOptions;

fn parse_args() -> (WorkloadOptions, PathBuf) {
    let mut options = WorkloadOptions::default();
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options = WorkloadOptions::quick(),
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    (options, out)
}

fn main() {
    let (options, out) = parse_args();
    eprintln!("running experiment 1 (independent resources)…");
    let result = exp1::run(&options);
    let table = exp1::table2(&result);
    println!("{}", table.to_ascii());
    println!(
        "mean acceptance rate: {:.2} %   mean utilization: {:.2} %",
        result.report.mean_acceptance_rate(),
        result.report.mean_utilization_percent()
    );
    let path = out.join("table2_independent.csv");
    table.write_csv(&path).expect("failed to write CSV");
    eprintln!("wrote {}", path.display());
}
