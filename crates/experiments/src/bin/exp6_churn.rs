//! Experiment 6 binary: churn tolerance of the self-healing overlay —
//! lookup availability, retry/fallback traffic, stabilization cost and
//! latency degradation swept over churn level × replication factor
//! k ∈ {1, 2, 3} on the overlay backends.
//!
//! Usage: `exp6_churn [--quick] [--smoke] [--knee] [--backend chord|maan|all]
//!         [--seed N] [--out DIR] [--jobs N]`
//!
//! `--knee` runs the availability-knee ramp instead of the grid sweep:
//! churn intensity doubles from the moderate level (k pinned at 3) until
//! the ≥ 99 % lookup-success gate breaks, and the table reports the knee.
//!
//! `--smoke` is the CI configuration: quick workloads with the moderate
//! churn level only, all three replication factors, both overlay backends —
//! small enough for every push, and it still pins the acceptance criterion
//! (k = 3 keeps moderate churn at ≥ 99 % lookup success).  The acceptance
//! assertions run in *every* mode, so a full run is a stronger gate, never
//! a weaker one.

use std::path::PathBuf;

use grid_experiments::exp6::{self, ChurnSweep};
use grid_experiments::obs::percentile_panel;
use grid_experiments::workloads::WorkloadOptions;
use grid_federation_core::DirectoryBackend;

/// The backends churn is interesting on: the central ideal store has no
/// ring to degrade, so the sweep covers the two overlay backends.
const OVERLAY_BACKENDS: [DirectoryBackend; 2] =
    [DirectoryBackend::Chord, DirectoryBackend::Maan];

struct Args {
    options: WorkloadOptions,
    out: PathBuf,
    backends: Vec<DirectoryBackend>,
    smoke: bool,
    knee: bool,
    jobs: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        options: WorkloadOptions::default(),
        out: PathBuf::from("results"),
        backends: OVERLAY_BACKENDS.to_vec(),
        smoke: false,
        knee: false,
        jobs: grid_experiments::parallel::default_jobs(),
    };
    // Applied after the loop so flag order cannot matter.
    let mut seed: Option<u64> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.options = WorkloadOptions::quick(),
            "--smoke" => {
                args.options = WorkloadOptions::quick();
                args.smoke = true;
            }
            "--knee" => args.knee = true,
            "--out" => args.out = PathBuf::from(argv.next().expect("--out needs a directory")),
            "--seed" => {
                seed = Some(
                    argv.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("seed must be an integer"),
                );
            }
            "--backend" => {
                let which = argv.next().expect("--backend needs chord|maan|all");
                args.backends = match which.as_str() {
                    "all" => OVERLAY_BACKENDS.to_vec(),
                    one => vec![one.parse().unwrap_or_else(|e: String| panic!("{e}"))],
                };
            }
            "--jobs" => {
                args.jobs = argv
                    .next()
                    .expect("--jobs needs a worker count")
                    .parse()
                    .expect("worker count must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if let Some(seed) = seed {
        args.options.seed = seed;
    }
    args
}

/// Doublings of the moderate churn rate the `--knee` ramp tries before
/// giving up on breaking the lookup-success gate.
const KNEE_MAX_STEPS: usize = 8;

fn run_knee(args: &Args) {
    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    for &backend in &args.backends {
        let sweep = exp6::run_knee_with_backend(&args.options, backend, KNEE_MAX_STEPS);
        let table = exp6::figure_knee(&sweep);
        println!("{}", table.to_ascii());
        match sweep.knee {
            Some(knee) => eprintln!(
                "{}: k={} lookup-success gate breaks at {knee}x moderate churn",
                backend.label(),
                exp6::KNEE_REPLICATION
            ),
            None => eprintln!(
                "{}: gate survived {KNEE_MAX_STEPS} doublings of moderate churn",
                backend.label()
            ),
        }
        let path = args.out.join(format!("churn_knee_{}.csv", backend.label()));
        table.write_csv(&path).expect("failed to write CSV");
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args = parse_args();
    let backend_labels: Vec<&str> = args.backends.iter().map(|b| b.label()).collect();
    if args.knee {
        eprintln!(
            "running experiment 6 knee ramp (churn intensity until the k=3 gate breaks) against backend(s): {}…",
            backend_labels.join(", ")
        );
        run_knee(&args);
        return;
    }
    eprintln!(
        "running experiment 6 (churn tolerance sweep) against backend(s): {}…",
        backend_labels.join(", ")
    );

    let levels: Vec<exp6::ChurnLevel> = if args.smoke {
        // Moderate churn only — the level the acceptance criterion names.
        vec![exp6::DEFAULT_LEVELS[1]]
    } else {
        exp6::DEFAULT_LEVELS.to_vec()
    };
    let sweeps: Vec<ChurnSweep> = args
        .backends
        .iter()
        .map(|&backend| {
            exp6::run_sweep_with_backend_jobs(
                &args.options,
                &levels,
                &exp6::DEFAULT_KS,
                backend,
                args.jobs,
            )
        })
        .collect();

    for sweep in &sweeps {
        exp6::assert_acceptance(sweep);
    }

    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    for sweep in &sweeps {
        for (name, table) in [
            ("churn_availability", exp6::figure_availability(sweep)),
            ("churn_retries", exp6::figure_retries(sweep)),
            ("churn_stabilization", exp6::figure_stabilization(sweep)),
            ("churn_latency", exp6::figure_latency(sweep)),
        ] {
            println!("{}", table.to_ascii());
            let path = args.out.join(format!("{name}_{}.csv", sweep.backend.label()));
            table.write_csv(&path).expect("failed to write CSV");
            eprintln!("wrote {}", path.display());
        }
    }
    // Headline percentile panel: the first backend's baseline run.
    if let Some(sweep) = sweeps.first() {
        let label = format!("exp6 {} backend, zero-churn baseline", sweep.backend.label());
        println!("{}", percentile_panel(&label, &sweep.baseline).to_ascii());
    }
    eprintln!("acceptance criteria upheld: zero-churn baseline clean, moderate churn with k=3 ≥ 99% lookup success");
}
