//! Experiment 7 binary: the DBC negotiation protocol over an unreliable
//! network — fault-level sweep (loss × jitter × duplication) on every
//! directory backend, plus the reactive-vs-periodic ring-repair comparison
//! on the overlay backends.
//!
//! Usage: `exp7_unreliable [--quick] [--smoke] [--backend ideal|chord|maan|all]
//!         [--seed N] [--out DIR] [--jobs N]`
//!
//! `--smoke` is the CI configuration: quick workloads with the moderate
//! fault level only, all three backends, plus the repair comparison —
//! small enough for every push, and it still pins the acceptance criteria
//! (outcome digest bit-identical to lossless, 100% eventual negotiation
//! completion, reactive repair beating the periodic mean faulted-lookup
//! wait).  The acceptance assertions run in *every* mode, so a full run is
//! a stronger gate, never a weaker one.

use std::path::PathBuf;

use grid_experiments::exp7::{self, RepairComparison, UnreliableSweep};
use grid_experiments::obs::percentile_panel;
use grid_experiments::workloads::WorkloadOptions;
use grid_federation_core::DirectoryBackend;

/// The repair comparison only makes sense where there is a ring to repair.
const OVERLAY_BACKENDS: [DirectoryBackend; 2] =
    [DirectoryBackend::Chord, DirectoryBackend::Maan];

struct Args {
    options: WorkloadOptions,
    out: PathBuf,
    backends: Vec<DirectoryBackend>,
    smoke: bool,
    jobs: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        options: WorkloadOptions::default(),
        out: PathBuf::from("results"),
        backends: DirectoryBackend::ALL.to_vec(),
        smoke: false,
        jobs: grid_experiments::parallel::default_jobs(),
    };
    // Applied after the loop so flag order cannot matter.
    let mut seed: Option<u64> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.options = WorkloadOptions::quick(),
            "--smoke" => {
                args.options = WorkloadOptions::quick();
                args.smoke = true;
            }
            "--out" => args.out = PathBuf::from(argv.next().expect("--out needs a directory")),
            "--seed" => {
                seed = Some(
                    argv.next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("seed must be an integer"),
                );
            }
            "--backend" => {
                let which = argv.next().expect("--backend needs ideal|chord|maan|all");
                args.backends = match which.as_str() {
                    "all" => DirectoryBackend::ALL.to_vec(),
                    one => vec![one.parse().unwrap_or_else(|e: String| panic!("{e}"))],
                };
            }
            "--jobs" => {
                args.jobs = argv
                    .next()
                    .expect("--jobs needs a worker count")
                    .parse()
                    .expect("worker count must be an integer");
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if let Some(seed) = seed {
        args.options.seed = seed;
    }
    args
}

fn main() {
    let args = parse_args();
    let backend_labels: Vec<&str> = args.backends.iter().map(|b| b.label()).collect();
    eprintln!(
        "running experiment 7 (unreliable network) against backend(s): {}…",
        backend_labels.join(", ")
    );

    let levels: Vec<exp7::FaultLevel> = if args.smoke {
        // Moderate faults only — the level the acceptance criterion names.
        vec![exp7::DEFAULT_FAULTS[1]]
    } else {
        exp7::DEFAULT_FAULTS.to_vec()
    };
    let sweeps: Vec<UnreliableSweep> = args
        .backends
        .iter()
        .map(|&backend| {
            exp7::run_sweep_with_backend_jobs(&args.options, &levels, backend, args.jobs)
        })
        .collect();
    for sweep in &sweeps {
        exp7::assert_acceptance(sweep);
    }

    let comparisons: Vec<RepairComparison> = OVERLAY_BACKENDS
        .iter()
        .filter(|b| args.backends.contains(b))
        .map(|&backend| exp7::run_repair_comparison_jobs(&args.options, backend, args.jobs))
        .collect();
    for cmp in &comparisons {
        exp7::assert_repair_acceptance(cmp);
    }

    std::fs::create_dir_all(&args.out).expect("failed to create output directory");
    for sweep in &sweeps {
        let table = exp7::figure_fault_traffic(sweep);
        println!("{}", table.to_ascii());
        let path = args
            .out
            .join(format!("network_fault_traffic_{}.csv", sweep.backend.label()));
        table.write_csv(&path).expect("failed to write CSV");
        eprintln!("wrote {}", path.display());
    }
    if !comparisons.is_empty() {
        let table = exp7::figure_repair_tradeoff(&comparisons);
        println!("{}", table.to_ascii());
        let path = args.out.join("network_repair_tradeoff.csv");
        table.write_csv(&path).expect("failed to write CSV");
        eprintln!("wrote {}", path.display());
    }
    // Headline percentile panel: the worst fault level of the first backend
    // (the run where retransmission backoff actually moves the tails).
    if let Some(sweep) = sweeps.first() {
        if let Some(report) = sweep.reports.last() {
            let label = format!("exp7 {} backend, heaviest fault level", sweep.backend.label());
            println!("{}", percentile_panel(&label, report).to_ascii());
        }
    }
    eprintln!(
        "acceptance criteria upheld: outcomes bit-identical to lossless on every \
         backend and fault level, all negotiations completed, reactive repair \
         beat the periodic mean faulted-lookup wait"
    );
}
