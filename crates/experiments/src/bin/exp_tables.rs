//! Prints the static tables of the paper: Table 1 (resource configuration,
//! with prices recomputed from the pricing function) and Table 4 (the
//! qualitative superscheduler comparison).
//!
//! Usage: `exp_tables [--table 1|4]`

use grid_baselines::comparison;
use grid_cluster::paper_resources;
use grid_experiments::report::{f2, DataTable};
use grid_federation_core::{quote_price, PAPER_ACCESS_PRICE};

fn table1() -> DataTable {
    let resources = paper_resources();
    let max_mips = resources
        .iter()
        .map(|r| r.spec.mips)
        .fold(f64::MIN, f64::max);
    let mut t = DataTable::new(
        "Table 1: Workload and Resource Configuration",
        &[
            "Index",
            "Resource / Cluster Name",
            "Trace",
            "Processors",
            "MIPS (rating)",
            "Jobs (2 days)",
            "Quote (Table 1)",
            "Quote (Eq. 6)",
            "NIC Bandwidth (Gb/s)",
        ],
    );
    for (i, r) in resources.iter().enumerate() {
        t.push_row(vec![
            (i + 1).to_string(),
            r.spec.name.clone(),
            r.trace_name.to_string(),
            r.spec.processors.to_string(),
            f2(r.spec.mips),
            r.jobs_two_days.to_string(),
            f2(r.spec.price),
            f2(quote_price(PAPER_ACCESS_PRICE, max_mips, r.spec.mips)),
            f2(r.spec.bandwidth),
        ]);
    }
    t
}

fn main() {
    let mut which: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--table" => which = Some(args.next().expect("--table needs a number")),
            other => panic!("unknown argument: {other}"),
        }
    }
    match which.as_deref() {
        Some("1") => println!("{}", table1().to_ascii()),
        Some("4") => println!("{}", comparison::table4_ascii()),
        Some(other) => panic!("only tables 1 and 4 are static; got {other}"),
        None => {
            println!("{}", table1().to_ascii());
            println!("{}", comparison::table4_ascii());
        }
    }
}
