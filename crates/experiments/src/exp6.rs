//! Experiment 6 — churn tolerance (beyond the paper): lookup availability,
//! self-healing traffic and latency degradation as functions of churn rate
//! and the MAAN replication factor *k*.
//!
//! The paper's directory is evaluated on a static ring; this experiment
//! subjects the Table 1 federation to a seeded stochastic failure process
//! (exponential uptime/downtime, a tunable fraction of departures being
//! ungraceful crashes) and sweeps churn level × k ∈ {1, 2, 3} on each
//! overlay backend.  Reported per point:
//!
//! * **lookup success rate** — the fraction of ranking lookups the overlay
//!   could still answer (detours to live replicas count as answered);
//! * **retry traffic** — backoff retries plus local-only fallbacks at the
//!   GFAs, the graceful-degradation path;
//! * **stabilization traffic** — the publish-class messages the periodic
//!   repair rounds spend re-replicating and evicting ghosts;
//! * **latency degradation** — average job response time relative to the
//!   zero-churn baseline run of the same backend.
//!
//! A churn-free baseline runs alongside every sweep; its digest is folded
//! into the manifest with the churned runs, so the zero-churn differential
//! (`ChurnConfig` inert ⇒ static-ring digests) stays pinned in CI.

use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_federation_core::{ChurnConfig, DirectoryBackend, FederationReport};
use grid_workload::PopulationProfile;

use crate::parallel;
use crate::report::{f2, DataTable};
use crate::workloads::{paper_workloads, WorkloadOptions};

/// One churn intensity, parameterised as fractions of the trace duration so
/// quick and full runs see comparable failure densities.
#[derive(Debug, Clone, Copy)]
pub struct ChurnLevel {
    /// Label used in tables and manifest lines.
    pub label: &'static str,
    /// Mean node uptime as a fraction of the trace duration.
    pub uptime_fraction: f64,
    /// Mean downtime (before rejoining) as a fraction of the trace duration.
    pub downtime_fraction: f64,
    /// Probability that a departure is an ungraceful crash.
    pub crash_fraction: f64,
}

impl ChurnLevel {
    /// Concretises this level into a [`ChurnConfig`] for a given workload
    /// and replication factor.  Stabilization runs 48 rounds per trace.
    #[must_use]
    pub fn to_config(self, options: &WorkloadOptions, replication: usize) -> ChurnConfig {
        ChurnConfig {
            mean_uptime: self.uptime_fraction * options.duration,
            mean_downtime: self.downtime_fraction * options.duration,
            crash_fraction: self.crash_fraction,
            stabilization_interval: options.duration / 48.0,
            replication,
            horizon: options.duration,
            ..ChurnConfig::default()
        }
    }
}

/// The default churn grid: light (a node fails about once per trace),
/// moderate (every node cycles a few times) and heavy (rings spend much of
/// the trace degraded, departures mostly crashes).
pub const DEFAULT_LEVELS: [ChurnLevel; 3] = [
    ChurnLevel { label: "light", uptime_fraction: 1.0, downtime_fraction: 0.08, crash_fraction: 0.25 },
    ChurnLevel { label: "moderate", uptime_fraction: 0.4, downtime_fraction: 0.10, crash_fraction: 0.50 },
    ChurnLevel { label: "heavy", uptime_fraction: 0.15, downtime_fraction: 0.12, crash_fraction: 0.75 },
];

/// The replication factors the acceptance criterion sweeps.
pub const DEFAULT_KS: [usize; 3] = [1, 2, 3];

/// The sweep over churn levels and replication factors for one backend,
/// plus the churn-free baseline the degradation columns are relative to.
#[derive(Debug, Clone)]
pub struct ChurnSweep {
    /// The directory backend every run of this sweep used.
    pub backend: DirectoryBackend,
    /// Churn levels, in table-row order.
    pub levels: Vec<ChurnLevel>,
    /// Replication factors, in table-column order.
    pub ks: Vec<usize>,
    /// The zero-churn run of the same workload and backend.
    pub baseline: FederationReport,
    /// `reports[level_index][k_index]`.
    pub reports: Vec<Vec<FederationReport>>,
}

impl ChurnSweep {
    /// The report for a given level label and replication factor.
    #[must_use]
    pub fn report_for(&self, label: &str, k: usize) -> Option<&FederationReport> {
        let li = self.levels.iter().position(|l| l.label == label)?;
        let ki = self.ks.iter().position(|x| *x == k)?;
        Some(&self.reports[li][ki])
    }
}

/// Runs the churn sweep for one backend with a worker pool sized to the
/// machine.
#[must_use]
pub fn run_sweep_with_backend(
    options: &WorkloadOptions,
    levels: &[ChurnLevel],
    ks: &[usize],
    backend: DirectoryBackend,
) -> ChurnSweep {
    run_sweep_with_backend_jobs(options, levels, ks, backend, parallel::default_jobs())
}

/// Runs the churn sweep for one backend across at most `jobs` worker
/// threads.  Point 0 is the churn-free baseline; every point's failure
/// chains derive from the master seed and the GFA index alone, so the
/// sweep is bitwise-identical for any `jobs` value.
#[must_use]
pub fn run_sweep_with_backend_jobs(
    options: &WorkloadOptions,
    levels: &[ChurnLevel],
    ks: &[usize],
    backend: DirectoryBackend,
    jobs: usize,
) -> ChurnSweep {
    let churns: Vec<Option<ChurnConfig>> = std::iter::once(None)
        .chain(levels.iter().flat_map(|level| {
            ks.iter().map(move |&k| Some(level.to_config(options, k)))
        }))
        .collect();
    let point = |i: usize| {
        let setup = paper_workloads(PopulationProfile::new(50), options);
        run_federation(
            setup.resources,
            setup.workloads,
            FederationConfig {
                mode: SchedulingMode::Economy,
                seed: options.seed,
                utilization_horizon: Some(options.duration),
                directory: backend,
                churn: churns[i].clone(),
                ..FederationConfig::default()
            },
        )
    };
    let mut flat = parallel::run_indexed(churns.len(), jobs, point).into_iter();
    let baseline = flat.next().expect("the baseline run is point 0");
    let reports: Vec<Vec<FederationReport>> = levels
        .iter()
        .map(|_| ks.iter().map(|_| flat.next().expect("one report per point")).collect())
        .collect();
    ChurnSweep {
        backend,
        levels: levels.to_vec(),
        ks: ks.to_vec(),
        baseline,
        reports,
    }
}

/// Runs the default grid on one backend.
#[must_use]
pub fn run(options: &WorkloadOptions, backend: DirectoryBackend) -> ChurnSweep {
    run_sweep_with_backend(options, &DEFAULT_LEVELS, &DEFAULT_KS, backend)
}

/// The lookup-success gate the knee ramp probes (the k = 3 acceptance
/// criterion of [`assert_acceptance`]).
pub const KNEE_THRESHOLD: f64 = 0.99;

/// The replication factor the knee ramp pins (the gate is stated for k = 3).
pub const KNEE_REPLICATION: usize = 3;

/// The availability-knee ramp (the `--knee` mode): starting from the
/// moderate churn level with replication pinned at k = 3, each step doubles
/// the churn intensity (halves the mean uptime) until the ≥ 99 %
/// lookup-success gate breaks — the knee is the first intensity past the
/// gate, i.e. how much more churn than "moderate" the self-healing overlay
/// absorbs before the acceptance criterion would fail.
#[derive(Debug, Clone)]
pub struct KneeSweep {
    /// The directory backend every run of this ramp used.
    pub backend: DirectoryBackend,
    /// `(intensity, report)` per ramp step in ramp order, where intensity
    /// is the multiple of the moderate churn rate.
    pub points: Vec<(f64, FederationReport)>,
    /// The first intensity whose lookup success fell below
    /// [`KNEE_THRESHOLD`], or `None` if the ramp ended before the gate
    /// broke.
    pub knee: Option<f64>,
}

fn knee_config(options: &WorkloadOptions, intensity: f64) -> ChurnConfig {
    let base = DEFAULT_LEVELS[1];
    ChurnConfig {
        mean_uptime: base.uptime_fraction * options.duration / intensity,
        ..base.to_config(options, KNEE_REPLICATION)
    }
}

/// Runs the availability-knee ramp for one backend, at most `max_steps`
/// doublings.  The ramp is inherently sequential (each step only runs if
/// the gate survived the previous one), so there is no `jobs` knob.
#[must_use]
pub fn run_knee_with_backend(
    options: &WorkloadOptions,
    backend: DirectoryBackend,
    max_steps: usize,
) -> KneeSweep {
    let mut points = Vec::new();
    let mut knee = None;
    let mut intensity = 1.0;
    for _ in 0..max_steps {
        let setup = paper_workloads(PopulationProfile::new(50), options);
        let report = run_federation(
            setup.resources,
            setup.workloads,
            FederationConfig {
                mode: SchedulingMode::Economy,
                seed: options.seed,
                utilization_horizon: Some(options.duration),
                directory: backend,
                churn: Some(knee_config(options, intensity)),
                ..FederationConfig::default()
            },
        );
        let rate = report.lookup_success_rate();
        points.push((intensity, report));
        if rate < KNEE_THRESHOLD {
            knee = Some(intensity);
            break;
        }
        intensity *= 2.0;
    }
    KneeSweep { backend, points, knee }
}

/// The knee ramp as a table: one row per step, the breaking step flagged.
#[must_use]
pub fn figure_knee(sweep: &KneeSweep) -> DataTable {
    let mut table = DataTable::new(
        &format!(
            "Availability knee ({} backend, k={KNEE_REPLICATION}): churn intensity ramp until the {:.0}% lookup-success gate breaks{}",
            sweep.backend.label(),
            KNEE_THRESHOLD * 100.0,
            match sweep.knee {
                Some(knee) => format!(" — knee at {knee}x moderate churn"),
                None => " — gate never broke within the ramp".to_string(),
            },
        ),
        &[
            "Churn xModerate",
            "Lookup faults",
            "Lookup success %",
            "Gate",
        ],
    );
    for (intensity, report) in &sweep.points {
        let rate = report.lookup_success_rate();
        table.push_row(vec![
            format!("{intensity}"),
            format!("{}", report.churn.lookup_faults),
            f2(rate * 100.0),
            if rate < KNEE_THRESHOLD { "KNEE".to_string() } else { "ok".to_string() },
        ]);
    }
    table
}

/// Which churn metric a table reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Metric {
    /// Lookup success percentage.
    Availability,
    /// Backoff retries + local-only fallbacks.
    Retries,
    /// Publish-class messages spent by stabilization rounds.
    Stabilization,
    /// Average response time relative to the zero-churn baseline.
    Latency,
}

fn extract_metric(report: &FederationReport, baseline: &FederationReport, metric: Metric) -> String {
    match metric {
        Metric::Availability => f2(report.lookup_success_rate() * 100.0),
        Metric::Retries => format!(
            "{}",
            report.churn.retries + report.churn.local_fallbacks
        ),
        Metric::Stabilization => format!("{}", report.churn.stabilization_messages),
        Metric::Latency => {
            let base = baseline.federation_avg_response_time(false);
            if base > 0.0 {
                f2(report.federation_avg_response_time(false) / base)
            } else {
                f2(1.0)
            }
        }
    }
}

fn churn_table(sweep: &ChurnSweep, metric: Metric, title: &str) -> DataTable {
    let mut columns = vec!["Churn level".to_string()];
    columns.extend(sweep.ks.iter().map(|k| format!("k={k}")));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = DataTable::new(title, &column_refs);
    for (li, level) in sweep.levels.iter().enumerate() {
        let mut row = vec![level.label.to_string()];
        for ki in 0..sweep.ks.len() {
            row.push(extract_metric(&sweep.reports[li][ki], &sweep.baseline, metric));
        }
        table.push_row(row);
    }
    table
}

/// Lookup success rate (%) per churn level and replication factor.
#[must_use]
pub fn figure_availability(sweep: &ChurnSweep) -> DataTable {
    churn_table(
        sweep,
        Metric::Availability,
        &format!(
            "Churn tolerance ({} backend): ranking-lookup success rate (%) vs. churn level and k",
            sweep.backend.label()
        ),
    )
}

/// Retry traffic (backoff retries + local fallbacks) per churn level and k.
#[must_use]
pub fn figure_retries(sweep: &ChurnSweep) -> DataTable {
    churn_table(
        sweep,
        Metric::Retries,
        &format!(
            "Churn degradation ({} backend): directory retries + local fallbacks vs. churn level and k",
            sweep.backend.label()
        ),
    )
}

/// Stabilization traffic (publish-class repair messages) per churn level
/// and k.
#[must_use]
pub fn figure_stabilization(sweep: &ChurnSweep) -> DataTable {
    churn_table(
        sweep,
        Metric::Stabilization,
        &format!(
            "Self-healing cost ({} backend): stabilization messages vs. churn level and k",
            sweep.backend.label()
        ),
    )
}

/// Average response time relative to the zero-churn baseline per churn
/// level and k (1.00 = undisturbed).
#[must_use]
pub fn figure_latency(sweep: &ChurnSweep) -> DataTable {
    churn_table(
        sweep,
        Metric::Latency,
        &format!(
            "Latency degradation ({} backend): avg response time / zero-churn baseline vs. churn level and k",
            sweep.backend.label()
        ),
    )
}

/// Renders every CSV a set of churn sweeps produces, as `(name, csv)`
/// pairs in a stable order.
#[must_use]
pub fn render_all_csvs(sweeps: &[ChurnSweep]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for sweep in sweeps {
        let b = sweep.backend.label();
        out.push((format!("churn_availability_{b}"), figure_availability(sweep).to_csv()));
        out.push((format!("churn_retries_{b}"), figure_retries(sweep).to_csv()));
        out.push((format!("churn_stabilization_{b}"), figure_stabilization(sweep).to_csv()));
        out.push((format!("churn_latency_{b}"), figure_latency(sweep).to_csv()));
    }
    out
}

/// Renders the audit-ledger digest lines of a set of churn sweeps in a
/// stable order: the zero-churn baseline first, then one line per
/// (level, k) run — the format `run_all` appends to `MANIFEST_digests.txt`.
#[must_use]
pub fn digest_manifest(sweeps: &[ChurnSweep]) -> String {
    let mut out = String::new();
    for sweep in sweeps {
        let b = sweep.backend.label();
        out.push_str(&format!("exp6/{b}/baseline {}\n", sweep.baseline.digest));
        for (li, level) in sweep.levels.iter().enumerate() {
            for (ki, k) in sweep.ks.iter().enumerate() {
                out.push_str(&format!(
                    "exp6/{b}/{}/k{k} {}\n",
                    level.label, sweep.reports[li][ki].digest
                ));
            }
        }
    }
    out
}

/// The acceptance criteria the smoke run (and the full run) must uphold;
/// called by the `exp6_churn` binary after every sweep.
///
/// # Panics
/// Panics when a criterion fails — CI runs this as a blocking step.
pub fn assert_acceptance(sweep: &ChurnSweep) {
    assert_eq!(
        sweep.baseline.churn.events(),
        0,
        "{}: the baseline must be churn-free",
        sweep.backend.label()
    );
    for (li, level) in sweep.levels.iter().enumerate() {
        for (ki, k) in sweep.ks.iter().enumerate() {
            let report = &sweep.reports[li][ki];
            assert!(
                report.churn.events() > 0,
                "{}/{}: the churn process must fire",
                sweep.backend.label(),
                level.label
            );
            assert!(
                report.bank.is_balanced(),
                "{}/{}/k{k}: Grid Dollars leaked under churn",
                sweep.backend.label(),
                level.label
            );
        }
    }
    // The headline robustness claim: k = 3 keeps moderate churn above 99%
    // lookup availability.
    if let Some(report) = sweep.report_for("moderate", 3) {
        let rate = report.lookup_success_rate();
        assert!(
            rate >= 0.99,
            "{}: lookup success {rate:.4} < 0.99 under moderate churn with k=3",
            sweep.backend.label()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_sweep(backend: DirectoryBackend) -> ChurnSweep {
        run_sweep_with_backend(
            &WorkloadOptions::quick(),
            &[DEFAULT_LEVELS[1]],
            &[1, 3],
            backend,
        )
    }

    #[test]
    fn sweep_shape_lookup_and_acceptance() {
        let sweep = smoke_sweep(DirectoryBackend::Maan);
        assert_eq!(sweep.reports.len(), 1);
        assert_eq!(sweep.reports[0].len(), 2);
        assert!(sweep.report_for("moderate", 3).is_some());
        assert!(sweep.report_for("moderate", 2).is_none());
        assert!(sweep.report_for("light", 1).is_none());
        assert_acceptance(&sweep);
    }

    #[test]
    fn replication_recovers_availability_lost_to_churn() {
        let sweep = smoke_sweep(DirectoryBackend::Maan);
        let k1 = sweep.report_for("moderate", 1).unwrap();
        let k3 = sweep.report_for("moderate", 3).unwrap();
        assert!(
            k3.lookup_success_rate() >= k1.lookup_success_rate(),
            "more replicas must not answer fewer lookups"
        );
        assert!(k3.lookup_success_rate() >= 0.99);
        // Replication is paid for in stabilization traffic.
        assert!(k3.churn.stabilization_messages >= k1.churn.stabilization_messages);
    }

    #[test]
    fn tables_have_one_row_per_level_and_manifest_is_stable() {
        let sweep = smoke_sweep(DirectoryBackend::Chord);
        for table in [
            figure_availability(&sweep),
            figure_retries(&sweep),
            figure_stabilization(&sweep),
            figure_latency(&sweep),
        ] {
            assert_eq!(table.len(), 1);
            assert_eq!(table.columns.len(), 3);
        }
        let manifest = digest_manifest(std::slice::from_ref(&sweep));
        // Baseline + 1 level × 2 ks = 3 lines.
        assert_eq!(manifest.lines().count(), 3);
        assert!(manifest.starts_with("exp6/chord/baseline "), "got {manifest:?}");
        assert_eq!(manifest, digest_manifest(std::slice::from_ref(&sweep)));
    }

    #[test]
    fn knee_ramp_doubles_until_the_gate_breaks() {
        let sweep = run_knee_with_backend(&WorkloadOptions::quick(), DirectoryBackend::Maan, 8);
        for (i, (intensity, _)) in sweep.points.iter().enumerate() {
            assert_eq!(*intensity, (1u64 << i) as f64, "intensities must double");
        }
        let knee = sweep.knee.expect("k=3 must break within 8 doublings of moderate churn");
        let (last_intensity, last) = sweep.points.last().expect("ramp ran");
        assert_eq!(*last_intensity, knee, "the ramp stops at the knee");
        assert!(last.lookup_success_rate() < KNEE_THRESHOLD);
        let table = figure_knee(&sweep);
        assert_eq!(table.len(), sweep.points.len());
        assert!(table.title.contains("knee at"), "got {:?}", table.title);
    }

    #[test]
    fn sweep_is_parallel_deterministic() {
        let options = WorkloadOptions::quick();
        let levels = [DEFAULT_LEVELS[1]];
        let seq =
            run_sweep_with_backend_jobs(&options, &levels, &[1, 3], DirectoryBackend::Maan, 1);
        let par =
            run_sweep_with_backend_jobs(&options, &levels, &[1, 3], DirectoryBackend::Maan, 4);
        assert_eq!(
            digest_manifest(std::slice::from_ref(&seq)),
            digest_manifest(std::slice::from_ref(&par))
        );
        assert_eq!(render_all_csvs(std::slice::from_ref(&seq)), render_all_csvs(std::slice::from_ref(&par)));
    }
}
