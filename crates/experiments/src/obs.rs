//! Observability plumbing shared by the experiment binaries: the
//! p50/p90/p99 percentile panels rendered on every report, and the
//! `--metrics-out` / `--trace-out` artifact flags of the exp1/exp2 drivers.
//!
//! Everything here is read-only over a finished [`FederationReport`]: the
//! metrics registry is always recording (it is part of the report), while
//! the span collector is armed per run through
//! `FederationBuilder::tracer` and only ever adds an export surface —
//! `RunDigest`s are bit-identical with sinks armed or absent.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use grid_federation_core::{FederationReport, HistId, SpanCollector};

use crate::report::DataTable;

/// Renders one report's percentile panel: a p50/p90/p99 row per run-scope
/// distribution (job wait, slowdown, negotiation messages, lookup latency,
/// queue depth).
#[must_use]
pub fn percentile_panel(label: &str, report: &FederationReport) -> DataTable {
    let mut table = DataTable::new(
        &format!("Percentile panel — {label}"),
        &["Distribution", "Samples", "p50", "p90", "p99"],
    );
    for hist in HistId::ALL {
        let q = report.metrics.quantiles(hist);
        table.push_row(vec![
            hist.id().to_string(),
            q.count.to_string(),
            f3(q.p50),
            f3(q.p90),
            f3(q.p99),
        ]);
    }
    table
}

/// Renders the cross-experiment percentile summary: one row per
/// (run, distribution) pair, suitable for a single CSV covering every
/// headline report of a `run_all` invocation.
#[must_use]
pub fn percentile_summary(entries: &[(&str, &FederationReport)]) -> DataTable {
    let mut table = DataTable::new(
        "Percentile summary — all experiments",
        &["Run", "Distribution", "Samples", "p50", "p90", "p99"],
    );
    for (label, report) in entries {
        for hist in HistId::ALL {
            let q = report.metrics.quantiles(hist);
            table.push_row(vec![
                (*label).to_string(),
                hist.id().to_string(),
                q.count.to_string(),
                f3(q.p50),
                f3(q.p90),
                f3(q.p99),
            ]);
        }
    }
    table
}

/// Three-decimal formatting for percentile cells (latencies can sit well
/// below the two-decimal table grain).
fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Output targets of the `--metrics-out` / `--trace-out` flags.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// Where to write the metrics-registry JSON artifact, if requested.
    pub metrics_out: Option<PathBuf>,
    /// Where to write the Chrome Trace Format artifact, if requested.
    pub trace_out: Option<PathBuf>,
}

impl ObsArgs {
    /// Consumes `arg` (taking its value from `args`) if it is an
    /// observability flag; returns `false` so the caller can keep matching
    /// otherwise.
    ///
    /// # Panics
    /// Panics when the flag is present without a path value.
    pub fn try_parse(&mut self, arg: &str, args: &mut impl Iterator<Item = String>) -> bool {
        match arg {
            "--metrics-out" => {
                self.metrics_out =
                    Some(PathBuf::from(args.next().expect("--metrics-out needs a path")));
                true
            }
            "--trace-out" => {
                self.trace_out =
                    Some(PathBuf::from(args.next().expect("--trace-out needs a path")));
                true
            }
            _ => false,
        }
    }

    /// True when a trace artifact was requested, i.e. the run must arm a
    /// [`SpanCollector`].
    #[must_use]
    pub fn wants_trace(&self) -> bool {
        self.trace_out.is_some()
    }

    /// Writes the requested artifacts: the report's metrics registry as
    /// JSON, and the collector's buffered spans as Chrome Trace Format.
    ///
    /// # Errors
    /// Returns any I/O error from creating directories or writing files.
    pub fn write(
        &self,
        report: &FederationReport,
        collector: Option<&SpanCollector>,
    ) -> io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        if let Some(path) = &self.metrics_out {
            write_artifact(path, &report.metrics.to_json())?;
            written.push(path.clone());
        }
        if let (Some(path), Some(collector)) = (&self.trace_out, collector) {
            write_artifact(path, &collector.to_chrome_trace())?;
            written.push(path.clone());
        }
        Ok(written)
    }
}

fn write_artifact(path: &Path, content: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, content)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp1;
    use crate::workloads::WorkloadOptions;

    #[test]
    fn percentile_panel_covers_every_distribution() {
        let result = exp1::run(&WorkloadOptions::quick());
        let panel = percentile_panel("exp1 quick", &result.report);
        assert_eq!(panel.len(), HistId::COUNT);
        // The independent run records waits and queue depths even without
        // federation traffic.
        let wait = &panel.rows[0];
        assert_eq!(wait[0], "job_wait_seconds");
        assert!(wait[1].parse::<u64>().unwrap() > 0);
    }

    #[test]
    fn obs_args_parse_and_ignore_unrelated_flags() {
        let mut obs = ObsArgs::default();
        let mut rest = vec!["m.json".to_string()].into_iter();
        assert!(obs.try_parse("--metrics-out", &mut rest));
        assert!(!obs.try_parse("--quick", &mut std::iter::empty()));
        assert_eq!(obs.metrics_out.as_deref(), Some(Path::new("m.json")));
        assert!(!obs.wants_trace());
    }
}
