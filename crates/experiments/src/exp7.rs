//! Experiment 7 — unreliable network (beyond the paper): the DBC
//! negotiation protocol under seeded message loss, latency jitter and
//! duplication, and the repair-mode tradeoff for faulted lookups.
//!
//! Two panels:
//!
//! * **Fault differential** — every directory backend runs the Table 1
//!   federation lossless and again under each fault level of the sweep.
//!   The acceptance gate pins the headline robustness claim: the outcome
//!   digest (job records, balances, payments) is **bit-identical** to the
//!   lossless run at every fault level, every negotiation eventually
//!   completes, and the retransmit/duplicate traffic is visible in the
//!   ledgers — exactly-once *effect* over at-most-once delivery.
//! * **Repair-mode comparison** — both overlay backends run under moderate
//!   churn (k = 1, so crashed stores actually fault lookups) *and* moderate
//!   network faults, once with periodic-only stabilization and once with
//!   reactive lookup-time repair.  The table reports the messages-vs-latency
//!   tradeoff: reactive repair must measurably cut the mean wait a faulted
//!   lookup spends in retry backoff, paying for it in targeted repair
//!   messages.
//!
//! Like exp6, the lossless baseline runs alongside every sweep and is folded
//! into the digest manifest, so the reliable-transport differential
//! (`network: None` ≡ inactive config) stays pinned in CI.

use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_federation_core::{
    DirectoryBackend, FederationReport, Jitter, NetworkFaultConfig, RepairMode,
};
use grid_workload::PopulationProfile;

use crate::exp6;
use crate::parallel;
use crate::report::{f2, DataTable};
use crate::workloads::{paper_workloads, WorkloadOptions};

/// One fault intensity of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct FaultLevel {
    /// Label used in tables and manifest lines.
    pub label: &'static str,
    /// The fault layer configuration this level injects.
    pub config: NetworkFaultConfig,
}

/// The default fault grid: light (1% loss), moderate (the acceptance
/// criterion's ≥1% drop + jitter + duplication) and heavy (8% loss, every
/// twelfth message duplicated, half-second mean jitter).
pub const DEFAULT_FAULTS: [FaultLevel; 3] = [
    FaultLevel {
        label: "light",
        config: NetworkFaultConfig {
            drop: 0.01,
            jitter: Jitter::Exponential { mean: 0.1 },
            duplicate: 0.005,
            reorder_window: 2.0,
            timeout: 30.0,
            max_retransmits: 8,
        },
    },
    FaultLevel {
        label: "moderate",
        config: NetworkFaultConfig {
            drop: 0.02,
            jitter: Jitter::Exponential { mean: 0.2 },
            duplicate: 0.01,
            reorder_window: 5.0,
            timeout: 30.0,
            max_retransmits: 8,
        },
    },
    FaultLevel {
        label: "heavy",
        config: NetworkFaultConfig {
            drop: 0.08,
            jitter: Jitter::Exponential { mean: 0.5 },
            duplicate: 0.08,
            reorder_window: 10.0,
            timeout: 20.0,
            max_retransmits: 10,
        },
    },
];

/// The fault sweep for one backend: the lossless run the differential is
/// against, plus one report per fault level.
#[derive(Debug, Clone)]
pub struct UnreliableSweep {
    /// The directory backend every run of this sweep used.
    pub backend: DirectoryBackend,
    /// Fault levels, in table-row order.
    pub levels: Vec<FaultLevel>,
    /// The lossless (`network: None`) run of the same workload and backend.
    pub lossless: FederationReport,
    /// One report per fault level, same order as `levels`.
    pub reports: Vec<FederationReport>,
}

/// Runs the fault sweep for one backend with a worker pool sized to the
/// machine.
#[must_use]
pub fn run_sweep_with_backend(
    options: &WorkloadOptions,
    levels: &[FaultLevel],
    backend: DirectoryBackend,
) -> UnreliableSweep {
    run_sweep_with_backend_jobs(options, levels, backend, parallel::default_jobs())
}

/// Runs the fault sweep for one backend across at most `jobs` worker
/// threads.  Point 0 is the lossless baseline; the fault streams derive
/// from the master seed and the link endpoints alone, so the sweep is
/// bitwise-identical for any `jobs` value.
#[must_use]
pub fn run_sweep_with_backend_jobs(
    options: &WorkloadOptions,
    levels: &[FaultLevel],
    backend: DirectoryBackend,
    jobs: usize,
) -> UnreliableSweep {
    let nets: Vec<Option<NetworkFaultConfig>> = std::iter::once(None)
        .chain(levels.iter().map(|level| Some(level.config)))
        .collect();
    let point = |i: usize| {
        let setup = paper_workloads(PopulationProfile::new(50), options);
        run_federation(
            setup.resources,
            setup.workloads,
            FederationConfig {
                mode: SchedulingMode::Economy,
                seed: options.seed,
                utilization_horizon: Some(options.duration),
                directory: backend,
                network: nets[i],
                ..FederationConfig::default()
            },
        )
    };
    let mut flat = parallel::run_indexed(nets.len(), jobs, point).into_iter();
    let lossless = flat.next().expect("the lossless run is point 0");
    let reports: Vec<FederationReport> = levels
        .iter()
        .map(|_| flat.next().expect("one report per fault level"))
        .collect();
    UnreliableSweep {
        backend,
        levels: levels.to_vec(),
        lossless,
        reports,
    }
}

/// One repair-mode comparison: the same churned, lossy federation run with
/// periodic-only stabilization and with reactive lookup-time repair.
#[derive(Debug, Clone)]
pub struct RepairComparison {
    /// The overlay backend both runs used.
    pub backend: DirectoryBackend,
    /// The periodic-only run ([`RepairMode::Periodic`]).
    pub periodic: FederationReport,
    /// The reactive lookup-time repair run ([`RepairMode::Reactive`]).
    pub reactive: FederationReport,
}

/// Mean seconds a faulted lookup spends waiting in retry backoff before
/// the overlay can answer again — the latency the repair mode trades
/// messages against.
#[must_use]
pub fn mean_fault_wait(report: &FederationReport) -> f64 {
    let faults = report.churn.lookup_faults;
    if faults == 0 {
        0.0
    } else {
        report.churn.fault_wait_seconds / faults as f64
    }
}

/// Runs the repair-mode comparison for one overlay backend: moderate churn
/// with k = 1 (no replicas, so a crashed store faults its lookups) plus
/// moderate network faults, across at most `jobs` worker threads.
#[must_use]
pub fn run_repair_comparison_jobs(
    options: &WorkloadOptions,
    backend: DirectoryBackend,
    jobs: usize,
) -> RepairComparison {
    let modes = [RepairMode::Periodic, RepairMode::Reactive];
    let point = |i: usize| {
        let mut churn = exp6::DEFAULT_LEVELS[1].to_config(options, 1);
        churn.repair = modes[i];
        let setup = paper_workloads(PopulationProfile::new(50), options);
        run_federation(
            setup.resources,
            setup.workloads,
            FederationConfig {
                mode: SchedulingMode::Economy,
                seed: options.seed,
                utilization_horizon: Some(options.duration),
                directory: backend,
                churn: Some(churn),
                network: Some(DEFAULT_FAULTS[1].config),
                ..FederationConfig::default()
            },
        )
    };
    let mut flat = parallel::run_indexed(modes.len(), jobs, point).into_iter();
    let periodic = flat.next().expect("the periodic run is point 0");
    let reactive = flat.next().expect("the reactive run is point 1");
    RepairComparison {
        backend,
        periodic,
        reactive,
    }
}

/// Fault-layer traffic per fault level: what the retransmission protocol
/// spent to keep the outcome digest pinned.
#[must_use]
pub fn figure_fault_traffic(sweep: &UnreliableSweep) -> DataTable {
    let mut table = DataTable::new(
        &format!(
            "Unreliable network ({} backend): fault traffic vs. fault level (outcomes pinned to lossless at every level)",
            sweep.backend.label()
        ),
        &[
            "Fault level",
            "Enveloped",
            "Retransmits",
            "Duplicates",
            "Dedup drops",
            "Dir retransmits",
            "Publish retransmits",
            "Backoff s",
            "Outcomes pinned",
        ],
    );
    for (level, report) in sweep.levels.iter().zip(&sweep.reports) {
        let net = &report.network;
        table.push_row(vec![
            level.label.to_string(),
            format!("{}", net.enveloped),
            format!("{}", net.retransmissions),
            format!("{}", net.duplicates),
            format!("{}", net.dedup_drops),
            format!("{}", net.directory_retransmissions),
            format!("{}", net.publish_retransmissions),
            f2(net.backoff_seconds),
            if report.digest.outcomes == sweep.lossless.digest.outcomes {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    table
}

/// The repair-mode tradeoff table: mean faulted-lookup wait vs. repair
/// traffic, one row per (backend, mode).
#[must_use]
pub fn figure_repair_tradeoff(comparisons: &[RepairComparison]) -> DataTable {
    let mut table = DataTable::new(
        "Reactive vs. periodic ring repair (moderate churn k=1 + moderate faults): mean faulted-lookup wait vs. repair traffic",
        &[
            "Backend",
            "Repair mode",
            "Lookup faults",
            "Mean wait/fault s",
            "Reactive repairs",
            "Repair messages",
            "Lookup success %",
        ],
    );
    for cmp in comparisons {
        for (mode, report) in [
            (RepairMode::Periodic, &cmp.periodic),
            (RepairMode::Reactive, &cmp.reactive),
        ] {
            let churn = &report.churn;
            table.push_row(vec![
                cmp.backend.label().to_string(),
                mode.label().to_string(),
                format!("{}", churn.lookup_faults),
                f2(mean_fault_wait(report)),
                format!("{}", churn.reactive_repairs),
                format!(
                    "{}",
                    churn.stabilization_messages + churn.reactive_repair_messages
                ),
                f2(report.lookup_success_rate() * 100.0),
            ]);
        }
    }
    table
}

/// Renders every CSV the experiment produces, as `(name, csv)` pairs in a
/// stable order.
#[must_use]
pub fn render_all_csvs(
    sweeps: &[UnreliableSweep],
    comparisons: &[RepairComparison],
) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for sweep in sweeps {
        out.push((
            format!("network_fault_traffic_{}", sweep.backend.label()),
            figure_fault_traffic(sweep).to_csv(),
        ));
    }
    if !comparisons.is_empty() {
        out.push((
            "network_repair_tradeoff".to_string(),
            figure_repair_tradeoff(comparisons).to_csv(),
        ));
    }
    out
}

/// Renders the audit-ledger digest lines of the experiment in a stable
/// order — the format `run_all` appends to `MANIFEST_digests.txt`.
#[must_use]
pub fn digest_manifest(
    sweeps: &[UnreliableSweep],
    comparisons: &[RepairComparison],
) -> String {
    let mut out = String::new();
    for sweep in sweeps {
        let b = sweep.backend.label();
        out.push_str(&format!("exp7/{b}/lossless {}\n", sweep.lossless.digest));
        for (level, report) in sweep.levels.iter().zip(&sweep.reports) {
            out.push_str(&format!("exp7/{b}/{} {}\n", level.label, report.digest));
        }
    }
    for cmp in comparisons {
        let b = cmp.backend.label();
        out.push_str(&format!("exp7/repair/{b}/periodic {}\n", cmp.periodic.digest));
        out.push_str(&format!("exp7/repair/{b}/reactive {}\n", cmp.reactive.digest));
    }
    out
}

/// The fault-differential acceptance gate; called by the `exp7_unreliable`
/// binary (and `run_all`) after every sweep — CI runs it as a blocking
/// step.
///
/// # Panics
/// Panics when a criterion fails: outcome digest not pinned to the
/// lossless run, a negotiation that never completed, a Grid-Dollar leak,
/// or fault traffic that is invisible in the ledgers.
pub fn assert_acceptance(sweep: &UnreliableSweep) {
    let b = sweep.backend.label();
    assert!(
        sweep.lossless.network.is_quiet(),
        "{b}: the lossless baseline must report no fault traffic"
    );
    for (level, report) in sweep.levels.iter().zip(&sweep.reports) {
        let l = level.label;
        assert_eq!(
            sweep.lossless.digest.outcomes, report.digest.outcomes,
            "{b}/{l}: job outcomes and balances must be bit-identical to the lossless run"
        );
        assert_eq!(
            sweep.lossless.jobs.len(),
            report.jobs.len(),
            "{b}/{l}: every negotiation must eventually complete"
        );
        assert!(report.bank.is_balanced(), "{b}/{l}: Grid Dollars leaked");
        assert!(
            report.network.enveloped > 0,
            "{b}/{l}: protocol messages must travel enveloped"
        );
        assert!(
            report.network.retransmissions > 0,
            "{b}/{l}: ≥1% loss over this workload must force retransmissions"
        );
        assert!(
            report.network.extra_messages() > 0,
            "{b}/{l}: retransmit traffic must be visible in the ledgers"
        );
        assert_eq!(
            report.network.dedup_drops, report.network.duplicates,
            "{b}/{l}: every delivered duplicate must be deduplicated, and nothing else"
        );
    }
}

/// The repair-mode acceptance gate: reactive repair must fire and must
/// measurably reduce the mean faulted-lookup wait relative to periodic-only
/// stabilization on the same seed.
///
/// # Panics
/// Panics when reactive repair never fires, fails to beat the periodic
/// mean wait, or either run leaks Grid Dollars.
pub fn assert_repair_acceptance(cmp: &RepairComparison) {
    let b = cmp.backend.label();
    assert!(cmp.periodic.bank.is_balanced(), "{b}: periodic run leaked");
    assert!(cmp.reactive.bank.is_balanced(), "{b}: reactive run leaked");
    assert_eq!(
        cmp.periodic.churn.reactive_repairs, 0,
        "{b}: periodic-only stabilization must never repair reactively"
    );
    assert!(
        cmp.periodic.churn.lookup_faults > 0,
        "{b}: the comparison needs faulted lookups to measure"
    );
    assert!(
        cmp.reactive.churn.reactive_repairs > 0,
        "{b}: reactive mode must execute lookup-time repairs"
    );
    let periodic_wait = mean_fault_wait(&cmp.periodic);
    let reactive_wait = mean_fault_wait(&cmp.reactive);
    assert!(
        reactive_wait < periodic_wait,
        "{b}: reactive repair must reduce the mean faulted-lookup wait \
         ({reactive_wait:.2}s vs. {periodic_wait:.2}s periodic)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sweep_upholds_acceptance_on_every_backend() {
        let options = WorkloadOptions::quick();
        for backend in [
            DirectoryBackend::Ideal,
            DirectoryBackend::Chord,
            DirectoryBackend::Maan,
        ] {
            let sweep =
                run_sweep_with_backend(&options, &[DEFAULT_FAULTS[1]], backend);
            assert_acceptance(&sweep);
            let table = figure_fault_traffic(&sweep);
            assert_eq!(table.len(), 1);
            assert_eq!(table.columns.len(), 9);
        }
    }

    #[test]
    fn reactive_repair_beats_periodic_on_the_overlays() {
        let options = WorkloadOptions::quick();
        let comparisons: Vec<RepairComparison> =
            [DirectoryBackend::Chord, DirectoryBackend::Maan]
                .iter()
                .map(|&b| run_repair_comparison_jobs(&options, b, 2))
                .collect();
        for cmp in &comparisons {
            assert_repair_acceptance(cmp);
        }
        let table = figure_repair_tradeoff(&comparisons);
        assert_eq!(table.len(), 4, "two backends × two modes");
    }

    #[test]
    fn sweep_is_parallel_deterministic_and_manifest_stable() {
        let options = WorkloadOptions::quick();
        let levels = [DEFAULT_FAULTS[0]];
        let seq = run_sweep_with_backend_jobs(&options, &levels, DirectoryBackend::Maan, 1);
        let par = run_sweep_with_backend_jobs(&options, &levels, DirectoryBackend::Maan, 4);
        let seq_manifest = digest_manifest(std::slice::from_ref(&seq), &[]);
        assert_eq!(seq_manifest, digest_manifest(std::slice::from_ref(&par), &[]));
        // Lossless baseline + one level = 2 lines.
        assert_eq!(seq_manifest.lines().count(), 2);
        assert!(seq_manifest.starts_with("exp7/maan/lossless "));
        assert_eq!(
            render_all_csvs(std::slice::from_ref(&seq), &[]),
            render_all_csvs(std::slice::from_ref(&par), &[])
        );
    }
}
