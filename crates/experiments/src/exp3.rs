//! Experiment 3 — federation with economy (Fig. 3–8).
//!
//! The full Grid-Federation with the commodity-market economy is run under
//! eleven population profiles (OFT share 0 %, 10 %, …, 100 %).  Each profile
//! is an independent simulation; the sweep fans the runs out across threads
//! (one run per thread), keeping every individual run single-threaded and
//! deterministic.

use std::thread;

use grid_federation_core::federation::{run_federation, FederationConfig, SchedulingMode};
use grid_federation_core::FederationReport;
use grid_workload::PopulationProfile;

use crate::report::{f2, sci, DataTable};
use crate::workloads::{paper_workloads, WorkloadOptions};

/// The result of sweeping the population profiles.
#[derive(Debug, Clone)]
pub struct ProfileSweep {
    /// The profiles, in sweep order.
    pub profiles: Vec<PopulationProfile>,
    /// One federation report per profile.
    pub reports: Vec<FederationReport>,
    /// Names of the resources (shared by all runs).
    pub resource_names: Vec<String>,
}

impl ProfileSweep {
    /// The report for a given OFT percentage, if it was part of the sweep.
    #[must_use]
    pub fn report_for(&self, oft_percent: u32) -> Option<&FederationReport> {
        self.profiles
            .iter()
            .position(|p| p.oft_percent == oft_percent)
            .map(|i| &self.reports[i])
    }
}

/// Runs the economy federation for every profile in `profiles`.
#[must_use]
pub fn run_sweep(options: &WorkloadOptions, profiles: &[PopulationProfile]) -> ProfileSweep {
    let reports: Vec<FederationReport> = thread::scope(|scope| {
        let handles: Vec<_> = profiles
            .iter()
            .map(|profile| {
                let profile = *profile;
                scope.spawn(move || {
                    let setup = paper_workloads(profile, options);
                    run_federation(
                        setup.resources,
                        setup.workloads,
                        FederationConfig {
                            mode: SchedulingMode::Economy,
                            seed: options.seed,
                            utilization_horizon: Some(options.duration),
                            ..FederationConfig::default()
                        },
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("profile run must not panic"))
            .collect()
    });
    let resource_names = reports
        .first()
        .map(|r| r.resources.iter().map(|m| m.name.clone()).collect())
        .unwrap_or_default();
    ProfileSweep {
        profiles: profiles.to_vec(),
        reports,
        resource_names,
    }
}

/// Runs the paper's full eleven-profile sweep.
#[must_use]
pub fn run(options: &WorkloadOptions) -> ProfileSweep {
    run_sweep(options, &PopulationProfile::paper_sweep())
}

fn profile_columns(sweep: &ProfileSweep) -> Vec<String> {
    sweep.profiles.iter().map(PopulationProfile::label).collect()
}

/// Builds a wide table with one row per resource and one column per profile,
/// filling cells with `value(report, resource_index)`.
fn per_resource_table<F>(sweep: &ProfileSweep, title: &str, value: F) -> DataTable
where
    F: Fn(&FederationReport, usize) -> String,
{
    let mut columns = vec!["Resource".to_string()];
    columns.extend(profile_columns(sweep));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = DataTable::new(title, &column_refs);
    for (res_idx, name) in sweep.resource_names.iter().enumerate() {
        let mut row = vec![name.clone()];
        for report in &sweep.reports {
            row.push(value(report, res_idx));
        }
        table.push_row(row);
    }
    table
}

/// Fig. 3(a): total incentive (Grid Dollars) earned by each resource owner
/// under every population profile; the last row is the federation total.
#[must_use]
pub fn figure3a(sweep: &ProfileSweep) -> DataTable {
    let mut table = per_resource_table(
        sweep,
        "Figure 3(a): Total incentive (Grid Dollars) vs. user population profile",
        |report, i| sci(report.resources[i].incentive),
    );
    let mut total_row = vec!["TOTAL".to_string()];
    for report in &sweep.reports {
        total_row.push(sci(report.total_incentive()));
    }
    table.push_row(total_row);
    table
}

/// Fig. 3(b): number of remote jobs serviced by each resource.
#[must_use]
pub fn figure3b(sweep: &ProfileSweep) -> DataTable {
    per_resource_table(
        sweep,
        "Figure 3(b): No. of remote jobs serviced vs. user population profile",
        |report, i| report.resources[i].remote_jobs_processed.to_string(),
    )
}

/// Fig. 4: average resource utilization (%) per resource and profile.
#[must_use]
pub fn figure4(sweep: &ProfileSweep) -> DataTable {
    per_resource_table(
        sweep,
        "Figure 4: Average resource utilization (%) vs. user population profile",
        |report, i| f2(report.resources[i].utilization_percent()),
    )
}

/// Fig. 5: job processing characteristics — jobs processed locally vs.
/// migrated, per resource and profile (long format).
#[must_use]
pub fn figure5(sweep: &ProfileSweep) -> DataTable {
    let mut table = DataTable::new(
        "Figure 5: Job processing characteristic vs. user population profile",
        &[
            "Resource",
            "Profile",
            "Processed locally",
            "Migrated to federation",
            "Remote jobs processed",
        ],
    );
    for (res_idx, name) in sweep.resource_names.iter().enumerate() {
        for (profile, report) in sweep.profiles.iter().zip(&sweep.reports) {
            let m = &report.resources[res_idx];
            table.push_row(vec![
                name.clone(),
                profile.label(),
                m.processed_locally.to_string(),
                m.migrated.to_string(),
                m.remote_jobs_processed.to_string(),
            ]);
        }
    }
    table
}

/// Fig. 6: number of jobs rejected per resource and profile.
#[must_use]
pub fn figure6(sweep: &ProfileSweep) -> DataTable {
    per_resource_table(
        sweep,
        "Figure 6: No. of jobs rejected vs. user population profile",
        |report, i| report.resources[i].rejected.to_string(),
    )
}

/// Fig. 7(a): average response time (sim units) per resource and profile,
/// excluding rejected jobs.
#[must_use]
pub fn figure7a(sweep: &ProfileSweep) -> DataTable {
    per_resource_table(
        sweep,
        "Figure 7(a): Average response time (Sim Units) vs. user population profile (excluding rejected jobs)",
        |report, i| f2(report.avg_response_time(i, false)),
    )
}

/// Fig. 7(b): average budget spent (Grid Dollars) per resource and profile,
/// excluding rejected jobs.
#[must_use]
pub fn figure7b(sweep: &ProfileSweep) -> DataTable {
    per_resource_table(
        sweep,
        "Figure 7(b): Average budget spent (Grid Dollars) vs. user population profile (excluding rejected jobs)",
        |report, i| f2(report.avg_budget_spent(i, false)),
    )
}

/// Fig. 8(a): average response time including rejected jobs (counted at their
/// expected response time on the originating resource).
#[must_use]
pub fn figure8a(sweep: &ProfileSweep) -> DataTable {
    per_resource_table(
        sweep,
        "Figure 8(a): Average response time (Sim Units) vs. user population profile (including rejected jobs)",
        |report, i| f2(report.avg_response_time(i, true)),
    )
}

/// Fig. 8(b): average budget spent including rejected jobs.
#[must_use]
pub fn figure8b(sweep: &ProfileSweep) -> DataTable {
    per_resource_table(
        sweep,
        "Figure 8(b): Average budget spent (Grid Dollars) vs. user population profile (including rejected jobs)",
        |report, i| f2(report.avg_budget_spent(i, true)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> ProfileSweep {
        run_sweep(
            &WorkloadOptions::quick(),
            &[
                PopulationProfile::new(0),
                PopulationProfile::new(50),
                PopulationProfile::new(100),
            ],
        )
    }

    #[test]
    fn sweep_produces_one_report_per_profile() {
        let sweep = small_sweep();
        assert_eq!(sweep.reports.len(), 3);
        assert_eq!(sweep.resource_names.len(), 8);
        assert!(sweep.report_for(50).is_some());
        assert!(sweep.report_for(40).is_none());
    }

    #[test]
    fn oft_majority_earns_more_total_incentive_than_ofc_majority() {
        let sweep = small_sweep();
        let ofc = sweep.report_for(0).unwrap().total_incentive();
        let oft = sweep.report_for(100).unwrap().total_incentive();
        assert!(
            oft > ofc,
            "all-OFT incentive ({oft:.3e}) should exceed all-OFC ({ofc:.3e})"
        );
    }

    #[test]
    fn ofc_concentrates_jobs_on_cheap_resources() {
        let sweep = small_sweep();
        let report = sweep.report_for(0).unwrap();
        // LANL Origin (index 3) is the cheapest: under all-OFC it services the
        // most remote jobs.
        let remote: Vec<usize> = report
            .resources
            .iter()
            .map(|r| r.remote_jobs_processed)
            .collect();
        let max_idx = remote
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            max_idx == 3 || max_idx == 2,
            "one of the two cheapest resources (LANL Origin / LANL CM5) should              service the most remote jobs under all-OFC; got {remote:?}"
        );
        // Under all-OFT the cheap resources lose that remote load: the
        // paper's observation that the cost-effective LANL machines service
        // considerably fewer remote jobs once the majority seeks OFT.
        let report_oft = sweep.report_for(100).unwrap();
        let remote_oft: Vec<usize> = report_oft
            .resources
            .iter()
            .map(|r| r.remote_jobs_processed)
            .collect();
        assert!(
            remote_oft[3] < remote[3] / 2,
            "LANL Origin should service far fewer remote jobs under OFT \
             (OFC: {}, OFT: {})",
            remote[3],
            remote_oft[3]
        );
        // And the load spreads: more resources take part in remote service.
        let active_ofc = remote.iter().filter(|v| **v > 0).count();
        let active_oft = remote_oft.iter().filter(|v| **v > 0).count();
        assert!(
            active_oft >= active_ofc,
            "OFT should spread remote jobs over at least as many resources \
             (OFC: {active_ofc}, OFT: {active_oft})"
        );
    }

    #[test]
    fn figures_have_expected_shapes() {
        let sweep = small_sweep();
        assert_eq!(figure3a(&sweep).len(), 9); // 8 resources + TOTAL
        assert_eq!(figure3b(&sweep).len(), 8);
        assert_eq!(figure4(&sweep).len(), 8);
        assert_eq!(figure5(&sweep).len(), 8 * 3);
        assert_eq!(figure6(&sweep).len(), 8);
        for fig in [figure7a(&sweep), figure7b(&sweep), figure8a(&sweep), figure8b(&sweep)] {
            assert_eq!(fig.len(), 8);
            assert_eq!(fig.columns.len(), 1 + 3);
        }
    }

    #[test]
    fn users_pay_more_but_wait_less_under_oft() {
        // Fig. 7/8: OFT users see shorter average response times but spend
        // more of their budget than OFC users (under the per-1000-MI charging
        // policy the paper's magnitudes imply — see DESIGN.md).
        let sweep = small_sweep();
        let ofc = sweep.report_for(0).unwrap();
        let oft = sweep.report_for(100).unwrap();
        // On the reduced quick trace the fast resources are small, so an
        // all-OFT population can queue on them; allow a generous margin and
        // leave the paper-scale response-time comparison to EXPERIMENTS.md.
        let resp_ofc = ofc.federation_avg_response_time(true);
        let resp_oft = oft.federation_avg_response_time(true);
        assert!(
            resp_oft <= resp_ofc * 1.5,
            "OFT should not blow up the federation-wide response time \
             ({resp_oft:.1} vs {resp_ofc:.1})"
        );
        let spend_ofc = ofc.federation_avg_budget_spent(true);
        let spend_oft = oft.federation_avg_budget_spent(true);
        assert!(
            spend_oft > spend_ofc,
            "OFT users should spend more on average ({spend_oft:.1} vs {spend_ofc:.1})"
        );
    }
}
