//! Experiment 4 — message complexity with respect to jobs (Fig. 9).
//!
//! Reuses the Experiment 3 profile sweep and extracts, per GFA, the number of
//! local messages (traffic for its own users' jobs), remote messages (traffic
//! it handles for other GFAs' jobs) and the federation-wide total.

use crate::exp3::ProfileSweep;
use crate::report::DataTable;
use grid_workload::PopulationProfile;

/// Fig. 9(a): remote messages received at each GFA, per population profile.
#[must_use]
pub fn figure9a(sweep: &ProfileSweep) -> DataTable {
    per_gfa_messages(sweep, "Figure 9(a): No. of remote messages vs. user population profile", |c| c.remote)
}

/// Fig. 9(b): local messages at each GFA, per population profile.
#[must_use]
pub fn figure9b(sweep: &ProfileSweep) -> DataTable {
    per_gfa_messages(sweep, "Figure 9(b): No. of local messages vs. user population profile", |c| c.local)
}

/// Fig. 9(c): total accountable messages in the federation per profile.
#[must_use]
pub fn figure9c(sweep: &ProfileSweep) -> DataTable {
    let mut table = DataTable::new(
        "Figure 9(c): Total messages vs. user population profile",
        &["Profile", "Total messages"],
    );
    for (profile, report) in sweep.profiles.iter().zip(&sweep.reports) {
        table.push_row(vec![
            profile.label(),
            report.messages.total_messages().to_string(),
        ]);
    }
    table
}

fn per_gfa_messages<F>(sweep: &ProfileSweep, title: &str, extract: F) -> DataTable
where
    F: Fn(&grid_federation_core::GfaMessageCounters) -> u64,
{
    let mut columns = vec!["Resource".to_string()];
    columns.extend(sweep.profiles.iter().map(PopulationProfile::label));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = DataTable::new(title, &column_refs);
    for (res_idx, name) in sweep.resource_names.iter().enumerate() {
        let mut row = vec![name.clone()];
        for report in &sweep.reports {
            row.push(extract(report.messages.gfa(res_idx)).to_string());
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp3::run_sweep;
    use crate::workloads::WorkloadOptions;
    use grid_workload::PopulationProfile;

    fn sweep() -> ProfileSweep {
        run_sweep(
            &WorkloadOptions::quick(),
            &[PopulationProfile::new(0), PopulationProfile::new(100)],
        )
    }

    #[test]
    fn message_figures_have_expected_shapes() {
        let s = sweep();
        assert_eq!(figure9a(&s).len(), 8);
        assert_eq!(figure9b(&s).len(), 8);
        assert_eq!(figure9c(&s).len(), 2);
        assert_eq!(figure9a(&s).columns.len(), 3);
    }

    #[test]
    fn cheapest_resource_receives_most_remote_messages_under_ofc() {
        let s = sweep();
        let report = s.report_for(0).unwrap();
        let remote: Vec<u64> = (0..8).map(|i| report.messages.gfa(i).remote).collect();
        let max_idx = remote
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap();
        // LANL Origin (3) or LANL CM5 (2), the two cheapest, should lead.
        assert!(
            max_idx == 3 || max_idx == 2,
            "remote messages per GFA under all-OFC: {remote:?}"
        );
    }

    #[test]
    fn oft_generates_more_total_messages_than_ofc() {
        let s = sweep();
        let ofc = s.report_for(0).unwrap().messages.total_messages();
        let oft = s.report_for(100).unwrap().messages.total_messages();
        assert!(
            oft > ofc,
            "all-OFT should generate more messages than all-OFC ({oft} vs {ofc})"
        );
    }

    #[test]
    fn ledger_totals_are_consistent() {
        let s = sweep();
        for report in &s.reports {
            let per_gfa_local: u64 = (0..8).map(|i| report.messages.gfa(i).local).sum();
            let per_job: u64 = report
                .messages
                .per_job()
                .iter()
                .map(|(_, m)| u64::from(*m))
                .sum();
            // Every accountable message is attributed to exactly one origin
            // (locally) and to exactly one job.
            assert_eq!(per_gfa_local, report.messages.total_messages());
            assert_eq!(per_job, report.messages.total_messages());
        }
    }
}
