//! Experiment 2 — federation without economy (Table 3, Fig. 2).
//!
//! The clusters are federated but no economic model is used: each job runs
//! locally when the local cluster can meet its deadline, and otherwise the
//! GFA walks the remaining resources in decreasing order of computational
//! speed.  The comparison against Experiment 1 (Fig. 2) is the paper's
//! argument that federated sharing raises utilization and acceptance.

use std::cell::RefCell;
use std::rc::Rc;

use grid_federation_core::federation::{
    run_federation, FederationBuilder, FederationConfig, SchedulingMode,
};
use grid_federation_core::{FederationReport, ProfileTable, SpanCollector};
use grid_workload::PopulationProfile;

use crate::report::{f2, DataTable};
use crate::workloads::{paper_workloads, WorkloadOptions};

/// Result of Experiment 2 (plus the Experiment 1 control for Fig. 2a).
#[derive(Debug, Clone)]
pub struct Experiment2Result {
    /// The independent-resources control run.
    pub independent: FederationReport,
    /// The federation-without-economy run.
    pub federated: FederationReport,
}

/// Runs Experiment 2 (and the Experiment 1 control on the same workload).
#[must_use]
pub fn run(options: &WorkloadOptions) -> Experiment2Result {
    let profile = PopulationProfile::recommended();
    let make_config = |mode| FederationConfig {
        mode,
        seed: options.seed,
        utilization_horizon: Some(options.duration),
        ..FederationConfig::default()
    };
    let setup = paper_workloads(profile, options);
    let independent = run_federation(
        setup.resources.clone(),
        setup.workloads.clone(),
        make_config(SchedulingMode::Independent),
    );
    let federated = run_federation(
        setup.resources,
        setup.workloads,
        make_config(SchedulingMode::FederationNoEconomy),
    );
    Experiment2Result {
        independent,
        federated,
    }
}

/// Runs Experiment 2 with observability sinks armed on the *federated* run
/// (the control run stays unarmed — it carries no federation traffic worth
/// tracing).  Digests are bit-identical to [`run`]'s.
#[must_use]
pub fn run_with_observers(
    options: &WorkloadOptions,
    tracer: Option<Rc<RefCell<SpanCollector>>>,
    profiler: Option<Rc<RefCell<ProfileTable>>>,
) -> Experiment2Result {
    let profile = PopulationProfile::recommended();
    let make_config = |mode| FederationConfig {
        mode,
        seed: options.seed,
        utilization_horizon: Some(options.duration),
        ..FederationConfig::default()
    };
    let setup = paper_workloads(profile, options);
    let independent = run_federation(
        setup.resources.clone(),
        setup.workloads.clone(),
        make_config(SchedulingMode::Independent),
    );
    let mut builder = FederationBuilder::new(setup.resources)
        .workloads(setup.workloads)
        .config(make_config(SchedulingMode::FederationNoEconomy));
    if let Some(tracer) = tracer {
        builder = builder.tracer(tracer);
    }
    if let Some(profiler) = profiler {
        builder = builder.profiler(profiler);
    }
    Experiment2Result {
        independent,
        federated: builder.run(),
    }
}

/// Renders Table 3: workload processing statistics with federation.
#[must_use]
pub fn table3(result: &Experiment2Result) -> DataTable {
    let mut table = DataTable::new(
        "Table 3: Workload Processing Statistics (With Federation)",
        &[
            "Index",
            "Resource / Cluster Name",
            "Average Resource Utilization (%)",
            "Total Job",
            "Total Job Accepted (%)",
            "Total Job Rejected (%)",
            "No. of Jobs Processed Locally",
            "No. of Jobs Migrated to Federation",
            "No. of Remote Jobs Processed",
        ],
    );
    for (i, r) in result.federated.resources.iter().enumerate() {
        table.push_row(vec![
            (i + 1).to_string(),
            r.name.clone(),
            f2(r.utilization_percent()),
            r.total_local_jobs.to_string(),
            f2(r.acceptance_rate()),
            f2(r.rejection_rate()),
            r.processed_locally.to_string(),
            r.migrated.to_string(),
            r.remote_jobs_processed.to_string(),
        ]);
    }
    table
}

/// Renders Fig. 2(a): average resource utilization with and without
/// federation.
#[must_use]
pub fn figure2a(result: &Experiment2Result) -> DataTable {
    let mut table = DataTable::new(
        "Figure 2(a): Average resource utilization (%) vs. resource name",
        &["Resource", "Without federation (%)", "With federation (%)"],
    );
    for (ind, fed) in result
        .independent
        .resources
        .iter()
        .zip(&result.federated.resources)
    {
        table.push_row(vec![
            fed.name.clone(),
            f2(ind.utilization_percent()),
            f2(fed.utilization_percent()),
        ]);
    }
    table
}

/// Renders Fig. 2(b): number of jobs processed locally, migrated to the
/// federation and received from the federation, per resource.
#[must_use]
pub fn figure2b(result: &Experiment2Result) -> DataTable {
    let mut table = DataTable::new(
        "Figure 2(b): No. of jobs vs. resource name",
        &[
            "Resource",
            "Total jobs",
            "Processed locally",
            "Migrated to federation",
            "Remote jobs processed",
        ],
    );
    for r in &result.federated.resources {
        table.push_row(vec![
            r.name.clone(),
            r.total_local_jobs.to_string(),
            r.processed_locally.to_string(),
            r.migrated.to_string(),
            r.remote_jobs_processed.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_improves_acceptance_and_utilization() {
        let result = run(&WorkloadOptions::quick());
        let without = result.independent.mean_acceptance_rate();
        let with = result.federated.mean_acceptance_rate();
        assert!(
            with >= without,
            "federation should not lower acceptance ({with:.2} vs {without:.2})"
        );
        // The paper's central claim for Experiment 2: load sharing happens.
        let migrated: usize = result.federated.resources.iter().map(|r| r.migrated).sum();
        assert!(migrated > 0, "some jobs should migrate in the federation");
        let remote: usize = result
            .federated
            .resources
            .iter()
            .map(|r| r.remote_jobs_processed)
            .sum();
        assert_eq!(migrated, remote, "every migrated job is someone's remote job");
        // Accepted jobs respect their deadline guarantees.
        assert!(result
            .federated
            .jobs
            .iter()
            .filter(|j| j.was_accepted())
            .all(|j| j.response_time().unwrap() <= j.deadline + 1e-6));
    }

    #[test]
    fn tables_and_figures_have_eight_rows() {
        let result = run(&WorkloadOptions::quick());
        assert_eq!(table3(&result).len(), 8);
        assert_eq!(figure2a(&result).len(), 8);
        assert_eq!(figure2b(&result).len(), 8);
        assert_eq!(table3(&result).columns.len(), 9);
    }
}
