//! Deterministic parallel execution of independent sweep points.
//!
//! Parameter sweeps (Experiment 5's cluster-count × backend × profile grid,
//! the scalability bench, `run_all`) consist of fully independent simulation
//! runs: each run derives every seed it needs from its own parameters, never
//! from execution order.  This module fans those runs across a bounded
//! worker pool (`--jobs N`) built on `std::thread::scope` — no external
//! crates — and merges the results **in deterministic run order**, so the
//! output of a parallel sweep is bitwise-identical to the sequential one
//! (asserted by a regression test and re-checked by `bench_perf` on every CI
//! run).
//!
//! Work distribution uses a shared atomic cursor: workers claim the next
//! unclaimed index, so stragglers never serialise the tail of the sweep.
//! Which worker computes which index is scheduling-dependent, but since
//! results are placed by index, the merge order — and therefore every CSV —
//! is not.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Default worker count: the machine's available parallelism, falling back
/// to 1 when it cannot be determined.
#[must_use]
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `task(0..count)` across at most `jobs` worker threads and returns
/// the results ordered by index (identical to a sequential `map`).
///
/// `jobs <= 1` (or `count <= 1`) degrades to a plain sequential loop on the
/// calling thread, which is also the reference ordering the parallel path
/// must reproduce.
///
/// # Panics
/// Propagates a panic from any task once all workers have been joined.
pub fn run_indexed<T, F>(count: usize, jobs: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count.max(1));
    if jobs <= 1 {
        return (0..count).map(task).collect();
    }

    let next = AtomicUsize::new(0);
    let task = &task;
    let next = &next;
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);

    let per_worker: Vec<Vec<(usize, T)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        out.push((index, task(index)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker must not panic"))
            .collect()
    });

    for (index, value) in per_worker.into_iter().flatten() {
        debug_assert!(slots[index].is_none(), "index {index} computed twice");
        slots[index] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        // Task durations vary wildly with index so completion order differs
        // from submission order; the merge must restore index order anyway.
        let out = run_indexed(64, 8, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let sequential = run_indexed(100, 1, f);
        for jobs in [2, 4, 16, 1000] {
            assert_eq!(run_indexed(100, jobs, f), sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 0, |i| i), vec![0]);
        assert_eq!(run_indexed(3, 999, |i| i), vec![0, 1, 2]);
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "sweep worker must not panic")]
    fn worker_panics_propagate() {
        let _ = run_indexed(8, 2, |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}
